// Tests for the Inverted Multi-Index baseline (paper reference [18]).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/extractor.h"
#include "imi/multi_index.h"
#include "store/catalog.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

std::vector<FeatureVector> RandomTraining(std::size_t count, std::size_t dim,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  for (std::size_t i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian()) * 4.f;
    points.push_back(std::move(v));
  }
  return points;
}

TEST(ImiTest, FindsExactDuplicate) {
  const auto training = RandomTraining(300, 16, 1);
  ImiConfig config;
  config.centroids_per_half = 8;
  InvertedMultiIndex index(16, training, config);
  for (std::size_t i = 0; i < training.size(); ++i) {
    index.Add(100 + i, training[i]);
  }
  const auto results = index.Search(training[42], 1);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].image_id, 142u);
  EXPECT_NEAR(results[0].distance, 0.f, 1e-6);
}

TEST(ImiTest, GridShapeAndOccupancy) {
  const auto training = RandomTraining(500, 8, 2);
  ImiConfig config;
  config.centroids_per_half = 16;
  InvertedMultiIndex index(8, training, config);
  EXPECT_EQ(index.num_cells(), 256u);
  EXPECT_EQ(index.size(), 0u);
  for (std::size_t i = 0; i < training.size(); ++i) {
    index.Add(i, training[i]);
  }
  EXPECT_EQ(index.size(), 500u);
  // The multi-index's point: many cells are used, so each is small.
  EXPECT_GT(index.OccupiedCells(), 32u);
}

TEST(ImiTest, RecallAgainstBruteForce) {
  const SyntheticEmbedder embedder({.dim = 32, .num_categories = 10,
                                    .seed = 9});
  std::vector<FeatureVector> training;
  std::vector<std::pair<ImageId, FeatureVector>> all;
  for (ProductId pid = 1; pid <= 500; ++pid) {
    const auto f = embedder.Extract(
        {MakeImageUrl(pid, 0), pid, static_cast<CategoryId>(pid % 10)});
    if (training.size() < 400) training.push_back(f);
    all.emplace_back(pid, f);
  }
  ImiConfig config;
  config.centroids_per_half = 16;
  config.min_candidates = 128;
  InvertedMultiIndex index(32, training, config);
  for (const auto& [id, v] : all) index.Add(id, v);

  double recall_sum = 0.0;
  constexpr int kQueries = 40;
  for (int q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + (q * 13) % 500;
    const auto query =
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 10), q);
    TopK exact(10);
    for (const auto& [id, v] : all) exact.Offer(id, L2SquaredDistance(query, v));
    const auto truth = exact.TakeSorted();
    const auto approx = index.Search(query, 10);
    int found = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.image_id == t.image_id) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / 10.0;
  }
  EXPECT_GT(recall_sum / kQueries, 0.7);
}

TEST(ImiTest, LargerBudgetNeverHurtsRecall) {
  const auto training = RandomTraining(1000, 16, 4);
  ImiConfig config;
  config.centroids_per_half = 16;
  InvertedMultiIndex index(16, training, config);
  for (std::size_t i = 0; i < training.size(); ++i) index.Add(i, training[i]);
  Rng rng(5);
  const auto recall_at = [&](std::size_t budget) {
    double sum = 0.0;
    for (int q = 0; q < 30; ++q) {
      FeatureVector query(16);
      for (float& x : query) x = static_cast<float>(rng.NextGaussian()) * 4.f;
      TopK exact(5);
      for (std::size_t i = 0; i < training.size(); ++i) {
        exact.Offer(i, L2SquaredDistance(query, training[i]));
      }
      const auto truth = exact.TakeSorted();
      const auto approx = index.Search(query, 5, budget);
      int found = 0;
      for (const auto& t : truth) {
        for (const auto& a : approx) {
          if (a.image_id == t.image_id) {
            ++found;
            break;
          }
        }
      }
      sum += static_cast<double>(found) / 5.0;
    }
    return sum / 30.0;
  };
  Rng reset(5);  // identical query stream for both budgets
  rng = reset;
  const double small = recall_at(32);
  rng = reset;
  const double large = recall_at(1000);
  EXPECT_GE(large, small);
  EXPECT_GT(large, 0.9);  // near-exhaustive at a 1000-candidate budget
}

TEST(ImiTest, EmptyIndexReturnsNothing) {
  const auto training = RandomTraining(50, 8, 6);
  InvertedMultiIndex index(8, training, {});
  EXPECT_TRUE(index.Search(training[0], 5).empty());
}

}  // namespace
}  // namespace jdvs

// Tests for catalog, image store, and feature DB (reuse path).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "store/image_store.h"

namespace jdvs {
namespace {

ProductRecord MakeProduct(ProductId id, CategoryId category = 1) {
  ProductRecord record;
  record.id = id;
  record.category = category;
  record.attributes = {.sales = 10, .price_cents = 500, .praise = 3};
  record.detail_url = "jd://item/" + std::to_string(id);
  record.image_urls = {MakeImageUrl(id, 0), MakeImageUrl(id, 1)};
  return record;
}

TEST(CatalogTest, UpsertGetRoundTrip) {
  ProductCatalog catalog;
  catalog.Upsert(MakeProduct(7));
  const auto record = catalog.Get(7);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->id, 7u);
  EXPECT_EQ(record->image_urls.size(), 2u);
  EXPECT_TRUE(record->on_market);
  EXPECT_FALSE(catalog.Get(8).has_value());
}

TEST(CatalogTest, UpdateAttributesOnlyTouchesExisting) {
  ProductCatalog catalog;
  catalog.Upsert(MakeProduct(7));
  const ProductAttributes updated{.sales = 99, .price_cents = 1, .praise = 5};
  EXPECT_TRUE(catalog.UpdateAttributes(7, updated, "jd://new"));
  EXPECT_FALSE(catalog.UpdateAttributes(8, updated, ""));
  const auto record = catalog.Get(7);
  EXPECT_EQ(record->attributes.sales, 99u);
  EXPECT_EQ(record->detail_url, "jd://new");
}

TEST(CatalogTest, EmptyDetailUrlKeepsOld) {
  ProductCatalog catalog;
  catalog.Upsert(MakeProduct(7));
  catalog.UpdateAttributes(7, {}, "");
  EXPECT_EQ(catalog.Get(7)->detail_url, "jd://item/7");
}

TEST(CatalogTest, SetOnMarketFlips) {
  ProductCatalog catalog;
  catalog.Upsert(MakeProduct(7));
  EXPECT_TRUE(catalog.SetOnMarket(7, false));
  EXPECT_FALSE(catalog.Get(7)->on_market);
  EXPECT_TRUE(catalog.SetOnMarket(7, true));
  EXPECT_TRUE(catalog.Get(7)->on_market);
  EXPECT_FALSE(catalog.SetOnMarket(99, false));
}

TEST(CatalogTest, ForEachVisitsEverything) {
  ProductCatalog catalog;
  for (ProductId id = 1; id <= 20; ++id) catalog.Upsert(MakeProduct(id));
  std::set<ProductId> seen;
  catalog.ForEach([&](const ProductRecord& r) { seen.insert(r.id); });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(catalog.size(), 20u);
  EXPECT_EQ(catalog.AllIds().size(), 20u);
}

TEST(ImageStoreTest, FetchReturnsRegisteredContent) {
  ImageStore store;
  store.Put("jd://img/1/0", 1, 4);
  const auto content = store.Fetch("jd://img/1/0");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(content->product_id, 1u);
  EXPECT_EQ(content->category_id, 4u);
  EXPECT_EQ(content->url, "jd://img/1/0");
  EXPECT_FALSE(store.Fetch("jd://img/9/9").has_value());
  EXPECT_EQ(store.fetch_count(), 2u);
}

TEST(ImageStoreTest, ContainsAndSize) {
  ImageStore store;
  EXPECT_FALSE(store.Contains("x"));
  store.Put("x", 1, 1);
  EXPECT_TRUE(store.Contains("x"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(FeatureDbTest, ExtractOnceThenReuse) {
  const SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 1});
  FeatureDb db(embedder, ExtractionCostModel{.mean_micros = 0});
  Rng rng(1);
  const ImageContent content{"jd://img/1/0", 1, 2};

  auto [first, reused_first] = db.GetOrExtract(content, rng);
  EXPECT_FALSE(reused_first);
  auto [second, reused_second] = db.GetOrExtract(content, rng);
  EXPECT_TRUE(reused_second);
  EXPECT_EQ(first, second);

  const FeatureDbStats stats = db.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.extracted, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_NEAR(stats.ReuseRate(), 0.5, 1e-9);
}

TEST(FeatureDbTest, ExtractedFeatureMatchesEmbedder) {
  const SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 1});
  FeatureDb db(embedder, ExtractionCostModel{.mean_micros = 0});
  Rng rng(1);
  const ImageContent content{"jd://img/3/0", 3, 1};
  EXPECT_EQ(db.GetOrExtract(content, rng).first, embedder.Extract(content));
}

TEST(FeatureDbTest, PreloadSkipsExtraction) {
  const SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 1});
  FeatureDb db(embedder, ExtractionCostModel{.mean_micros = 0});
  const ImageContent content{"jd://img/1/0", 1, 2};
  db.Preload(content.url, embedder.Extract(content));
  EXPECT_TRUE(db.Contains(content.url));

  Rng rng(1);
  auto [feature, reused] = db.GetOrExtract(content, rng);
  EXPECT_TRUE(reused);
  EXPECT_EQ(db.stats().extracted, 0u);
  EXPECT_EQ(feature, embedder.Extract(content));
}

TEST(FeatureDbTest, GetWithoutExtraction) {
  const SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 1});
  FeatureDb db(embedder, ExtractionCostModel{.mean_micros = 0});
  EXPECT_FALSE(db.Get("missing").has_value());
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace jdvs

// Tests for the command-line flags utility.
#include <gtest/gtest.h>

#include "common/flags.h"

namespace jdvs {
namespace {

Flags Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValue) {
  const Flags flags = Parse({"--products=500", "--name=hello"});
  EXPECT_EQ(flags.GetInt("products", 0), 500);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = Parse({});
  EXPECT_EQ(flags.GetInt("products", 42), 42);
  EXPECT_EQ(flags.GetString("name", "dflt"), "dflt");
  EXPECT_EQ(flags.GetDouble("rate", 1.5), 1.5);
  EXPECT_TRUE(flags.GetBool("on", true));
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags flags = Parse({"--verbose"});
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, BoolVariants) {
  const Flags flags =
      Parse({"--a=true", "--b=FALSE", "--c=1", "--d=0", "--e=yes", "--f=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false));
  EXPECT_FALSE(flags.GetBool("f", true));
}

TEST(FlagsTest, Positional) {
  const Flags flags = Parse({"input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, DoubleParsing) {
  const Flags flags = Parse({"--rate=2.75"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.75);
}

TEST(FlagsTest, NegativeAndLargeInts) {
  const Flags flags = Parse({"--offset=-12", "--big=123456789012"});
  EXPECT_EQ(flags.GetInt("offset", 0), -12);
  EXPECT_EQ(flags.GetInt("big", 0), 123456789012LL);
}

TEST(FlagsTest, LastValueWins) {
  const Flags flags = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

TEST(FlagsTest, EmptyValue) {
  const Flags flags = Parse({"--name="});
  EXPECT_EQ(flags.GetString("name", "x"), "");
}

TEST(FlagsTest, UnusedKeysReported) {
  const Flags flags = Parse({"--used=1", "--typo=2"});
  (void)flags.GetInt("used", 0);
  const auto unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace jdvs

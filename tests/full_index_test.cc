// Tests for the periodic full indexing pipeline (Figures 2-3).
#include <gtest/gtest.h>

#include "common/hash.h"
#include "index/full_index_builder.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

struct Fixture {
  Fixture() : features(embedder, ExtractionCostModel{.mean_micros = 0}) {}

  void Populate(std::size_t products, double off_market = 0.0) {
    CatalogGenConfig config;
    config.num_products = products;
    config.num_categories = 8;
    config.min_images_per_product = 2;
    config.max_images_per_product = 4;
    config.initial_off_market_fraction = off_market;
    GenerateCatalog(config, catalog, images);
  }

  FullIndexBuilderConfig BuilderConfig() {
    FullIndexBuilderConfig config;
    config.kmeans.num_clusters = 8;
    config.training_sample = 256;
    return config;
  }

  SyntheticEmbedder embedder{{.dim = 16, .num_categories = 8, .seed = 5}};
  ProductCatalog catalog;
  ImageStore images;
  FeatureDb features;
};

TEST(FullIndexBuilderTest, BuildsIndexOverValidImages) {
  Fixture fx;
  fx.Populate(100);
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  FullIndexReport report;
  auto index = builder.Build(quantizer, AcceptAllPartitionFilter(), &report);
  EXPECT_EQ(report.products_indexed, 100u);
  EXPECT_GT(report.images_indexed, 0u);
  EXPECT_EQ(index->size(), report.images_indexed);
  EXPECT_EQ(index->Stats().valid_images, report.images_indexed);
}

TEST(FullIndexBuilderTest, SkipsOffMarketProducts) {
  Fixture fx;
  fx.Populate(200, /*off_market=*/0.5);
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  FullIndexReport report;
  auto index = builder.Build(quantizer, AcceptAllPartitionFilter(), &report);
  EXPECT_GT(report.products_skipped_invalid, 0u);
  EXPECT_EQ(report.products_indexed + report.products_skipped_invalid, 200u);
}

TEST(FullIndexBuilderTest, SecondBuildReusesAllFeatures) {
  Fixture fx;
  fx.Populate(50);
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  FullIndexReport first;
  builder.Build(quantizer, AcceptAllPartitionFilter(), &first);
  FullIndexReport second;
  builder.Build(quantizer, AcceptAllPartitionFilter(), &second);
  // "always checks if an image's features have been previously extracted".
  // Quantizer training already pulled every feature through the DB, so both
  // builds reuse everything; the extractions happened exactly once, during
  // training.
  EXPECT_EQ(second.features_extracted, 0u);
  EXPECT_EQ(second.features_reused, second.images_indexed);
  EXPECT_EQ(first.features_extracted, 0u);
  EXPECT_GT(fx.features.stats().extracted, 0u);
  EXPECT_EQ(fx.features.size(), first.images_indexed);
}

TEST(FullIndexBuilderTest, PartitionFilterSplitsImages) {
  Fixture fx;
  fx.Populate(100);
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  const auto even = [](std::string_view url) { return Fnv1a64(url) % 2 == 0; };
  const auto odd = [](std::string_view url) { return Fnv1a64(url) % 2 == 1; };
  FullIndexReport even_report;
  FullIndexReport odd_report;
  auto even_index = builder.Build(quantizer, even, &even_report);
  auto odd_index = builder.Build(quantizer, odd, &odd_report);
  FullIndexReport all_report;
  builder.Build(quantizer, AcceptAllPartitionFilter(), &all_report);
  EXPECT_EQ(even_report.images_indexed + odd_report.images_indexed,
            all_report.images_indexed);
  EXPECT_GT(even_report.images_indexed, 0u);
  EXPECT_GT(odd_report.images_indexed, 0u);
}

TEST(FullIndexBuilderTest, ApplyMessageLogUpdatesCatalogAndClearsLog) {
  Fixture fx;
  fx.Populate(10);
  MessageLog log;

  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 500;
  add.category_id = 3;
  add.image_urls = {MakeImageUrl(500, 0)};
  add.attributes = {.sales = 1, .price_cents = 10, .praise = 0};
  log.Append(add);

  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 500;
  upd.attributes = {.sales = 42, .price_cents = 10, .praise = 0};
  log.Append(upd);

  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 1;
  log.Append(del);

  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  EXPECT_EQ(builder.ApplyMessageLog(log), 3u);
  EXPECT_EQ(log.size(), 0u);

  const auto added = fx.catalog.Get(500);
  ASSERT_TRUE(added.has_value());
  EXPECT_EQ(added->attributes.sales, 42u);
  EXPECT_TRUE(added->on_market);
  EXPECT_TRUE(fx.images.Contains(MakeImageUrl(500, 0)));
  EXPECT_FALSE(fx.catalog.Get(1)->on_market);
}

TEST(FullIndexBuilderTest, RelistViaLogRestoresProduct) {
  Fixture fx;
  fx.Populate(10);
  MessageLog log;
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 2;
  log.Append(del);
  ProductUpdateMessage relist;
  relist.type = UpdateType::kAddProduct;
  relist.product_id = 2;
  relist.category_id = fx.catalog.Get(2)->category;
  relist.image_urls = fx.catalog.Get(2)->image_urls;
  relist.attributes = {.sales = 9, .price_cents = 9, .praise = 9};
  log.Append(relist);

  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  builder.ApplyMessageLog(log);
  const auto record = fx.catalog.Get(2);
  EXPECT_TRUE(record->on_market);
  EXPECT_EQ(record->attributes.sales, 9u);
}

TEST(FullIndexBuilderTest, EmptyCatalogYieldsUsableQuantizer) {
  Fixture fx;  // no products
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  ASSERT_NE(quantizer, nullptr);
  EXPECT_GE(quantizer->num_clusters(), 1u);
  FullIndexReport report;
  auto index = builder.Build(quantizer, AcceptAllPartitionFilter(), &report);
  EXPECT_EQ(report.images_indexed, 0u);
  EXPECT_EQ(index->size(), 0u);
}

TEST(FullIndexBuilderTest, BuiltIndexServesQueries) {
  Fixture fx;
  fx.Populate(100);
  FullIndexBuilder builder(fx.catalog, fx.images, fx.features,
                           fx.BuilderConfig());
  auto quantizer = builder.TrainQuantizer();
  auto index = builder.Build(quantizer);
  // Query one known product.
  const auto record = fx.catalog.Get(17);
  ASSERT_TRUE(record.has_value());
  const auto query =
      fx.embedder.ExtractQuery(record->id, record->category, 1);
  const auto hits = index->Search(query, 5, quantizer->num_clusters());
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].product_id, record->id);
}

}  // namespace
}  // namespace jdvs

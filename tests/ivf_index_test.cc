// Tests for the per-partition IVF index: insertion, search, validity
// filtering, attribute updates, recall vs exhaustive scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "embedding/extractor.h"
#include "index/ivf_index.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

constexpr std::size_t kDim = 16;

std::shared_ptr<const CoarseQuantizer> GridQuantizer() {
  // 4 well-separated centroids in 16-d: corners scaled.
  std::vector<float> centroids;
  Rng rng(17);
  for (int c = 0; c < 4; ++c) {
    for (std::size_t d = 0; d < kDim; ++d) {
      centroids.push_back(static_cast<float>(((c >> (d % 2)) & 1) * 10.0 +
                                             rng.NextGaussian() * 0.01));
    }
  }
  return std::make_shared<CoarseQuantizer>(std::move(centroids), kDim);
}

FeatureVector NearCentroid(const CoarseQuantizer& q, std::size_t c,
                           float jitter, std::uint64_t seed) {
  Rng rng(seed);
  FeatureVector v(q.Centroid(c).begin(), q.Centroid(c).end());
  for (float& x : v) x += static_cast<float>(rng.NextGaussian()) * jitter;
  return v;
}

ProductAttributes Attrs(std::uint64_t sales = 5) {
  return {.sales = sales, .price_cents = 1000, .praise = 2};
}

TEST(IvfIndexTest, AddAndFindExact) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  const FeatureVector f = NearCentroid(*quantizer, 0, 0.1f, 1);
  index.AddImage("jd://img/1/0", 1, 2, Attrs(), "jd://item/1", f);

  const auto hits = index.Search(f, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].product_id, 1u);
  EXPECT_EQ(hits[0].image_url, "jd://img/1/0");
  EXPECT_EQ(hits[0].detail_url, "jd://item/1");
  EXPECT_EQ(hits[0].category, 2u);
  EXPECT_NEAR(hits[0].distance, 0.f, 1e-6);
}

TEST(IvfIndexTest, ResultsSortedByDistance) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  const FeatureVector probe = NearCentroid(*quantizer, 0, 0.0f, 0);
  for (int i = 0; i < 20; ++i) {
    index.AddImage("u" + std::to_string(i), i + 1, 0, Attrs(),
                   "", NearCentroid(*quantizer, 0, 0.5f, i + 10));
  }
  const auto hits = index.Search(probe, 10);
  ASSERT_EQ(hits.size(), 10u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(IvfIndexTest, InvalidImagesExcludedFromSearch) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  const FeatureVector f = NearCentroid(*quantizer, 1, 0.1f, 2);
  index.AddImage("jd://img/5/0", 5, 0, Attrs(), "", f);
  ASSERT_EQ(index.Search(f, 1).size(), 1u);

  // Deletion: flip the bitmap (Figure 6); the image vanishes from results.
  EXPECT_EQ(index.SetProductValidity(5, false), 1u);
  EXPECT_TRUE(index.Search(f, 1).empty());
  EXPECT_FALSE(index.IsImageValid("jd://img/5/0"));

  // Re-listing brings it back (no re-insertion).
  EXPECT_EQ(index.SetProductValidity(5, true), 1u);
  ASSERT_EQ(index.Search(f, 1).size(), 1u);
  EXPECT_TRUE(index.IsImageValid("jd://img/5/0"));
}

TEST(IvfIndexTest, LateFilteringModeAlsoExcludesInvalid) {
  auto quantizer = GridQuantizer();
  IvfIndexConfig config;
  config.filter_invalid_during_scan = false;
  IvfIndex index(quantizer, config);
  const FeatureVector f = NearCentroid(*quantizer, 1, 0.1f, 2);
  index.AddImage("a", 5, 0, Attrs(), "", f);
  index.SetProductValidity(5, false);
  EXPECT_TRUE(index.Search(f, 1).empty());
}

TEST(IvfIndexTest, SetImageValidityTargetsOneImage) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  const FeatureVector f0 = NearCentroid(*quantizer, 0, 0.05f, 3);
  const FeatureVector f1 = NearCentroid(*quantizer, 0, 0.05f, 4);
  index.AddImage("p7-img0", 7, 0, Attrs(), "", f0);
  index.AddImage("p7-img1", 7, 0, Attrs(), "", f1);
  EXPECT_TRUE(index.SetImageValidity("p7-img0", false));
  EXPECT_FALSE(index.SetImageValidity("unknown", false));
  const auto hits = index.Search(f0, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].image_url, "p7-img1");
}

TEST(IvfIndexTest, UpdateProductAttributesVisibleInResults) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  const FeatureVector f = NearCentroid(*quantizer, 2, 0.1f, 5);
  index.AddImage("a", 9, 0, Attrs(5), "old", f);
  EXPECT_EQ(index.UpdateProductAttributes(
                9, {.sales = 777, .price_cents = 1, .praise = 9}, "new-url"),
            1u);
  const auto hits = index.Search(f, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].attributes.sales, 777u);
  EXPECT_EQ(hits[0].detail_url, "new-url");
  EXPECT_EQ(index.UpdateProductAttributes(12345, Attrs(), ""), 0u);
}

TEST(IvfIndexTest, HasImageHasProduct) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  EXPECT_FALSE(index.HasImage("a"));
  EXPECT_FALSE(index.HasProduct(1));
  index.AddImage("a", 1, 0, Attrs(), "",
                 NearCentroid(*quantizer, 0, 0.1f, 6));
  EXPECT_TRUE(index.HasImage("a"));
  EXPECT_TRUE(index.HasProduct(1));
}

TEST(IvfIndexTest, StatsReflectState) {
  auto quantizer = GridQuantizer();
  IvfIndexConfig config;
  config.initial_list_capacity = 2;
  IvfIndex index(quantizer, config);
  for (int i = 0; i < 50; ++i) {
    index.AddImage("u" + std::to_string(i), i, 0, Attrs(), "",
                   NearCentroid(*quantizer, i % 4, 0.2f, i));
  }
  index.SetProductValidity(0, false);
  index.FinishPendingExpansions();
  const IvfIndexStats stats = index.Stats();
  EXPECT_EQ(stats.total_images, 50u);
  EXPECT_EQ(stats.valid_images, 49u);
  EXPECT_EQ(stats.num_lists, 4u);
  EXPECT_GT(stats.largest_list, 0u);
  EXPECT_GT(stats.list_expansions, 0u);
}

TEST(IvfIndexTest, ExhaustiveSearchIsGroundTruth) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  Rng rng(8);
  std::vector<FeatureVector> all;
  for (int i = 0; i < 200; ++i) {
    auto f = NearCentroid(*quantizer, rng.Below(4), 1.0f, 100 + i);
    index.AddImage("u" + std::to_string(i), i, 0, Attrs(), "", f);
    all.push_back(std::move(f));
  }
  const FeatureVector probe = NearCentroid(*quantizer, 0, 0.5f, 999);
  const auto hits = index.SearchExhaustive(probe, 5);
  ASSERT_EQ(hits.size(), 5u);
  // Check optimality against a manual scan.
  std::vector<float> distances;
  for (const auto& f : all) distances.push_back(L2SquaredDistance(probe, f));
  std::sort(distances.begin(), distances.end());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(hits[i].distance, distances[i], 1e-5);
  }
}

// Recall@10 of the IVF search vs exhaustive scan improves with nprobe and is
// perfect when probing all lists.
class IvfRecallTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IvfRecallTest, RecallVsExhaustive) {
  const std::size_t nprobe = GetParam();
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  Rng rng(21);
  for (int i = 0; i < 400; ++i) {
    index.AddImage("u" + std::to_string(i), i, 0, Attrs(), "",
                   NearCentroid(*quantizer, rng.Below(4), 2.0f, 500 + i));
  }
  double recall_sum = 0.0;
  const int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    const FeatureVector probe =
        NearCentroid(*quantizer, rng.Below(4), 2.0f, 9000 + q);
    const auto approx = index.Search(probe, 10, nprobe);
    const auto exact = index.SearchExhaustive(probe, 10);
    int found = 0;
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.image_id == e.image_id) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / 10.0;
  }
  const double recall = recall_sum / kQueries;
  if (nprobe >= 4) {
    EXPECT_NEAR(recall, 1.0, 1e-9);  // probing all lists == exhaustive
  } else {
    EXPECT_GT(recall, 0.4);  // single probe still finds the local cluster
  }
}

INSTANTIATE_TEST_SUITE_P(Nprobe, IvfRecallTest, ::testing::Values(1, 2, 4));

TEST(IvfIndexTest, CategoryFilterScopesResults) {
  auto quantizer = GridQuantizer();
  IvfIndex index(quantizer);
  // Two categories interleaved around centroid 0.
  for (int i = 0; i < 40; ++i) {
    index.AddImage("u" + std::to_string(i), i + 1,
                   static_cast<CategoryId>(i % 2), Attrs(), "",
                   NearCentroid(*quantizer, 0, 0.4f, 700 + i));
  }
  const FeatureVector probe = NearCentroid(*quantizer, 0, 0.1f, 999);
  const auto unfiltered = index.Search(probe, 20, 4);
  EXPECT_EQ(unfiltered.size(), 20u);

  const auto only_zero = index.Search(probe, 20, 4, /*category_filter=*/0);
  ASSERT_FALSE(only_zero.empty());
  for (const auto& hit : only_zero) EXPECT_EQ(hit.category, 0u);
  const auto only_one = index.Search(probe, 20, 4, /*category_filter=*/1);
  for (const auto& hit : only_one) EXPECT_EQ(hit.category, 1u);
  EXPECT_EQ(only_zero.size() + only_one.size(), 40u);

  // A category with no images returns nothing.
  EXPECT_TRUE(index.Search(probe, 20, 4, /*category_filter=*/7).empty());
}

TEST(IvfIndexTest, ConcurrentSearchDuringInserts) {
  auto quantizer = GridQuantizer();
  IvfIndexConfig config;
  config.initial_list_capacity = 8;
  config.nprobe = 4;
  IvfIndex index(quantizer, config);
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  const FeatureVector probe = NearCentroid(*quantizer, 0, 0.2f, 0);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto hits = index.Search(probe, 10);
        // Results must be sorted and contain no duplicate ids.
        for (std::size_t i = 1; i < hits.size(); ++i) {
          if (hits[i - 1].distance > hits[i].distance) errors.fetch_add(1);
        }
      }
    });
  }
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    index.AddImage("u" + std::to_string(i), i, 0, Attrs(), "",
                   NearCentroid(*quantizer, rng.Below(4), 0.5f, i));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(index.size(), 20000u);
}

}  // namespace
}  // namespace jdvs

// Tests for the binary hash-code baseline (paper references [22, 23, 29]).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/extractor.h"
#include "hashing/binary_hash.h"
#include "store/catalog.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

TEST(BinaryHashTest, SignatureIsDeterministicAndSized) {
  BinaryHashIndex index(16, {.num_bits = 128});
  Rng rng(1);
  FeatureVector v(16);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  const auto a = index.Sign(v);
  const auto b = index.Sign(v);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);  // 128 bits = 2 words
  EXPECT_EQ(index.bytes_per_vector(), 16u);
}

TEST(BinaryHashTest, BitCountRoundsUpToWords) {
  BinaryHashIndex index(8, {.num_bits = 70});
  EXPECT_EQ(index.num_bits(), 128u);
}

TEST(BinaryHashTest, HammingDistanceBasics) {
  const std::uint64_t a[2] = {0b1011, 0};
  const std::uint64_t b[2] = {0b0010, 1ULL << 63};
  EXPECT_EQ(BinaryHashIndex::HammingDistance(a, a, 2), 0u);
  EXPECT_EQ(BinaryHashIndex::HammingDistance(a, b, 2), 3u);  // bits 0,3,127
}

TEST(BinaryHashTest, SimilarVectorsGetSimilarCodes) {
  BinaryHashIndex index(32, {.num_bits = 128});
  Rng rng(2);
  FeatureVector base(32);
  for (float& x : base) x = static_cast<float>(rng.NextGaussian()) * 4.f;
  FeatureVector near = base;
  for (float& x : near) x += static_cast<float>(rng.NextGaussian()) * 0.1f;
  FeatureVector far(32);
  for (float& x : far) x = static_cast<float>(rng.NextGaussian()) * 4.f;

  const auto sig_base = index.Sign(base);
  const auto sig_near = index.Sign(near);
  const auto sig_far = index.Sign(far);
  const auto d_near =
      BinaryHashIndex::HammingDistance(sig_base.data(), sig_near.data(), 2);
  const auto d_far =
      BinaryHashIndex::HammingDistance(sig_base.data(), sig_far.data(), 2);
  EXPECT_LT(d_near, d_far);
}

TEST(BinaryHashTest, FindsExactDuplicate) {
  BinaryHashIndex index(16);
  Rng rng(3);
  FeatureVector target(16);
  for (float& x : target) x = static_cast<float>(rng.NextGaussian());
  index.Add(7, target);
  for (int i = 0; i < 100; ++i) {
    FeatureVector other(16);
    for (float& x : other) x = static_cast<float>(rng.NextGaussian()) + 10.f;
    index.Add(100 + i, other);
  }
  const auto results = index.Search(target, 1);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].image_id, 7u);
}

TEST(BinaryHashTest, RecallAgainstBruteForce) {
  const SyntheticEmbedder embedder({.dim = 32, .num_categories = 10,
                                    .seed = 4});
  BinaryHashIndex index(32, {.num_bits = 128, .rerank_candidates = 64});
  std::vector<std::pair<ImageId, FeatureVector>> all;
  for (ProductId pid = 1; pid <= 500; ++pid) {
    const auto f = embedder.Extract(
        {MakeImageUrl(pid, 0), pid, static_cast<CategoryId>(pid % 10)});
    index.Add(pid, f);
    all.emplace_back(pid, f);
  }
  double recall_sum = 0.0;
  constexpr int kQueries = 40;
  for (int q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + (q * 17) % 500;
    const auto query =
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 10), q);
    TopK exact(10);
    for (const auto& [id, v] : all) exact.Offer(id, L2SquaredDistance(query, v));
    const auto truth = exact.TakeSorted();
    const auto approx = index.Search(query, 10);
    int found = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.image_id == t.image_id) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / 10.0;
  }
  EXPECT_GT(recall_sum / kQueries, 0.6);
}

TEST(BinaryHashTest, MoreBitsImproveRecall) {
  const SyntheticEmbedder embedder({.dim = 32, .num_categories = 10,
                                    .seed = 5});
  std::vector<std::pair<ImageId, FeatureVector>> all;
  for (ProductId pid = 1; pid <= 400; ++pid) {
    all.emplace_back(pid,
                     embedder.Extract({MakeImageUrl(pid, 0), pid,
                                       static_cast<CategoryId>(pid % 10)}));
  }
  const auto recall_with = [&](std::size_t bits) {
    BinaryHashIndex index(32, {.num_bits = bits, .rerank_candidates = 20});
    for (const auto& [id, v] : all) index.Add(id, v);
    double sum = 0.0;
    for (int q = 0; q < 30; ++q) {
      const ProductId pid = 1 + (q * 13) % 400;
      const auto query =
          embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 10), q);
      TopK exact(5);
      for (const auto& [id, v] : all) exact.Offer(id, L2SquaredDistance(query, v));
      const auto truth = exact.TakeSorted();
      const auto approx = index.Search(query, 5);
      int found = 0;
      for (const auto& t : truth) {
        for (const auto& a : approx) {
          if (a.image_id == t.image_id) {
            ++found;
            break;
          }
        }
      }
      sum += static_cast<double>(found) / 5.0;
    }
    return sum / 30.0;
  };
  EXPECT_GE(recall_with(256) + 0.05, recall_with(64));  // allow tiny noise
}

TEST(BinaryHashTest, EmptyIndexReturnsNothing) {
  BinaryHashIndex index(8);
  EXPECT_TRUE(index.Search(FeatureVector(8, 0.f), 3).empty());
}

}  // namespace
}  // namespace jdvs

// Tests for the real-time indexer: the Figure 6 message dispatch, the
// re-listing reuse fast path, partition filtering, and counters.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/quantizer.h"
#include "common/hash.h"
#include "index/ivf_index.h"
#include "index/realtime_indexer.h"
#include "store/catalog.h"
#include "store/feature_db.h"

namespace jdvs {
namespace {

constexpr std::size_t kDim = 16;

struct Fixture {
  Fixture()
      : embedder({.dim = kDim, .num_categories = 8, .seed = 5}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}),
        quantizer(MakeQuantizer()),
        index(quantizer),
        indexer(index, features) {}

  static std::shared_ptr<const CoarseQuantizer> MakeQuantizer() {
    // 8 centroids at the category prototypes, so class assignment is
    // meaningful.
    const SyntheticEmbedder e({.dim = kDim, .num_categories = 8, .seed = 5});
    std::vector<float> centroids;
    for (CategoryId c = 0; c < 8; ++c) {
      // Prototype approximated by a noiseless product point of a synthetic
      // product in that category.
      const auto f = e.ExtractQuery(100000 + c, c, 0);
      centroids.insert(centroids.end(), f.begin(), f.end());
    }
    return std::make_shared<CoarseQuantizer>(std::move(centroids), kDim);
  }

  ProductUpdateMessage Add(ProductId id, CategoryId category,
                           std::size_t images) {
    ProductUpdateMessage m;
    m.type = UpdateType::kAddProduct;
    m.product_id = id;
    m.category_id = category;
    m.attributes = {.sales = 1, .price_cents = 100, .praise = 0};
    for (std::size_t k = 0; k < images; ++k) {
      m.image_urls.push_back(MakeImageUrl(id, static_cast<std::uint32_t>(k)));
    }
    return m;
  }

  SyntheticEmbedder embedder;
  FeatureDb features;
  std::shared_ptr<const CoarseQuantizer> quantizer;
  IvfIndex index;
  RealTimeIndexer indexer;
};

TEST(RealTimeIndexerTest, AdditionCreatesSearchableEntries) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 3));
  EXPECT_EQ(fx.index.size(), 3u);
  EXPECT_TRUE(fx.index.HasProduct(1));
  // Data freshness: immediately searchable.
  const auto query = fx.embedder.ExtractQuery(1, 2, 7);
  const auto hits = fx.index.Search(query, 3, /*nprobe=*/8);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].product_id, 1u);

  const auto& counters = fx.indexer.counters();
  EXPECT_EQ(counters.additions, 1u);
  EXPECT_EQ(counters.images_added, 3u);
  EXPECT_EQ(counters.features_extracted, 3u);
  EXPECT_EQ(counters.features_reused, 0u);
}

TEST(RealTimeIndexerTest, DeletionInvalidatesAllImages) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 3));
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 1;
  fx.indexer.Apply(del);
  EXPECT_EQ(fx.indexer.counters().deletions, 1u);
  EXPECT_EQ(fx.indexer.counters().images_invalidated, 3u);
  const auto query = fx.embedder.ExtractQuery(1, 2, 7);
  EXPECT_TRUE(fx.index.Search(query, 3, 8).empty());
}

TEST(RealTimeIndexerTest, RelistingReusesIndexEntries) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 3));
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 1;
  fx.indexer.Apply(del);

  // Re-list: "we simply update its validity in the bitmap and reuse its
  // images' features" — no new entries, no extraction.
  fx.indexer.Apply(fx.Add(1, 2, 3));
  EXPECT_EQ(fx.index.size(), 3u);  // unchanged
  const auto& counters = fx.indexer.counters();
  EXPECT_EQ(counters.images_revalidated, 3u);
  EXPECT_EQ(counters.features_extracted, 3u);  // only the original ones
  const auto query = fx.embedder.ExtractQuery(1, 2, 7);
  EXPECT_FALSE(fx.index.Search(query, 3, 8).empty());
}

TEST(RealTimeIndexerTest, AdditionWithPrewarmedFeaturesCountsReuse) {
  Fixture fx;
  // Features already in the KV store (extracted in some earlier life).
  const auto msg = fx.Add(9, 1, 2);
  for (const auto& url : msg.image_urls) {
    fx.features.Preload(url, fx.embedder.Extract({url, 9, 1}));
  }
  fx.indexer.Apply(msg);
  EXPECT_EQ(fx.indexer.counters().features_reused, 2u);
  EXPECT_EQ(fx.indexer.counters().features_extracted, 0u);
  EXPECT_EQ(fx.index.size(), 2u);
}

TEST(RealTimeIndexerTest, AttributeUpdateTouchesAllProductImages) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 3));
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 1;
  upd.attributes = {.sales = 500, .price_cents = 2, .praise = 50};
  fx.indexer.Apply(upd);
  EXPECT_EQ(fx.indexer.counters().attribute_updates, 1u);
  EXPECT_EQ(fx.indexer.counters().entries_touched, 3u);
  const auto query = fx.embedder.ExtractQuery(1, 2, 7);
  const auto hits = fx.index.Search(query, 1, 8);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].attributes.sales, 500u);
}

TEST(RealTimeIndexerTest, AttributeUpdateForUnknownProductIsNoop) {
  Fixture fx;
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 777;
  fx.indexer.Apply(upd);
  EXPECT_EQ(fx.indexer.counters().attribute_updates, 1u);
  EXPECT_EQ(fx.indexer.counters().entries_touched, 0u);
}

TEST(RealTimeIndexerTest, PartitionFilterSkipsForeignImages) {
  Fixture fx;
  // Accept only URLs with even FNV hash.
  RealTimeIndexer filtered(fx.index, fx.features,
                           [](std::string_view url) {
                             return Fnv1a64(url) % 2 == 0;
                           });
  const auto msg = fx.Add(4, 3, 6);
  std::size_t expected = 0;
  for (const auto& url : msg.image_urls) {
    if (Fnv1a64(url) % 2 == 0) ++expected;
  }
  filtered.Apply(msg);
  EXPECT_EQ(fx.index.size(), expected);
  EXPECT_EQ(filtered.counters().images_added, expected);
}

TEST(RealTimeIndexerTest, LatencyRecordedPerMessage) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 3));
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 1;
  fx.indexer.Apply(upd);
  EXPECT_EQ(fx.indexer.latency_micros().Count(), 2u);
  fx.indexer.ResetStats();
  EXPECT_EQ(fx.indexer.latency_micros().Count(), 0u);
  EXPECT_EQ(fx.indexer.counters().TotalMessages(), 0u);
}

TEST(RealTimeIndexerTest, NewImagesOnExistingProductAreIndexed) {
  Fixture fx;
  fx.indexer.Apply(fx.Add(1, 2, 2));
  // Same product re-announced with one extra image.
  fx.indexer.Apply(fx.Add(1, 2, 3));
  EXPECT_EQ(fx.index.size(), 3u);
  EXPECT_EQ(fx.indexer.counters().images_revalidated, 2u);
  EXPECT_EQ(fx.indexer.counters().images_added, 3u);
}

TEST(RealTimeIndexerCountersTest, AddAccumulates) {
  RealTimeIndexerCounters a;
  a.additions = 2;
  a.images_added = 5;
  RealTimeIndexerCounters b;
  b.additions = 3;
  b.deletions = 1;
  a.Add(b);
  EXPECT_EQ(a.additions, 5u);
  EXPECT_EQ(a.deletions, 1u);
  EXPECT_EQ(a.images_added, 5u);
  EXPECT_EQ(a.TotalMessages(), 6u);
}

}  // namespace
}  // namespace jdvs

// Control-plane tests: replica state machine, heartbeat failure detection,
// automatic recovery with snapshot + catch-up replay, and rolling full-index
// deployment under live traffic.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "ctrl/controller.h"
#include "ctrl/failure_detector.h"
#include "ctrl/replica_state.h"
#include "net/fault_injector.h"
#include "search/cluster_builder.h"
#include "workload/catalog_gen.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

using ctrl::ReplicaState;

// Polls `done` until true or the deadline passes.
bool WaitUntil(const std::function<bool()>& done,
               Micros timeout_micros = 10'000'000) {
  const auto& clock = MonotonicClock::Instance();
  const Micros deadline = clock.NowMicros() + timeout_micros;
  while (!done()) {
    if (clock.NowMicros() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ReplicaStateTableTest, TransitionsCountsAndGauges) {
  obs::Registry registry;
  ctrl::ReplicaStateTable table(&registry);
  const std::size_t a = table.Register("s-a");
  table.Register("s-b");
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Get(a), ReplicaState::kUp);
  EXPECT_TRUE(table.Serving(a));

  table.Set(a, ReplicaState::kSuspect);
  EXPECT_TRUE(table.Serving(a));  // a missed heartbeat is a hint, not a verdict
  table.Set(a, ReplicaState::kDown);
  EXPECT_FALSE(table.Serving(a));
  EXPECT_GT(table.down_since_micros(a), 0);
  table.Set(a, ReplicaState::kRecovering);
  EXPECT_FALSE(table.Serving(a));
  table.Set(a, ReplicaState::kUp);
  table.Set(a, ReplicaState::kUp);  // duplicate set: no extra transition

  const ctrl::ReplicaStateCounts counts = table.Counts();
  EXPECT_EQ(counts.up, 2u);
  EXPECT_EQ(counts.down, 0u);
  EXPECT_EQ(registry
                .GetGauge(obs::Labeled("jdvs_ctrl_replica_state", "replica",
                                       "s-a"))
                .Value(),
            static_cast<std::int64_t>(ReplicaState::kUp));
  EXPECT_EQ(registry
                .GetCounter(obs::Labeled("jdvs_ctrl_transitions_total", "to",
                                         "down"))
                .Value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter(
                    obs::Labeled("jdvs_ctrl_transitions_total", "to", "up"))
                .Value(),
            1u);
}

TEST(ReplicaStateNameTest, AllStatesNamed) {
  EXPECT_STREQ(ReplicaStateName(ReplicaState::kUp), "up");
  EXPECT_STREQ(ReplicaStateName(ReplicaState::kSuspect), "suspect");
  EXPECT_STREQ(ReplicaStateName(ReplicaState::kDown), "down");
  EXPECT_STREQ(ReplicaStateName(ReplicaState::kRecovering), "recovering");
}

TEST(FailureDetectorTest, MarksDownAndReinstatesOnAck) {
  obs::Registry registry;
  ctrl::ReplicaStateTable table(&registry);
  Node node("hb-target", 1);
  const std::size_t slot = table.Register(node.name());

  ctrl::FailureDetectorConfig fc;
  fc.heartbeat_period_micros = 1'000;
  fc.suspect_after_misses = 1;
  fc.down_after_misses = 2;
  fc.reinstate_on_ack = true;  // operator-revive mode
  ctrl::FailureDetector detector({{&node, slot}}, table, fc, &registry);
  detector.Start();

  // A healthy node stays UP across many rounds.
  ASSERT_TRUE(WaitUntil([&] { return detector.heartbeats_sent() >= 5; }));
  EXPECT_EQ(table.Get(slot), ReplicaState::kUp);

  // Fail switch on: probes error out, misses accumulate, DOWN follows.
  node.set_failed(true);
  ASSERT_TRUE(WaitUntil([&] { return table.Get(slot) == ReplicaState::kDown; }));
  EXPECT_GT(detector.misses(), 0u);

  // Operator revives the node: the next ack reinstates it directly.
  node.set_failed(false);
  ASSERT_TRUE(WaitUntil([&] { return table.Get(slot) == ReplicaState::kUp; }));
  detector.Stop();
  EXPECT_GT(registry.GetCounter("jdvs_ctrl_heartbeats_total").Value(), 0u);
  EXPECT_GT(registry.GetCounter("jdvs_ctrl_heartbeat_misses_total").Value(),
            0u);
}

TEST(FailureDetectorTest, ProbeTimeoutSurvivesTotalProbeLoss) {
  // The fabric eats every probe: without a per-probe timeout the
  // one-outstanding-probe rule would wedge this replica's probing forever
  // (in_flight never clears) and the outage would go unnoticed. With the
  // timeout, dropped probes come back as misses and DOWN follows.
  obs::Registry registry;
  ctrl::ReplicaStateTable table(&registry);
  FaultInjector injector(11);
  Node node("hb-blackhole", 1);
  node.set_fault_injector(&injector);
  injector.SetLink("ctrl", node.name(),
                   LinkFaults{.drop_probability = 1.0});
  const std::size_t slot = table.Register(node.name());

  ctrl::FailureDetectorConfig fc;
  fc.heartbeat_period_micros = 2'000;
  fc.probe_timeout_micros = 3'000;
  fc.suspect_after_misses = 1;
  fc.down_after_misses = 2;
  fc.reinstate_on_ack = true;
  ctrl::FailureDetector detector({{&node, slot}}, table, fc, &registry);
  detector.Start();
  ASSERT_TRUE(
      WaitUntil([&] { return table.Get(slot) == ReplicaState::kDown; }));
  EXPECT_GT(detector.misses(), 0u);
  // More than one probe was dispatched — the timeout kept clearing
  // in_flight (without it, the one-outstanding-probe rule would have
  // stopped after the first dropped probe).
  EXPECT_GE(detector.heartbeats_sent(), 2u);

  // Network heals: acks flow again and the replica is reinstated.
  injector.Heal("ctrl", node.name());
  ASSERT_TRUE(WaitUntil([&] { return table.Get(slot) == ReplicaState::kUp; }));
  detector.Stop();
}

TEST(FailureDetectorTest, LatencyOutlierEjectedDespiteHealthyHeartbeats) {
  // The gray-failure case: a replica acks every probe but answers queries
  // 50x slow. Heartbeat detection alone never touches it; the latency
  // EWMA comparison marks it SUSPECT, and it re-enters once its EWMA
  // recovers below the hysteresis band.
  obs::Registry registry;
  ctrl::ReplicaStateTable table(&registry);
  Node a("ewma-a", 1);
  Node b("ewma-b", 1);
  Node limper("ewma-limper", 1);
  const std::size_t slot_a = table.Register(a.name());
  const std::size_t slot_b = table.Register(b.name());
  const std::size_t slot_l = table.Register(limper.name());

  ctrl::FailureDetectorConfig fc;
  fc.heartbeat_period_micros = 2'000;
  fc.suspect_after_misses = 2;
  fc.down_after_misses = 10;
  fc.latency_outlier_factor = 3.0;
  fc.latency_outlier_min_micros = 500;
  fc.latency_reenter_fraction = 0.7;
  ctrl::FailureDetector detector(
      {{&a, slot_a}, {&b, slot_b}, {&limper, slot_l}}, table, fc, &registry);

  // Healthy peers around 400us, the limper at 20ms (50x): threshold is
  // max(500, 3 x 400) = 1200us, so the limper is way outside.
  for (int i = 0; i < 16; ++i) {
    table.RecordLatency(slot_a, 400);
    table.RecordLatency(slot_b, 400);
    table.RecordLatency(slot_l, 20'000);
  }
  detector.Start();
  ASSERT_TRUE(
      WaitUntil([&] { return table.Get(slot_l) == ReplicaState::kSuspect; }));
  EXPECT_GE(detector.latency_ejections(), 1u);
  EXPECT_GE(registry.GetCounter("jdvs_ctrl_latency_ejections_total").Value(),
            1u);
  // Healthy peers stay UP, and the limper keeps acking (it is SUSPECT for
  // latency, not for liveness) — acks alone must NOT reinstate it.
  EXPECT_EQ(table.Get(slot_a), ReplicaState::kUp);
  EXPECT_EQ(table.Get(slot_b), ReplicaState::kUp);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(table.Get(slot_l), ReplicaState::kSuspect);

  // The limper recovers: feed fast samples until its EWMA drops below the
  // re-enter band; the next ack then reinstates UP.
  ASSERT_TRUE(WaitUntil([&] {
    table.RecordLatency(slot_l, 400);
    return table.Get(slot_l) == ReplicaState::kUp;
  }));
  detector.Stop();
}

// ---- Full-cluster fixtures ----

class CtrlClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("jdvs_ctrl_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void MakeCluster(std::size_t partitions, std::size_t replicas,
                   std::size_t products = 120) {
    ClusterConfig config;
    config.num_partitions = partitions;
    config.replicas_per_partition = replicas;
    config.num_brokers = 1;
    config.num_blenders = 1;
    config.searcher_threads = 1;
    config.broker_threads = 2;
    config.blender_threads = 2;
    config.embedder = {.dim = 16, .num_categories = 4, .seed = 11};
    config.detector = {.num_categories = 4, .top1_accuracy = 1.0};
    config.extraction = {.mean_micros = 0};
    config.kmeans.num_clusters = 4;
    config.training_sample = 256;
    config.ivf.nprobe = 4;
    config.build_threads = 4;
    cluster_ = std::make_unique<VisualSearchCluster>(config);
    CatalogGenConfig cg;
    cg.num_products = products;
    cg.num_categories = 4;
    GenerateCatalog(cg, cluster_->catalog(), cluster_->image_store(),
                    &cluster_->features());
    cluster_->BuildAndInstallFullIndexes();
    cluster_->Start();
  }

  ctrl::ControllerConfig FastControllerConfig() const {
    ctrl::ControllerConfig cc;
    cc.detector.heartbeat_period_micros = 2'000;
    cc.detector.suspect_after_misses = 1;
    cc.detector.down_after_misses = 2;
    cc.recovery_poll_micros = 1'000;
    cc.snapshot_dir = dir_.string();
    return cc;
  }

  void PublishProduct(ProductId id, CategoryId category = 2) {
    ProductUpdateMessage add;
    add.type = UpdateType::kAddProduct;
    add.product_id = id;
    add.category_id = category;
    add.attributes = {.sales = 3, .price_cents = 900, .praise = 1};
    for (std::uint32_t k = 0; k < 2; ++k) {
      add.image_urls.push_back(MakeImageUrl(id, k));
    }
    cluster_->PublishUpdate(std::move(add));
  }

  bool Finds(ProductId id, CategoryId category, std::uint64_t seed) {
    const QueryResponse response =
        cluster_->Query(QueryImage{id, category, seed});
    for (const auto& r : response.results) {
      if (r.hit.product_id == id) return true;
    }
    return false;
  }

  std::filesystem::path dir_;
  std::unique_ptr<VisualSearchCluster> cluster_;
};

TEST_F(CtrlClusterTest, AutoRecoveryRevivesCrashedReplicaAndCatchesUp) {
  MakeCluster(/*partitions=*/2, /*replicas=*/2);
  ctrl::ClusterController controller(*cluster_, FastControllerConfig());
  controller.Start();

  // Hard-kill one replica: fail switch on, index and high-water mark gone.
  Searcher& victim = cluster_->searcher(0, 0);
  victim.Crash();
  EXPECT_FALSE(victim.HasIndex());
  const std::size_t slot = cluster_->replica_slot(0, 0);

  // Publish updates while the replica is down; recovery must replay them.
  for (int i = 0; i < 10; ++i) {
    PublishProduct(static_cast<ProductId>(9000 + i));
  }
  const std::uint64_t published_seq = cluster_->last_update_sequence();

  ASSERT_TRUE(WaitUntil([&] {
    return controller.recoveries() >= 1 &&
           cluster_->replica_states().Get(slot) == ctrl::ReplicaState::kUp;
  }));
  controller.Stop();

  EXPECT_TRUE(victim.HasIndex());
  EXPECT_FALSE(victim.node().failed());
  // Catch-up replay + live consumption covered everything published.
  ASSERT_TRUE(cluster_->WaitForUpdatesDrained());
  EXPECT_GE(victim.applied_sequence(), published_seq);
  // The mid-outage additions are searchable (both partitions serving).
  int found = 0;
  for (int i = 0; i < 10; ++i) {
    found += Finds(static_cast<ProductId>(9000 + i), 2, 100 + i) ? 1 : 0;
  }
  EXPECT_GE(found, 8);
  EXPECT_EQ(cluster_->broker(0).partition_failures(), 0u);
}

TEST_F(CtrlClusterTest, DetectOnlyModeLeavesRecoveryToOperator) {
  MakeCluster(/*partitions=*/1, /*replicas=*/2);
  ctrl::ControllerConfig cc = FastControllerConfig();
  cc.auto_recover = false;
  ctrl::ClusterController controller(*cluster_, cc);
  controller.Start();

  Searcher& victim = cluster_->searcher(0, 1);
  const std::size_t slot = cluster_->replica_slot(0, 1);
  victim.node().set_failed(true);
  ASSERT_TRUE(WaitUntil([&] {
    return cluster_->replica_states().Get(slot) == ctrl::ReplicaState::kDown;
  }));
  EXPECT_EQ(controller.recoveries(), 0u);

  // Manual revive; the detector reinstates on the next ack.
  victim.node().set_failed(false);
  ASSERT_TRUE(WaitUntil([&] {
    return cluster_->replica_states().Get(slot) == ctrl::ReplicaState::kUp;
  }));
  controller.Stop();
  EXPECT_EQ(controller.recoveries(), 0u);
}

TEST_F(CtrlClusterTest, BrokerSkipsReplicasMarkedDown) {
  MakeCluster(/*partitions=*/2, /*replicas=*/2);
  // Mark partition 0 / replica 0 DOWN directly (no detector running): the
  // broker must route to replica 1 without a single failed dispatch.
  cluster_->replica_states().Set(cluster_->replica_slot(0, 0),
                                 ctrl::ReplicaState::kDown);
  const auto record = cluster_->catalog().Get(5);
  ASSERT_TRUE(record.has_value());
  for (int q = 0; q < 10; ++q) {
    const QueryResponse response =
        cluster_->Query(QueryImage{5, record->category, 40u + q});
    EXPECT_FALSE(response.degraded);
  }
  EXPECT_EQ(cluster_->broker(0).failovers(), 0u);
  EXPECT_EQ(cluster_->broker(0).partition_failures(), 0u);
  EXPECT_GT(cluster_->broker(0).state_skips(), 0u);
}

TEST_F(CtrlClusterTest, NoServingReplicaDegradesGracefully) {
  MakeCluster(/*partitions=*/2, /*replicas=*/1);
  // The whole partition is marked DOWN: the broker fast-fails the slot and
  // the blender serves a partial (degraded) answer, never an error.
  cluster_->replica_states().Set(cluster_->replica_slot(1, 0),
                                 ctrl::ReplicaState::kDown);
  const auto record = cluster_->catalog().Get(7);
  ASSERT_TRUE(record.has_value());
  const QueryResponse response =
      cluster_->Query(QueryImage{7, record->category, 3});
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.broker_failures, 0u);  // the broker answered, partially
  EXPECT_GE(cluster_->broker(0).partition_failures(), 1u);
  EXPECT_EQ(cluster_->broker(0).failovers(), 0u);  // no doomed dispatches
  EXPECT_GE(cluster_->registry()
                .GetCounter(obs::Labeled("jdvs_blender_degraded_total",
                                         "blender", "blender-0"))
                .Value(),
            1u);
}

TEST_F(CtrlClusterTest, RollingDeploymentUnderLiveLoadKeepsServing) {
  MakeCluster(/*partitions=*/2, /*replicas=*/2, /*products=*/160);
  // Relaxed detector: under sustained query load a probe can queue behind
  // real scans, and a spurious DOWN mid-rollout would turn the swap of that
  // replica into a recovery instead (skewing the report assertions below).
  ctrl::ControllerConfig cc = FastControllerConfig();
  cc.detector.heartbeat_period_micros = 20'000;
  cc.detector.down_after_misses = 1000;
  ctrl::ClusterController controller(*cluster_, cc);
  controller.Start();

  const std::uint64_t failures_before =
      cluster_->broker(0).partition_failures();

  // Sustained query + update load while the rollout swaps every replica.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::thread load([&] {
    std::uint64_t seed = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const ProductId id = 1 + (seed * 13) % 160;
      const auto record = cluster_->catalog().Get(id);
      if (record) {
        cluster_->Query(QueryImage{id, record->category, seed});
        queries.fetch_add(1, std::memory_order_relaxed);
      }
      ++seed;
    }
  });
  std::thread updates([&] {
    for (int i = 0; i < 30 && !stop.load(std::memory_order_relaxed); ++i) {
      PublishProduct(static_cast<ProductId>(7000 + i), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const ctrl::RolloutReport report = controller.DeployFullIndex();
  stop.store(true);
  load.join();
  updates.join();
  controller.Stop();

  EXPECT_EQ(report.partitions, 2u);
  EXPECT_EQ(report.replicas_updated, 4u);
  EXPECT_EQ(report.replicas_skipped, 0u);
  // The invariant held: no partition was ever fully drained, so no query
  // lost coverage.
  EXPECT_EQ(cluster_->broker(0).partition_failures(), failures_before);
  EXPECT_GT(queries.load(), 0u);

  // Every replica runs the new generation: high-water mark at or past the
  // rollout base.
  ASSERT_TRUE(cluster_->WaitForUpdatesDrained());
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_GE(cluster_->searcher(p, r).applied_sequence(),
                report.base_sequence)
          << "p" << p << " r" << r;
    }
  }
  // The day log was re-based: only the post-rollout delta remains.
  std::uint64_t min_seq = ~0ull;
  cluster_->day_log().Replay([&](const ProductUpdateMessage& m) {
    min_seq = std::min(min_seq, m.sequence);
  });
  if (min_seq != ~0ull) {
    EXPECT_GT(min_seq, report.base_sequence);
  }

  // Updates published after the rollout still apply (consumers reattached).
  PublishProduct(7777, 1);
  ASSERT_TRUE(cluster_->WaitForUpdatesDrained());
  EXPECT_TRUE(WaitUntil([&] { return Finds(7777, 1, 991); }, 2'000'000));
}

TEST_F(CtrlClusterTest, SnapshotAllPartitionsSeedsRecovery) {
  MakeCluster(/*partitions=*/2, /*replicas=*/1);
  ctrl::ControllerConfig cc = FastControllerConfig();
  ctrl::ClusterController controller(*cluster_, cc);
  controller.SnapshotAllPartitions();
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(std::filesystem::exists(
        dir_ / ("partition-" + std::to_string(p) + ".jdvsidx")));
  }

  controller.Start();
  // Single replica per partition: while it is down the partition degrades,
  // and recovery restores it from the base snapshot (no sibling exists).
  Searcher& victim = cluster_->searcher(1, 0);
  victim.Crash();
  ASSERT_TRUE(WaitUntil([&] { return controller.recoveries() >= 1; }));
  controller.Stop();
  EXPECT_TRUE(victim.HasIndex());
  ASSERT_TRUE(cluster_->WaitForUpdatesDrained());
  const auto record = cluster_->catalog().Get(3);
  ASSERT_TRUE(record.has_value());
  EXPECT_NO_THROW(cluster_->Query(QueryImage{3, record->category, 8}));
}

}  // namespace
}  // namespace jdvs

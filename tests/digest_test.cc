// Tests for index content digests (replica convergence checking).
#include <gtest/gtest.h>

#include <memory>

#include "index/digest.h"
#include "index/realtime_indexer.h"
#include "store/catalog.h"
#include "store/feature_db.h"

namespace jdvs {
namespace {

struct Fixture {
  Fixture()
      : embedder({.dim = 16, .num_categories = 4, .seed = 3}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}),
        quantizer(std::make_shared<CoarseQuantizer>(
            std::vector<float>(16, 0.f), 16)) {}

  std::unique_ptr<IvfIndex> MakeIndex() {
    return std::make_unique<IvfIndex>(quantizer);
  }

  ProductUpdateMessage Add(ProductId id, std::size_t images) {
    ProductUpdateMessage m;
    m.type = UpdateType::kAddProduct;
    m.product_id = id;
    m.category_id = static_cast<CategoryId>(id % 4);
    m.attributes = {.sales = id * 10, .price_cents = 100, .praise = id};
    for (std::size_t k = 0; k < images; ++k) {
      m.image_urls.push_back(MakeImageUrl(id, static_cast<std::uint32_t>(k)));
    }
    return m;
  }

  SyntheticEmbedder embedder;
  FeatureDb features;
  std::shared_ptr<const CoarseQuantizer> quantizer;
};

TEST(IndexDigestTest, EmptyIndexesMatch) {
  Fixture fx;
  const auto a = fx.MakeIndex();
  const auto b = fx.MakeIndex();
  EXPECT_EQ(ComputeIndexDigest(*a), ComputeIndexDigest(*b));
  EXPECT_EQ(ComputeIndexDigest(*a).entries, 0u);
}

TEST(IndexDigestTest, ReplicasConvergeOnSameStream) {
  Fixture fx;
  auto a = fx.MakeIndex();
  auto b = fx.MakeIndex();
  RealTimeIndexer ia(*a, fx.features);
  RealTimeIndexer ib(*b, fx.features);
  for (ProductId id = 1; id <= 30; ++id) {
    const auto msg = fx.Add(id, 3);
    ia.Apply(msg);
    ib.Apply(msg);
  }
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 7;
  ia.Apply(del);
  ib.Apply(del);
  const IndexDigest da = ComputeIndexDigest(*a);
  const IndexDigest db = ComputeIndexDigest(*b);
  EXPECT_EQ(da, db);
  EXPECT_EQ(da.entries, 90u);
  EXPECT_EQ(da.valid_entries, 87u);
}

TEST(IndexDigestTest, OrderInsensitiveAcrossProducts) {
  Fixture fx;
  auto a = fx.MakeIndex();
  auto b = fx.MakeIndex();
  RealTimeIndexer ia(*a, fx.features);
  RealTimeIndexer ib(*b, fx.features);
  // Same set of products, applied in opposite order.
  for (ProductId id = 1; id <= 10; ++id) ia.Apply(fx.Add(id, 2));
  for (ProductId id = 10; id >= 1; --id) ib.Apply(fx.Add(id, 2));
  EXPECT_EQ(ComputeIndexDigest(*a).content_hash,
            ComputeIndexDigest(*b).content_hash);
}

TEST(IndexDigestTest, DivergenceDetected) {
  Fixture fx;
  auto a = fx.MakeIndex();
  auto b = fx.MakeIndex();
  RealTimeIndexer ia(*a, fx.features);
  RealTimeIndexer ib(*b, fx.features);
  for (ProductId id = 1; id <= 10; ++id) {
    const auto msg = fx.Add(id, 2);
    ia.Apply(msg);
    ib.Apply(msg);
  }
  // Replica b misses one attribute update.
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 5;
  upd.attributes = {.sales = 99999, .price_cents = 1, .praise = 0};
  ia.Apply(upd);
  EXPECT_NE(ComputeIndexDigest(*a), ComputeIndexDigest(*b));
}

TEST(IndexDigestTest, ValidityChangesDigest) {
  Fixture fx;
  auto a = fx.MakeIndex();
  RealTimeIndexer ia(*a, fx.features);
  ia.Apply(fx.Add(1, 2));
  const IndexDigest before = ComputeIndexDigest(*a);
  a->SetProductValidity(1, false);
  const IndexDigest after = ComputeIndexDigest(*a);
  EXPECT_NE(before.content_hash, after.content_hash);
  EXPECT_EQ(before.entries, after.entries);
  EXPECT_NE(before.valid_entries, after.valid_entries);
}

}  // namespace
}  // namespace jdvs

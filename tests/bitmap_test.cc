// Tests for the validity bitmap (deletion = O(1) bit flip, Section 2.3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "index/bitmap.h"

namespace jdvs {
namespace {

TEST(BitmapTest, OutOfRangeReadsInvalid) {
  ValidityBitmap bitmap;
  EXPECT_FALSE(bitmap.Get(0));
  EXPECT_FALSE(bitmap.Get(1'000'000));
}

TEST(BitmapTest, SetAndGet) {
  ValidityBitmap bitmap;
  bitmap.Set(5, true);
  EXPECT_TRUE(bitmap.Get(5));
  EXPECT_FALSE(bitmap.Get(4));
  EXPECT_FALSE(bitmap.Get(6));
  bitmap.Set(5, false);
  EXPECT_FALSE(bitmap.Get(5));
}

TEST(BitmapTest, GrowsAcrossChunkBoundaries) {
  ValidityBitmap bitmap;
  // One chunk is 64K bits; write beyond two chunks.
  const std::size_t far = 3 * 64 * 1024 + 17;
  bitmap.Set(far, true);
  EXPECT_TRUE(bitmap.Get(far));
  EXPECT_FALSE(bitmap.Get(far - 1));
  EXPECT_GE(bitmap.size_bits(), far + 1);
}

TEST(BitmapTest, CountValid) {
  ValidityBitmap bitmap;
  for (std::size_t i = 0; i < 1000; i += 3) bitmap.Set(i, true);
  EXPECT_EQ(bitmap.CountValid(), 334u);
  bitmap.Set(0, false);
  EXPECT_EQ(bitmap.CountValid(), 333u);
}

TEST(BitmapTest, WordBoundaryBits) {
  ValidityBitmap bitmap;
  for (const std::size_t i : {63u, 64u, 65u, 127u, 128u}) {
    bitmap.Set(i, true);
    EXPECT_TRUE(bitmap.Get(i));
  }
  bitmap.Set(64, false);
  EXPECT_FALSE(bitmap.Get(64));
  EXPECT_TRUE(bitmap.Get(63));
  EXPECT_TRUE(bitmap.Get(65));
}

TEST(BitmapTest, ConcurrentSettersOnDisjointBits) {
  ValidityBitmap bitmap(8 * 64 * 1024);
  constexpr int kThreads = 8;
  constexpr std::size_t kBitsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bitmap, t] {
      for (std::size_t i = 0; i < kBitsPerThread; ++i) {
        bitmap.Set(static_cast<std::size_t>(t) * kBitsPerThread + i, true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bitmap.CountValid(), kThreads * kBitsPerThread);
}

TEST(BitmapTest, ReadersDuringWritesSeeOnlyValidTransitions) {
  ValidityBitmap bitmap(1024);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  // Bit 7 toggles; readers must only ever see true or false (trivially) and
  // never crash; bit 9 stays set throughout.
  bitmap.Set(9, true);
  std::thread reader([&] {
    while (!stop.load()) {
      (void)bitmap.Get(7);
      if (!bitmap.Get(9)) anomalies.fetch_add(1);
    }
  });
  for (int i = 0; i < 100000; ++i) bitmap.Set(7, i % 2 == 0);
  stop.store(true);
  reader.join();
  EXPECT_EQ(anomalies.load(), 0);
}

}  // namespace
}  // namespace jdvs

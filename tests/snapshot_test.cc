// Tests for index snapshot persistence: round trips, corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "index/full_index_builder.h"
#include "index/snapshot.h"
#include "pq/pq_snapshot.h"
#include "search/searcher.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("jdvs_snapshot_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

struct Built {
  Built() : features(embedder, ExtractionCostModel{.mean_micros = 0}) {
    CatalogGenConfig cg;
    cg.num_products = 80;
    cg.num_categories = 8;
    GenerateCatalog(cg, catalog, images);
    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = 16;
    fc.index_config.nprobe = 4;
    FullIndexBuilder builder(catalog, images, features, fc);
    index = builder.Build(builder.TrainQuantizer());
  }
  SyntheticEmbedder embedder{{.dim = 24, .num_categories = 8, .seed = 2}};
  ProductCatalog catalog;
  ImageStore images;
  FeatureDb features;
  std::unique_ptr<IvfIndex> index;
};

TEST_F(SnapshotTest, RoundTripPreservesSearchResults) {
  Built built;
  built.index->SetProductValidity(3, false);  // some invalid state too
  const std::string path = PathFor("index.snap");
  SaveIndexSnapshot(*built.index, path);
  const auto loaded = LoadIndexSnapshot(path);

  ASSERT_EQ(loaded->size(), built.index->size());
  EXPECT_EQ(loaded->Stats().valid_images, built.index->Stats().valid_images);
  EXPECT_EQ(loaded->Stats().num_lists, built.index->Stats().num_lists);

  for (ProductId pid = 1; pid <= 20; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query =
        built.embedder.ExtractQuery(pid, record->category, pid);
    const auto original = built.index->Search(query, 5);
    const auto restored = loaded->Search(query, 5);
    ASSERT_EQ(original.size(), restored.size()) << "pid " << pid;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].image_id, restored[i].image_id);
      EXPECT_FLOAT_EQ(original[i].distance, restored[i].distance);
      EXPECT_EQ(original[i].attributes, restored[i].attributes);
      EXPECT_EQ(original[i].image_url, restored[i].image_url);
      EXPECT_EQ(original[i].detail_url, restored[i].detail_url);
    }
  }
}

TEST_F(SnapshotTest, RoundTripPreservesConfig) {
  Built built;
  const std::string path = PathFor("index.snap");
  SaveIndexSnapshot(*built.index, path);
  const auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded->config().nprobe, built.index->config().nprobe);
  EXPECT_EQ(loaded->config().initial_list_capacity,
            built.index->config().initial_list_capacity);
  EXPECT_EQ(loaded->dim(), built.index->dim());
}

// Snapshot v3 persists the attribute filter state (category bitmaps +
// numeric columns): a loaded index answers hybrid filtered queries
// identically, and the filter knobs survive the config round trip.
TEST_F(SnapshotTest, RoundTripPreservesFilteredSearch) {
  Built built;
  built.index->SetProductValidity(7, false);
  const std::string path = PathFor("index.snap");
  SaveIndexSnapshot(*built.index, path);
  const auto loaded = LoadIndexSnapshot(path);

  EXPECT_EQ(loaded->config().filter_post_threshold,
            built.index->config().filter_post_threshold);
  EXPECT_EQ(loaded->config().filter_widen_threshold,
            built.index->config().filter_widen_threshold);
  EXPECT_EQ(loaded->config().filter_widen_factor,
            built.index->config().filter_widen_factor);
  EXPECT_EQ(loaded->attribute_filters().ColumnChecksum(),
            built.index->attribute_filters().ColumnChecksum());

  FilterExpression filter;
  filter.WithCategoryRange(0, 3).WithMin(FilterField::kSales, 1);
  for (ProductId pid = 1; pid <= 20; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query =
        built.embedder.ExtractQuery(pid, record->category, pid);
    const auto original =
        built.index->Search(query, 5, 16, kNoCategoryFilter, filter);
    const auto restored =
        loaded->Search(query, 5, 16, kNoCategoryFilter, filter);
    ASSERT_EQ(original.size(), restored.size()) << "pid " << pid;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].image_id, restored[i].image_id);
      EXPECT_TRUE(filter.Matches(restored[i].category,
                                 restored[i].attributes));
    }
  }
}

TEST_F(SnapshotTest, LoadedIndexAcceptsNewWrites) {
  Built built;
  const std::string path = PathFor("index.snap");
  SaveIndexSnapshot(*built.index, path);
  auto loaded = LoadIndexSnapshot(path);
  const auto feature = built.embedder.Extract({"new-image", 999, 3});
  loaded->AddImage("new-image", 999, 3, {.sales = 1}, "", feature);
  const auto hits = loaded->Search(feature, 1, /*nprobe=*/16);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].product_id, 999u);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW(LoadIndexSnapshot(PathFor("nope.snap")), SnapshotError);
}

TEST_F(SnapshotTest, BadMagicThrows) {
  const std::string path = PathFor("garbage.snap");
  std::ofstream(path, std::ios::binary) << "this is not a snapshot at all";
  EXPECT_THROW(LoadIndexSnapshot(path), SnapshotError);
}

TEST_F(SnapshotTest, TruncatedFileThrows) {
  Built built;
  const std::string path = PathFor("index.snap");
  SaveIndexSnapshot(*built.index, path);
  // Truncate to 60% of its size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 6 / 10);
  EXPECT_THROW(LoadIndexSnapshot(path), SnapshotError);
}

TEST_F(SnapshotTest, HighWaterMarkRoundTrips) {
  Built built;
  const std::string path = PathFor("hwm.snap");
  SaveIndexSnapshot(*built.index, path, /*update_hwm=*/42);
  std::uint64_t hwm = 0;
  const auto loaded = LoadIndexSnapshot(path, InlineCopyExecutor(), &hwm);
  EXPECT_EQ(hwm, 42u);
  EXPECT_EQ(loaded->size(), built.index->size());
  // Omitting the out-param still loads.
  EXPECT_EQ(LoadIndexSnapshot(path)->size(), built.index->size());
}

TEST_F(SnapshotTest, SearcherSnapshotDuringConcurrentUpdates) {
  // A snapshot save racing a real-time update batch must capture a
  // consistent (index, high-water mark) cut: every product with sequence
  // <= hwm present, everything past it absent. The searcher's writer mutex
  // is the contract under test.
  SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 7});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  Searcher searcher("snap-race", Searcher::Config{}, features,
                    AcceptAllPartitionFilter());
  auto quantizer =
      std::make_shared<CoarseQuantizer>(std::vector<float>(16, 0.f), 16);
  searcher.InstallIndex(std::make_unique<IvfIndex>(quantizer), 0);

  constexpr std::uint64_t kMessages = 200;
  std::thread writer([&searcher] {
    for (std::uint64_t seq = 1; seq <= kMessages; ++seq) {
      ProductUpdateMessage add;
      add.type = UpdateType::kAddProduct;
      add.product_id = 1000 + seq;
      add.category_id = 1;
      add.image_urls = {MakeImageUrl(1000 + seq, 0)};
      add.sequence = seq;
      searcher.ApplyUpdate(add);
    }
  });
  const std::string path = PathFor("race.snap");
  searcher.SaveIndexSnapshot(path);
  writer.join();

  std::uint64_t hwm = 0;
  const auto loaded = LoadIndexSnapshot(path, InlineCopyExecutor(), &hwm);
  EXPECT_LE(hwm, kMessages);
  for (std::uint64_t seq = 1; seq <= kMessages; ++seq) {
    EXPECT_EQ(loaded->HasProduct(1000 + seq), seq <= hwm) << "seq " << seq;
  }
  EXPECT_EQ(searcher.applied_sequence(), kMessages);
  // Duplicates at or below the mark are skipped, not re-applied.
  ProductUpdateMessage dup;
  dup.type = UpdateType::kAddProduct;
  dup.product_id = 1001;
  dup.image_urls = {MakeImageUrl(1001, 0)};
  dup.sequence = 1;
  EXPECT_FALSE(searcher.ApplyUpdate(dup));
}

TEST_F(SnapshotTest, EmptyIndexRoundTrips) {
  auto quantizer = std::make_shared<CoarseQuantizer>(
      std::vector<float>(8, 0.f), 8);
  IvfIndex empty(quantizer);
  const std::string path = PathFor("empty.snap");
  SaveIndexSnapshot(empty, path);
  const auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded->size(), 0u);
}

// ---- IVF-PQ snapshots ----

struct PqBuilt {
  PqBuilt(bool keep_raw = false) {
    std::vector<FeatureVector> training;
    for (ProductId pid = 1; pid <= 100; ++pid) {
      training.push_back(embedder.Extract(
          {MakeImageUrl(pid, 0), pid, static_cast<CategoryId>(pid % 8)}));
    }
    KMeansConfig kc;
    kc.num_clusters = 8;
    auto quantizer =
        std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
    ProductQuantizerConfig pc;
    pc.num_subspaces = 4;
    pc.codebook_size = 32;
    auto pq = std::make_shared<ProductQuantizer>(
        ProductQuantizer::Train(training, pc));
    IvfPqIndexConfig config;
    config.nprobe = 8;
    config.keep_raw_vectors = keep_raw;
    config.rerank_candidates = keep_raw ? 20 : 0;
    index = std::make_unique<IvfPqIndex>(quantizer, pq, config);
    const ProductAttributes attrs{.sales = 4, .price_cents = 99, .praise = 2};
    for (ProductId pid = 1; pid <= 60; ++pid) {
      for (std::uint32_t k = 0; k < 2; ++k) {
        const std::string url = MakeImageUrl(pid, k);
        index->AddImage(url, pid, static_cast<CategoryId>(pid % 8), attrs, "",
                        embedder.Extract(
                            {url, pid, static_cast<CategoryId>(pid % 8)}));
      }
    }
    index->SetProductValidity(9, false);
  }
  SyntheticEmbedder embedder{{.dim = 24, .num_categories = 8, .seed = 6}};
  std::unique_ptr<IvfPqIndex> index;
};

TEST_F(SnapshotTest, PqRoundTripPreservesSearchResults) {
  PqBuilt built;
  const std::string path = PathFor("pq.snap");
  SaveIvfPqSnapshot(*built.index, path);
  const auto loaded = LoadIvfPqSnapshot(path);
  ASSERT_EQ(loaded->size(), built.index->size());
  EXPECT_EQ(loaded->Stats().valid_images, built.index->Stats().valid_images);
  for (ProductId pid = 1; pid <= 30; ++pid) {
    const auto query = built.embedder.ExtractQuery(
        pid, static_cast<CategoryId>(pid % 8), pid);
    const auto original = built.index->Search(query, 5);
    const auto restored = loaded->Search(query, 5);
    ASSERT_EQ(original.size(), restored.size()) << "pid " << pid;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].image_id, restored[i].image_id);
      EXPECT_FLOAT_EQ(original[i].distance, restored[i].distance);
    }
  }
}

TEST_F(SnapshotTest, PqRoundTripWithRefinementStore) {
  PqBuilt built(/*keep_raw=*/true);
  const std::string path = PathFor("pq_raw.snap");
  SaveIvfPqSnapshot(*built.index, path);
  const auto loaded = LoadIvfPqSnapshot(path);
  EXPECT_GT(loaded->Stats().raw_memory_bytes, 0u);
  for (ProductId pid = 1; pid <= 20; ++pid) {
    const auto query = built.embedder.ExtractQuery(
        pid, static_cast<CategoryId>(pid % 8), pid);
    const auto original = built.index->Search(query, 5);
    const auto restored = loaded->Search(query, 5);
    ASSERT_EQ(original.size(), restored.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].image_id, restored[i].image_id);
      EXPECT_FLOAT_EQ(original[i].distance, restored[i].distance);
    }
  }
}

TEST_F(SnapshotTest, PqBadMagicThrows) {
  const std::string path = PathFor("pq_garbage.snap");
  std::ofstream(path, std::ios::binary) << "junk junk junk junk";
  EXPECT_THROW(LoadIvfPqSnapshot(path), SnapshotError);
}

TEST_F(SnapshotTest, PqTruncatedThrows) {
  PqBuilt built;
  const std::string path = PathFor("pq.snap");
  SaveIvfPqSnapshot(*built.index, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(LoadIvfPqSnapshot(path), SnapshotError);
}

}  // namespace
}  // namespace jdvs

// Tests for the search tier: hit merging, ranking, searcher, broker
// failover, blender end-to-end on a hand-built mini-cluster.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/hash.h"
#include "index/full_index_builder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "search/blender.h"
#include "search/broker.h"
#include "search/cluster_builder.h"
#include "search/ranking.h"
#include "search/searcher.h"
#include "search/types.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

SearchHit Hit(ImageId id, float distance, std::uint64_t sales = 0) {
  SearchHit hit;
  hit.image_id = id;
  hit.distance = distance;
  hit.attributes.sales = sales;
  return hit;
}

TEST(MergeHitsTest, MergesAndTruncates) {
  std::vector<std::vector<SearchHit>> partials = {
      {Hit(1, 1.f), Hit(2, 4.f)},
      {Hit(3, 2.f), Hit(4, 5.f)},
      {Hit(5, 3.f)},
  };
  const auto merged = MergeHits(std::move(partials), 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].image_id, 1u);
  EXPECT_EQ(merged[1].image_id, 3u);
  EXPECT_EQ(merged[2].image_id, 5u);
}

TEST(MergeHitsTest, DeduplicatesSameImage) {
  std::vector<std::vector<SearchHit>> partials = {
      {Hit(1, 1.f), Hit(2, 2.f)},
      {Hit(1, 1.f), Hit(3, 3.f)},  // replica returned the same image
  };
  const auto merged = MergeHits(std::move(partials), 4);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].image_id, 1u);
}

TEST(MergeHitsTest, EmptyInputs) {
  EXPECT_TRUE(MergeHits({}, 5).empty());
  EXPECT_TRUE(MergeHits({{}, {}}, 5).empty());
}

TEST(RankingTest, SimilarityDominates) {
  const RankingConfig config;
  const SearchHit close = Hit(1, 0.1f, /*sales=*/0);
  const SearchHit far = Hit(2, 50.f, /*sales=*/100000);
  EXPECT_GT(RankScore(close, 0, config), RankScore(far, 0, config));
}

TEST(RankingTest, AttributesBreakTies) {
  const RankingConfig config;
  SearchHit poor = Hit(1, 1.0f);
  SearchHit popular = Hit(2, 1.0f);
  popular.attributes.sales = 10000;
  popular.attributes.praise = 5000;
  EXPECT_GT(RankScore(popular, 0, config), RankScore(poor, 0, config));
}

TEST(RankingTest, PricePenalizes) {
  const RankingConfig config;
  SearchHit cheap = Hit(1, 1.0f);
  cheap.attributes.price_cents = 100;
  SearchHit expensive = Hit(2, 1.0f);
  expensive.attributes.price_cents = 10'000'000;
  EXPECT_GT(RankScore(cheap, 0, config), RankScore(expensive, 0, config));
}

TEST(RankingTest, CategoryMatchBoosts) {
  const RankingConfig config;
  SearchHit match = Hit(1, 1.0f);
  match.category = 7;
  SearchHit other = Hit(2, 1.0f);
  other.category = 3;
  EXPECT_GT(RankScore(match, 7, config), RankScore(other, 7, config));
}

TEST(RankingTest, RankResultsSortsDescendingAndTruncates) {
  std::vector<SearchHit> hits = {Hit(1, 5.f), Hit(2, 0.1f), Hit(3, 1.f)};
  const auto ranked = RankResults(std::move(hits), 0, RankingConfig{}, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].hit.image_id, 2u);
  EXPECT_EQ(ranked[1].hit.image_id, 3u);
  EXPECT_GE(ranked[0].score, ranked[1].score);
}

// ---- Mini-cluster fixture: 2 searchers (disjoint fake partitions), one
// broker, one blender. ----
struct MiniCluster {
  MiniCluster()
      : embedder({.dim = 16, .num_categories = 6, .seed = 3}),
        detector({.num_categories = 6, .top1_accuracy = 1.0}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}) {
    CatalogGenConfig cg;
    cg.num_products = 60;
    cg.num_categories = 6;
    GenerateCatalog(cg, catalog, images);

    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = 6;
    fc.index_config.nprobe = 6;
    FullIndexBuilder builder(catalog, images, features, fc);
    quantizer = builder.TrainQuantizer();

    const auto even = [](std::string_view url) {
      return Fnv1a64(url) % 2 == 0;
    };
    const auto odd = [](std::string_view url) {
      return Fnv1a64(url) % 2 == 1;
    };
    searcher_a = std::make_unique<Searcher>("s-a", Searcher::Config{},
                                            features, even);
    searcher_b = std::make_unique<Searcher>("s-b", Searcher::Config{},
                                            features, odd);
    searcher_a_backup = std::make_unique<Searcher>(
        "s-a2", Searcher::Config{}, features, even);
    searcher_a->InstallIndex(builder.Build(quantizer, even));
    searcher_b->InstallIndex(builder.Build(quantizer, odd));
    searcher_a_backup->InstallIndex(builder.Build(quantizer, even));

    broker = std::make_unique<Broker>("b-0", Broker::Config{});
    broker->AddPartition({searcher_a.get(), searcher_a_backup.get()});
    broker->AddPartition({searcher_b.get()});

    Blender::Config bc;
    bc.default_k = 6;
    blender = std::make_unique<Blender>("bl-0", bc, embedder, detector,
                                        std::vector<Broker*>{broker.get()});
  }

  QueryImage QueryFor(ProductId id, std::uint64_t seed = 1) {
    const auto record = catalog.Get(id);
    return QueryImage{id, record->category, seed};
  }

  SyntheticEmbedder embedder;
  CategoryDetector detector;
  ProductCatalog catalog;
  ImageStore images;
  FeatureDb features;
  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::unique_ptr<Searcher> searcher_a;
  std::unique_ptr<Searcher> searcher_a_backup;
  std::unique_ptr<Searcher> searcher_b;
  std::unique_ptr<Broker> broker;
  std::unique_ptr<Blender> blender;
};

TEST(SearcherTest, SearchBeforeInstallThrows) {
  SyntheticEmbedder embedder({.dim = 8, .num_categories = 2, .seed = 1});
  FeatureDb features(embedder, {.mean_micros = 0});
  Searcher searcher("empty", Searcher::Config{}, features,
                    AcceptAllPartitionFilter());
  EXPECT_FALSE(searcher.HasIndex());
  EXPECT_THROW(searcher.SearchLocal(FeatureVector(8, 0.f), 5),
               std::runtime_error);
}

TEST(SearcherTest, SearchAsyncReturnsPartitionResults) {
  MiniCluster mini;
  const auto record = mini.catalog.Get(10);
  const auto query =
      mini.embedder.ExtractQuery(record->id, record->category, 1);
  auto hits_a = mini.searcher_a->SearchAsync(query, 10).get();
  auto hits_b = mini.searcher_b->SearchAsync(query, 10).get();
  EXPECT_FALSE(hits_a.empty() && hits_b.empty());
  // All of searcher A's results belong to its partition.
  for (const auto& hit : hits_a) {
    EXPECT_EQ(Fnv1a64(hit.image_url) % 2, 0u);
  }
  for (const auto& hit : hits_b) {
    EXPECT_EQ(Fnv1a64(hit.image_url) % 2, 1u);
  }
}

TEST(SearcherTest, ApplyUpdateMakesProductSearchable) {
  MiniCluster mini;
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 5000;
  add.category_id = 2;
  add.attributes = {.sales = 1, .price_cents = 1, .praise = 1};
  for (std::uint32_t k = 0; k < 4; ++k) {
    add.image_urls.push_back(MakeImageUrl(5000, k));
  }
  mini.searcher_a->ApplyUpdate(add);
  mini.searcher_b->ApplyUpdate(add);
  const auto query = mini.embedder.ExtractQuery(5000, 2, 9);
  auto hits_a = mini.searcher_a->SearchLocal(query, 4);
  auto hits_b = mini.searcher_b->SearchLocal(query, 4);
  std::size_t found = 0;
  for (const auto& h : hits_a) found += (h.product_id == 5000u);
  for (const auto& h : hits_b) found += (h.product_id == 5000u);
  EXPECT_GT(found, 0u);
  // Partition split: the 4 images are spread over both searchers, total 4.
  const auto counters_a = mini.searcher_a->update_counters();
  const auto counters_b = mini.searcher_b->update_counters();
  EXPECT_EQ(counters_a.images_added + counters_b.images_added, 4u);
}

TEST(SearcherTest, InstallIndexSwapsUnderSearches) {
  MiniCluster mini;
  // Rebuild searcher A's index and install; old searches still complete.
  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 6;
  FullIndexBuilder builder(mini.catalog, mini.images, mini.features, fc);
  const auto even = [](std::string_view url) { return Fnv1a64(url) % 2 == 0; };
  auto new_index = builder.Build(mini.quantizer, even);
  const std::size_t new_size = new_index->size();
  mini.searcher_a->InstallIndex(std::move(new_index));
  EXPECT_EQ(mini.searcher_a->index_stats().total_images, new_size);
}

TEST(BrokerTest, MergesAcrossPartitions) {
  MiniCluster mini;
  const auto record = mini.catalog.Get(20);
  const auto query =
      mini.embedder.ExtractQuery(record->id, record->category, 2);
  const auto hits = mini.broker->SearchAsync(query, 10).get();
  ASSERT_FALSE(hits.empty());
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
  // Top hit should be an image of the queried product.
  EXPECT_EQ(hits[0].product_id, record->id);
}

TEST(BrokerTest, FailsOverToReplica) {
  MiniCluster mini;
  mini.searcher_a->node().set_failed(true);
  const auto record = mini.catalog.Get(20);
  const auto query =
      mini.embedder.ExtractQuery(record->id, record->category, 2);
  const auto hits = mini.broker->SearchAsync(query, 10).get();
  EXPECT_FALSE(hits.empty());
  EXPECT_GE(mini.broker->failovers(), 1u);
  EXPECT_EQ(mini.broker->partition_failures(), 0u);
}

TEST(BrokerTest, PartitionFailureWhenAllReplicasDown) {
  MiniCluster mini;
  mini.searcher_b->node().set_failed(true);  // partition B has no replica
  const auto record = mini.catalog.Get(20);
  const auto query =
      mini.embedder.ExtractQuery(record->id, record->category, 2);
  const auto hits = mini.broker->SearchAsync(query, 10).get();
  // Partial results: partition A still answers.
  EXPECT_GE(mini.broker->partition_failures(), 1u);
  for (const auto& hit : hits) {
    EXPECT_EQ(Fnv1a64(hit.image_url) % 2, 0u);
  }
}

TEST(BlenderTest, EndToEndQueryFindsSubject) {
  MiniCluster mini;
  const auto response = mini.blender->Search(mini.QueryFor(33));
  ASSERT_FALSE(response.results.empty());
  EXPECT_LE(response.results.size(), 6u);
  EXPECT_EQ(response.brokers_asked, 1u);
  EXPECT_EQ(response.broker_failures, 0u);
  EXPECT_GT(response.total_micros, 0);
  bool found = false;
  for (const auto& r : response.results) {
    if (r.hit.product_id == 33u) found = true;
  }
  EXPECT_TRUE(found);
  // Scores are descending.
  for (std::size_t i = 1; i < response.results.size(); ++i) {
    EXPECT_GE(response.results[i - 1].score, response.results[i].score);
  }
}

TEST(BlenderTest, DetectorOutputPropagates) {
  MiniCluster mini;
  const auto query = mini.QueryFor(12);
  const auto response = mini.blender->Search(query);
  EXPECT_EQ(response.detected_category, query.true_category);  // 100% detector
}

TEST(BlenderTest, AdmissionControlShedsExcessLoad) {
  MiniCluster mini;
  Blender::Config bc;
  bc.threads = 1;
  bc.default_k = 5;
  bc.query_extraction_micros = 20'000;  // slow queries to pile up load
  bc.max_in_flight = 2;
  Blender limited("bl-limited", bc, mini.embedder, mini.detector,
                  std::vector<Broker*>{mini.broker.get()});
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        limited.SearchAsync(mini.QueryFor(1 + i), QueryOptions{.k = 5}));
  }
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const BlenderOverloadedError&) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, 10u);
  EXPECT_EQ(limited.queries_shed(), shed);
  EXPECT_EQ(limited.in_flight(), 0u);
}

// Regression: a query failing before the fan-out (blender node marked
// failed) must still release its admission slot. The old thread-per-tier
// path threw NodeFailedError before the in-flight guard existed, leaking a
// slot per failure until a recovered blender shed everything forever.
TEST(BlenderTest, FailedNodeReleasesAdmissionSlots) {
  MiniCluster mini;
  Blender::Config bc;
  bc.default_k = 5;
  bc.max_in_flight = 1;
  Blender limited("bl-failing", bc, mini.embedder, mini.detector,
                  std::vector<Broker*>{mini.broker.get()});
  limited.node().set_failed(true);
  // Sequential, so each failure must release its slot before the next query
  // is admitted: any leak turns the NodeFailedError into an overload shed.
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(limited.Search(mini.QueryFor(1 + i)), NodeFailedError);
  }
  EXPECT_EQ(limited.in_flight(), 0u);
  EXPECT_EQ(limited.queries_shed(), 0u);
  limited.node().set_failed(false);
  // Recovered: with max_in_flight = 1, a single leaked slot would shed this.
  const auto response = limited.Search(mini.QueryFor(7));
  EXPECT_FALSE(response.results.empty());
  EXPECT_EQ(limited.queries_shed(), 0u);
}

TEST(BlenderTest, NoAdmissionLimitByDefault) {
  MiniCluster mini;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        mini.blender->SearchAsync(mini.QueryFor(1 + i), QueryOptions{.k = 5}));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(mini.blender->queries_shed(), 0u);
}

TEST(SearcherTest, SnapshotSaveAndInstallRoundTrip) {
  MiniCluster mini;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("jdvs_searcher_snap_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const auto stats_before = mini.searcher_a->index_stats();
  mini.searcher_a->SaveIndexSnapshot(path);

  // A different searcher (same partition) installs from the snapshot.
  Searcher restored("s-restored", Searcher::Config{}, mini.features,
                    mini.searcher_a->partition_filter());
  restored.InstallFromSnapshot(path);
  EXPECT_EQ(restored.index_stats().total_images, stats_before.total_images);

  const auto record = mini.catalog.Get(25);
  const auto query =
      mini.embedder.ExtractQuery(record->id, record->category, 4);
  const auto original = mini.searcher_a->SearchLocal(query, 5);
  const auto loaded = restored.SearchLocal(query, 5);
  ASSERT_EQ(original.size(), loaded.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].image_id, loaded[i].image_id);
  }
  std::filesystem::remove(path);
}

TEST(BlenderTest, CategoryFilterNarrowsResults) {
  MiniCluster mini;
  Blender::Config bc;
  bc.default_k = 10;
  bc.use_category_filter = true;  // detector output scopes the scan
  Blender scoped("bl-scoped", bc, mini.embedder, mini.detector,
                 std::vector<Broker*>{mini.broker.get()});
  const QueryImage query = mini.QueryFor(14, 2);
  const auto response = scoped.Search(query);
  ASSERT_FALSE(response.results.empty());
  for (const auto& r : response.results) {
    EXPECT_EQ(r.hit.category, response.detected_category);
  }
  // The subject is still found (detector is 100% accurate in this fixture).
  bool found = false;
  for (const auto& r : response.results) {
    found |= (r.hit.product_id == 14u);
  }
  EXPECT_TRUE(found);
}

TEST(BlenderTest, ExplicitCategoryFilterInOptions) {
  MiniCluster mini;
  const auto record = mini.catalog.Get(14);
  QueryOptions qo;
  qo.k = 10;
  // Filter to a *different* category: the subject must not appear.
  qo.category_filter = (record->category + 1) % 6;
  const auto response = mini.blender->Search(mini.QueryFor(14, 2), qo);
  for (const auto& r : response.results) {
    EXPECT_EQ(r.hit.category, qo.category_filter);
    EXPECT_NE(r.hit.product_id, 14u);
  }
}

TEST(BlenderTest, MisdetectionWithFilterExcludesSubject) {
  MiniCluster mini;
  // A detector that is always wrong.
  CategoryDetector bad_detector({.num_categories = 6, .top1_accuracy = 0.0});
  Blender::Config bc;
  bc.default_k = 10;
  bc.use_category_filter = true;
  Blender scoped("bl-wrong", bc, mini.embedder, bad_detector,
                 std::vector<Broker*>{mini.broker.get()});
  const auto response = scoped.Search(mini.QueryFor(14, 2));
  for (const auto& r : response.results) {
    EXPECT_NE(r.hit.product_id, 14u);  // filtered out by the wrong category
  }
}

TEST(BlenderTest, ResultCacheServesRepeatQueries) {
  MiniCluster mini;
  Blender::Config bc;
  bc.default_k = 5;
  bc.enable_result_cache = true;
  bc.cache.ttl_micros = 60'000'000;
  Blender cached("bl-cached", bc, mini.embedder, mini.detector,
                 std::vector<Broker*>{mini.broker.get()});
  const QueryImage query = mini.QueryFor(9, /*seed=*/4);
  const auto first = cached.Search(query);
  EXPECT_FALSE(first.from_cache);
  const auto second = cached.Search(query);  // identical photo
  EXPECT_TRUE(second.from_cache);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].hit.image_id, second.results[i].hit.image_id);
  }
  ASSERT_NE(cached.result_cache(), nullptr);
  EXPECT_EQ(cached.result_cache()->stats().hits, 1u);
}

TEST(BlenderTest, CacheDisabledByDefault) {
  MiniCluster mini;
  EXPECT_EQ(mini.blender->result_cache(), nullptr);
  const QueryImage query = mini.QueryFor(9, 4);
  EXPECT_FALSE(mini.blender->Search(query).from_cache);
  EXPECT_FALSE(mini.blender->Search(query).from_cache);
}

TEST(BlenderTest, QueriesServedCounter) {
  MiniCluster mini;
  EXPECT_EQ(mini.blender->queries_served(), 0u);
  mini.blender->Search(mini.QueryFor(1));
  mini.blender->Search(mini.QueryFor(2));
  EXPECT_EQ(mini.blender->queries_served(), 2u);
}

// ---- Observability through the full ClusterBuilder topology ----

ClusterConfig SmallTracedClusterConfig() {
  ClusterConfig config;
  config.num_partitions = 4;
  config.num_brokers = 2;
  config.num_blenders = 1;
  config.hop_latency = {.base_micros = 100};
  config.embedder = {.dim = 16, .num_categories = 6, .seed = 11};
  config.detector = {.num_categories = 6, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 6;
  config.ivf.nprobe = 6;
  config.trace_sample_every = 1;
  return config;
}

std::unique_ptr<VisualSearchCluster> BuildSmallCluster(
    const ClusterConfig& config) {
  auto cluster = std::make_unique<VisualSearchCluster>(config);
  CatalogGenConfig cg;
  cg.num_products = 120;
  cg.num_categories = 6;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

TEST(ClusterTracingTest, TracedQueryProducesFullSpanTree) {
  const ClusterConfig config = SmallTracedClusterConfig();
  auto cluster = BuildSmallCluster(config);
  const auto record = cluster->catalog().Get(42);
  const QueryResponse response =
      cluster->Query(QueryImage{42, record->category, 1});
  ASSERT_NE(response.trace_id, 0u);

  const auto spans = cluster->trace_sink().SpansFor(response.trace_id);
  std::size_t roots = 0, brokers = 0, scans = 0, extracts = 0, ranks = 0;
  for (const auto& span : spans) {
    if (span.name == "query") ++roots;
    if (span.name == "broker.search") ++brokers;
    if (span.name == "searcher.scan") ++scans;
    if (span.name == "extract") ++extracts;
    if (span.name == "rank") ++ranks;
    EXPECT_GE(span.DurationMicros(), 0);
    EXPECT_TRUE(span.ok) << span.name << ": " << span.status;
  }
  // Exactly one blender root, one broker span per broker, one searcher span
  // per probed partition.
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(brokers, config.num_brokers);
  EXPECT_EQ(scans, config.num_partitions);
  EXPECT_EQ(extracts, 1u);
  EXPECT_EQ(ranks, 1u);

  // The root and broker spans cover real work (fan-out over >=100us hops).
  for (const auto& span : spans) {
    if (span.name == "query" || span.name == "broker.search") {
      EXPECT_GT(span.DurationMicros(), 0) << span.name;
    }
    if (span.name != "query") {
      EXPECT_NE(span.parent_span_id, 0u) << span.name;
    }
  }

  const std::string tree = cluster->trace_sink().Render(response.trace_id);
  EXPECT_NE(tree.find("query @blender-0"), std::string::npos);
  EXPECT_NE(tree.find("broker.search @broker-"), std::string::npos);
  EXPECT_NE(tree.find("searcher.scan @searcher-p"), std::string::npos);
  cluster->Stop();
}

TEST(ClusterTracingTest, SamplingTracesEveryNthQuery) {
  ClusterConfig config = SmallTracedClusterConfig();
  config.trace_sample_every = 2;
  auto cluster = BuildSmallCluster(config);
  std::vector<bool> traced;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto record = cluster->catalog().Get(1 + i);
    const auto response =
        cluster->Query(QueryImage{1 + i, record->category, i});
    traced.push_back(response.trace_id != 0);
  }
  EXPECT_EQ(traced, std::vector<bool>({true, false, true, false}));
  cluster->Stop();
}

TEST(ClusterTracingTest, TracedUpdateReachesEveryPartition) {
  const ClusterConfig config = SmallTracedClusterConfig();
  auto cluster = BuildSmallCluster(config);

  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 9001;
  add.category_id = 3;
  add.attributes = {.sales = 1, .price_cents = 999, .praise = 1};
  for (std::uint32_t k = 0; k < 4; ++k) {
    add.image_urls.push_back(MakeImageUrl(9001, k));
  }
  cluster->PublishUpdate(add);
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());

  // Find the update's root span and its rt.apply children: one per searcher
  // (every partition consumes the topic).
  std::uint64_t update_trace = 0;
  for (const auto& span : cluster->trace_sink().Collect()) {
    if (span.name == "update") update_trace = span.trace_id;
  }
  ASSERT_NE(update_trace, 0u);
  std::size_t applies = 0;
  for (const auto& span : cluster->trace_sink().SpansFor(update_trace)) {
    if (span.name == "rt.apply") ++applies;
  }
  EXPECT_EQ(applies, cluster->num_searchers());
  cluster->Stop();
}

TEST(ClusterObservabilityTest, RegistryMatchesComponentCounters) {
  ClusterConfig config = SmallTracedClusterConfig();
  config.trace_sample_every = 0;
  config.replicas_per_partition = 2;
  config.num_blenders = 1;
  config.blender_result_cache = true;
  config.blender_cache.ttl_micros = 60'000'000;
  auto cluster = BuildSmallCluster(config);

  // Provoke one failover (replica 0 of partition 0 down), one cache hit
  // (identical query photo twice), and a few real-time updates.
  cluster->searcher(0, 0).node().set_failed(true);
  const auto record = cluster->catalog().Get(7);
  const QueryImage query{7, record->category, 5};
  cluster->Query(query);
  cluster->Query(query);

  for (int i = 0; i < 3; ++i) {
    ProductUpdateMessage update;
    update.type = UpdateType::kAttributeUpdate;
    update.product_id = 10 + i;
    update.attributes = {.sales = 100, .price_cents = 500, .praise = 10};
    cluster->PublishUpdate(std::move(update));
  }
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());

  const obs::Registry& registry = cluster->registry();

  // Broker failovers: registry series sum == component getter sum, >= 1.
  std::uint64_t getter_failovers = 0, registry_failovers = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    getter_failovers += cluster->broker(b).failovers();
    const obs::Counter* counter = registry.FindCounter(obs::Labeled(
        "jdvs_broker_failovers_total", "broker", cluster->broker(b).name()));
    ASSERT_NE(counter, nullptr);
    registry_failovers += counter->Value();
  }
  EXPECT_GE(getter_failovers, 1u);
  EXPECT_EQ(registry_failovers, getter_failovers);

  // Cache hits: registry mirror == QueryCache::stats().
  ASSERT_NE(cluster->blender(0).result_cache(), nullptr);
  const auto cache_stats = cluster->blender(0).result_cache()->stats();
  EXPECT_EQ(cache_stats.hits, 1u);
  const obs::Counter* hits = registry.FindCounter(
      obs::Labeled("jdvs_cache_hits_total", "owner", "blender-0"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->Value(), cache_stats.hits);

  // Real-time updates: per-searcher registry series sum == aggregate getter.
  std::uint64_t registry_updates = 0;
  for (std::size_t i = 0; i < cluster->num_searchers(); ++i) {
    const obs::Counter* counter = registry.FindCounter(
        obs::Labeled("jdvs_realtime_updates_total", "searcher",
                     cluster->searcher_flat(i).name()));
    ASSERT_NE(counter, nullptr);
    registry_updates += counter->Value();
  }
  EXPECT_EQ(registry_updates, cluster->TotalUpdateCounters().TotalMessages());
  EXPECT_GT(registry_updates, 0u);

  // And the exposition dump carries all three families.
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE jdvs_broker_failovers_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("jdvs_cache_hits_total{owner=\"blender-0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jdvs_realtime_updates_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jdvs_stage_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("jdvs_stage_micros_bucket{"), std::string::npos);
  cluster->Stop();
}

}  // namespace
}  // namespace jdvs

// Tests for the batched query path: IvfIndex/IvfPqIndex::SearchBatch must be
// result-identical to per-query Search (micro-batching is a throughput
// optimization, never a semantics change), ADC distances must match the
// decode-based asymmetric distance, and the in-searcher micro-batching must
// deliver correct results under concurrency, honor tight deadlines by
// running solo, and record the batch-size histogram.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "common/clock.h"
#include "embedding/extractor.h"
#include "index/full_index_builder.h"
#include "index/ivf_index.h"
#include "obs/registry.h"
#include "pq/ivfpq_index.h"
#include "qos/deadline.h"
#include "search/searcher.h"
#include "store/feature_db.h"
#include "vecmath/kernels.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

// Small trained corpus shared by the index-level equivalence tests.
struct BatchFixture {
  BatchFixture() : embedder({.dim = 32, .num_categories = 8, .seed = 21}) {
    std::vector<FeatureVector> training;
    for (int i = 0; i < 600; ++i) {
      const ProductId pid = 1 + (i % 150);
      training.push_back(embedder.Extract(
          {MakeImageUrl(pid, static_cast<std::uint32_t>(i / 150)), pid,
           static_cast<CategoryId>(pid % 8)}));
    }
    KMeansConfig kc;
    kc.num_clusters = 12;
    quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
    ProductQuantizerConfig pc;
    pc.num_subspaces = 8;
    pc.codebook_size = 64;
    pq = std::make_shared<ProductQuantizer>(
        ProductQuantizer::Train(training, pc));
  }

  template <typename Index>
  void Fill(Index& index, std::size_t products, std::size_t images) {
    const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 1};
    for (ProductId pid = 1; pid <= products; ++pid) {
      for (std::uint32_t k = 0; k < images; ++k) {
        const std::string url = MakeImageUrl(pid, k);
        const CategoryId category = static_cast<CategoryId>(pid % 8);
        index.AddImage(url, pid, category, attrs, "",
                       embedder.Extract({url, pid, category}));
      }
    }
  }

  // A per-query workload mixing k, nprobe and category filters.
  std::vector<FeatureVector> MakeQueries(std::size_t count) {
    std::vector<FeatureVector> queries;
    for (std::size_t i = 0; i < count; ++i) {
      const ProductId pid = 1 + (i % 150);
      queries.push_back(embedder.ExtractQuery(
          pid, static_cast<CategoryId>(pid % 8), /*seed=*/i + 1));
    }
    return queries;
  }

  SyntheticEmbedder embedder;
  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::shared_ptr<const ProductQuantizer> pq;
};

void ExpectSameHits(const std::vector<SearchHit>& batched,
                    const std::vector<SearchHit>& solo) {
  ASSERT_EQ(batched.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(batched[i].image_id, solo[i].image_id);
    EXPECT_EQ(batched[i].distance, solo[i].distance);  // bit-identical
    EXPECT_EQ(batched[i].image_url, solo[i].image_url);
  }
}

TEST(IvfSearchBatchTest, MatchesPerQuerySearch) {
  BatchFixture fx;
  IvfIndexConfig config;
  config.nprobe = 3;
  IvfIndex index(fx.quantizer, config);
  fx.Fill(index, 120, 2);

  const auto queries = fx.MakeQueries(17);
  std::vector<IvfBatchQuery> batch;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    IvfBatchQuery q;
    q.query = FeatureView(queries[i].data(), queries[i].size());
    q.k = 3 + i % 5;
    q.nprobe = (i % 3 == 0) ? 0 : 1 + i % 6;  // 0 = index default
    q.category_filter = (i % 4 == 0)
                            ? static_cast<CategoryId>(1 + i % 8)
                            : kNoCategoryFilter;
    batch.push_back(q);
  }

  const auto results = index.SearchBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto solo = index.Search(batch[i].query, batch[i].k, batch[i].nprobe,
                                   batch[i].category_filter);
    ExpectSameHits(results[i], solo);
  }
}

TEST(IvfSearchBatchTest, EmptyBatchAndEmptyIndex) {
  BatchFixture fx;
  IvfIndex index(fx.quantizer, IvfIndexConfig{});
  EXPECT_TRUE(index.SearchBatch({}).empty());

  const auto queries = fx.MakeQueries(2);
  std::vector<IvfBatchQuery> batch(2);
  batch[0].query = FeatureView(queries[0].data(), queries[0].size());
  batch[1].query = FeatureView(queries[1].data(), queries[1].size());
  const auto results = index.SearchBatch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_TRUE(results[1].empty());
}

TEST(IvfPqSearchBatchTest, MatchesPerQuerySearch) {
  BatchFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 4;
  config.rerank_candidates = 12;  // exercise the rerank path in batch form
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 120, 2);

  const auto queries = fx.MakeQueries(13);
  std::vector<IvfBatchQuery> batch;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    IvfBatchQuery q;
    q.query = FeatureView(queries[i].data(), queries[i].size());
    q.k = 2 + i % 4;
    q.nprobe = (i % 2 == 0) ? 0 : 2 + i % 5;
    batch.push_back(q);
  }

  const auto results = index.SearchBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto solo = index.Search(batch[i].query, batch[i].k, batch[i].nprobe,
                                   batch[i].category_filter);
    ExpectSameHits(results[i], solo);
  }
}

TEST(IvfPqSearchBatchTest, AdcDistancesMatchDecodedDistances) {
  BatchFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 12;  // probe everything: the scan covers the whole corpus
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 60, 1);

  for (ProductId pid = 1; pid <= 10; ++pid) {
    const auto query = fx.embedder.ExtractQuery(
        pid, static_cast<CategoryId>(pid % 8), /*seed=*/pid);
    for (const auto& hit : index.Search(query, 5)) {
      // The stored code is Encode(feature) and encoding is deterministic, so
      // the ADC distance the scan produced must match the asymmetric
      // distance to the reconstruction, up to table-vs-decode FP rounding.
      const CategoryId category = static_cast<CategoryId>(hit.product_id % 8);
      const FeatureVector feature = fx.embedder.Extract(
          {hit.image_url, hit.product_id, category});
      const float exact =
          fx.pq->AsymmetricDistance(query, fx.pq->Encode(feature));
      EXPECT_NEAR(hit.distance, exact, 1e-3f * (1.f + exact));
    }
  }
}

// ---- In-searcher micro-batching ----

struct SearcherFixture {
  explicit SearcherFixture(Searcher::Config config)
      : embedder({.dim = 16, .num_categories = 6, .seed = 3}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}) {
    CatalogGenConfig cg;
    cg.num_products = 60;
    cg.num_categories = 6;
    GenerateCatalog(cg, catalog, images);

    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = 6;
    fc.index_config.nprobe = 6;
    FullIndexBuilder builder(catalog, images, features, fc);
    const auto quantizer = builder.TrainQuantizer();
    searcher = std::make_unique<Searcher>("s-batch", config, features,
                                          AcceptAllPartitionFilter());
    searcher->InstallIndex(builder.Build(quantizer, AcceptAllPartitionFilter()));
  }

  FeatureVector Query(std::size_t i) {
    const ProductId pid = 1 + (i % 60);
    const auto record = catalog.Get(pid);
    return embedder.ExtractQuery(pid, record->category, /*seed=*/i + 1);
  }

  SyntheticEmbedder embedder;
  ProductCatalog catalog;
  ImageStore images;
  FeatureDb features;
  std::unique_ptr<Searcher> searcher;
};

TEST(SearcherBatchingTest, ConcurrentAsyncMatchesSoloSearch) {
  Searcher::Config config;
  config.threads = 4;
  config.max_batch_queries = 4;
  config.batch_window_micros = 500;
  SearcherFixture fx(config);

  constexpr std::size_t kQueries = 24;
  std::vector<FeatureVector> queries;
  for (std::size_t i = 0; i < kQueries; ++i) queries.push_back(fx.Query(i));

  // Dispatch everything before joining anything, so scans overlap and the
  // batching path engages.
  std::vector<std::future<std::vector<SearchHit>>> futures;
  for (std::size_t i = 0; i < kQueries; ++i) {
    futures.push_back(fx.searcher->SearchAsync(queries[i], /*k=*/5));
  }
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto batched = futures[i].get();
    const auto solo = fx.searcher->SearchLocal(queries[i], /*k=*/5);
    ExpectSameHits(batched, solo);
  }
}

TEST(SearcherBatchingTest, TightDeadlineRunsSoloAndCompletes) {
  Searcher::Config config;
  config.threads = 4;
  config.max_batch_queries = 8;
  // A pathological window: any query that waited it out would blow a
  // 20 ms budget (window*2 > remaining), so deadlined queries must bypass
  // the batch entirely and still answer in time.
  config.batch_window_micros = 1'000'000;
  SearcherFixture fx(config);

  std::vector<FeatureVector> queries;
  for (std::size_t i = 0; i < 8; ++i) queries.push_back(fx.Query(i));

  std::vector<std::future<std::vector<SearchHit>>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto deadline =
        qos::Deadline::FromBudget(MonotonicClock::Instance(), 20'000);
    futures.push_back(fx.searcher->SearchAsync(queries[i], /*k=*/5,
                                               /*nprobe=*/0, kNoCategoryFilter,
                                               FilterExpression{}, deadline));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const auto batched = futures[i].get();  // must not hang on the window
    ExpectSameHits(batched, fx.searcher->SearchLocal(queries[i], /*k=*/5));
  }
}

TEST(SearcherBatchingTest, DisabledBatchingStillAnswers) {
  Searcher::Config config;
  config.max_batch_queries = 1;  // < 2 disables grouping entirely
  SearcherFixture fx(config);
  const auto query = fx.Query(0);
  const auto hits = fx.searcher->SearchAsync(query, /*k=*/5).get();
  ExpectSameHits(hits, fx.searcher->SearchLocal(query, /*k=*/5));
}

TEST(SearcherBatchingTest, RecordsBatchSizeHistogramAndDispatchTier) {
  obs::Registry registry;
  Searcher::Config config;
  config.threads = 4;
  config.registry = &registry;
  SearcherFixture fx(config);

  std::vector<std::future<std::vector<SearchHit>>> futures;
  std::vector<FeatureVector> queries;
  for (std::size_t i = 0; i < 12; ++i) queries.push_back(fx.Query(i));
  for (std::size_t i = 0; i < 12; ++i) {
    futures.push_back(fx.searcher->SearchAsync(queries[i], /*k=*/5));
  }
  for (auto& f : futures) f.get();

  Histogram& sizes = registry.GetHistogram(
      obs::Labeled("jdvs_searcher_batch_size", "searcher", "s-batch"));
  // Every scan lands in the histogram exactly once: solo scans as 1, each
  // batch as its group size — so recorded mass equals the query count.
  EXPECT_EQ(sizes.Sum(), 12);
  EXPECT_GE(sizes.Max(), 1);

  // The dispatch-tier gauge reflects the resolved kernel tier.
  EXPECT_EQ(registry.GetGauge("jdvs_kernel_dispatch_tier").Value(),
            static_cast<std::int64_t>(ActiveKernelTier()));
}

}  // namespace
}  // namespace jdvs

// Unit + property tests for src/vecmath: distances, top-k, vector set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "vecmath/distance.h"
#include "vecmath/topk.h"
#include "vecmath/vector_set.h"

namespace jdvs {
namespace {

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

float NaiveL2Squared(FeatureView a, FeatureView b) {
  float s = 0.f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

TEST(DistanceTest, ZeroDistanceToSelf) {
  Rng rng(1);
  const FeatureVector v = RandomVector(rng, 64);
  EXPECT_EQ(L2SquaredDistance(v, v), 0.f);
}

TEST(DistanceTest, KnownValues) {
  const FeatureVector a{1.f, 2.f, 3.f};
  const FeatureVector b{4.f, 6.f, 3.f};
  EXPECT_FLOAT_EQ(L2SquaredDistance(a, b), 9.f + 16.f);
  EXPECT_FLOAT_EQ(InnerProduct(a, b), 4.f + 12.f + 9.f);
  EXPECT_FLOAT_EQ(L2Norm(FeatureVector{3.f, 4.f}), 5.f);
}

// Property sweep: the unrolled kernels must match the naive loop across
// dimensions including non-multiples of 4.
class DistanceDimTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistanceDimTest, MatchesNaiveImplementation) {
  const std::size_t dim = GetParam();
  Rng rng(dim * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const FeatureVector a = RandomVector(rng, dim);
    const FeatureVector b = RandomVector(rng, dim);
    EXPECT_NEAR(L2SquaredDistance(a, b), NaiveL2Squared(a, b),
                1e-3 * (1.0 + NaiveL2Squared(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceDimTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 31,
                                           33, 64, 100, 128, 257));

TEST(DistanceTest, NormalizeL2MakesUnitNorm) {
  Rng rng(5);
  FeatureVector v = RandomVector(rng, 48);
  NormalizeL2(v);
  EXPECT_NEAR(L2Norm(v), 1.f, 1e-5);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop) {
  FeatureVector v(16, 0.f);
  NormalizeL2(v);
  for (const float x : v) EXPECT_EQ(x, 0.f);
}

TEST(DistanceTest, BatchMatchesScalar) {
  Rng rng(9);
  const std::size_t dim = 32;
  const std::size_t count = 50;
  std::vector<float> base(dim * count);
  for (float& x : base) x = static_cast<float>(rng.NextGaussian());
  const FeatureVector q = RandomVector(rng, dim);
  std::vector<float> out(count);
  L2SquaredBatch(q, base.data(), dim, count, out.data());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_FLOAT_EQ(out[i],
                    L2SquaredDistance(q, FeatureView(&base[i * dim], dim)));
  }
}

TEST(TopKTest, KeepsSmallestDistances) {
  TopK topk(3);
  topk.Offer(1, 5.f);
  topk.Offer(2, 1.f);
  topk.Offer(3, 4.f);
  topk.Offer(4, 2.f);
  topk.Offer(5, 9.f);
  const auto results = topk.TakeSorted();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].image_id, 2u);
  EXPECT_EQ(results[1].image_id, 4u);
  EXPECT_EQ(results[2].image_id, 3u);
}

TEST(TopKTest, ThresholdInfiniteUntilFull) {
  TopK topk(2);
  EXPECT_TRUE(std::isinf(topk.Threshold()));
  topk.Offer(1, 3.f);
  EXPECT_TRUE(std::isinf(topk.Threshold()));
  topk.Offer(2, 7.f);
  EXPECT_FLOAT_EQ(topk.Threshold(), 7.f);
  topk.Offer(3, 1.f);  // evicts 7
  EXPECT_FLOAT_EQ(topk.Threshold(), 3.f);
}

TEST(TopKTest, ZeroKTreatedAsOne) {
  TopK topk(0);
  topk.Offer(1, 2.f);
  topk.Offer(2, 1.f);
  const auto results = topk.TakeSorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].image_id, 2u);
}

// Property: TopK over random data == sort-then-truncate, for many (n, k).
class TopKPropertyTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TopKPropertyTest, MatchesSortTruncate) {
  const auto [n, k] = GetParam();
  Rng rng(n * 31 + k);
  std::vector<ScoredImage> all;
  TopK topk(k);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = static_cast<float>(rng.NextDouble() * 100.0);
    all.push_back({i, d});
    topk.Offer(i, d);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.image_id < b.image_id;
  });
  all.resize(std::min(n, k));
  EXPECT_EQ(topk.TakeSorted(), all);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopKPropertyTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 5},
                      std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{5, 5},
                      std::pair<std::size_t, std::size_t>{100, 1},
                      std::pair<std::size_t, std::size_t>{100, 10},
                      std::pair<std::size_t, std::size_t>{1000, 50},
                      std::pair<std::size_t, std::size_t>{1000, 1000}));

TEST(MergeTopKTest, MergesSortedPartials) {
  std::vector<std::vector<ScoredImage>> partials = {
      {{1, 1.f}, {2, 4.f}},
      {{3, 2.f}, {4, 5.f}},
      {{5, 3.f}},
  };
  const auto merged = MergeTopK(partials, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].image_id, 1u);
  EXPECT_EQ(merged[1].image_id, 3u);
  EXPECT_EQ(merged[2].image_id, 5u);
}

TEST(VectorSetTest, AppendAndReadBack) {
  VectorSet set(8, /*chunk_vectors=*/4);
  Rng rng(2);
  std::vector<FeatureVector> originals;
  for (int i = 0; i < 50; ++i) {  // crosses many chunk boundaries
    originals.push_back(RandomVector(rng, 8));
    EXPECT_EQ(set.Append(originals.back()), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(set.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const FeatureView v = set.At(i);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(v[j], originals[i][j]);
  }
}

TEST(VectorSetTest, OverwriteReplacesContents) {
  VectorSet set(4);
  set.Append(FeatureVector{1, 2, 3, 4});
  set.Overwrite(0, FeatureVector{5, 6, 7, 8});
  const FeatureView v = set.At(0);
  EXPECT_EQ(v[0], 5.f);
  EXPECT_EQ(v[3], 8.f);
}

TEST(VectorSetTest, ConcurrentReadersSeeStableData) {
  VectorSet set(16, 32);
  std::atomic<bool> stop{false};
  // Readers verify every visible vector has the expected fingerprint:
  // vector i is filled with value float(i).
  std::vector<std::thread> readers;
  std::atomic<int> violations{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t n = set.size();
        for (std::size_t i = 0; i < n; ++i) {
          const FeatureView v = set.At(i);
          for (const float x : v) {
            if (x != static_cast<float>(i)) violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::size_t i = 0; i < 5000; ++i) {
    set.Append(FeatureVector(16, static_cast<float>(i)));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(set.size(), 5000u);
}

}  // namespace
}  // namespace jdvs

// Property tests for the runtime-dispatched kernel layer: every SIMD tier
// must agree with scalar within tolerance on every kernel and dimension
// (including remainder lanes), the ADC scan must match per-candidate table
// lookups, the aligned scan-block storage must uphold its layout contract,
// and the float64-accumulated norms must survive large-magnitude inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "index/scan_block.h"
#include "vecmath/aligned.h"
#include "vecmath/distance.h"
#include "vecmath/kernels.h"

namespace jdvs {
namespace {

// The dimension sweep from the kernel contract: scalar-only sizes, exact
// lane-group sizes (8/16), one-past sizes that exercise remainder handling,
// and the paper's 960-d VGG feature.
const std::size_t kDims[] = {1, 3, 8, 15, 16, 17, 64, 128, 960};

constexpr double kRelTol = 1e-4;

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void ExpectClose(float actual, float expected) {
  EXPECT_NEAR(actual, expected,
              kRelTol * (1.0 + std::abs(static_cast<double>(expected))));
}

class KernelTierTest : public ::testing::TestWithParam<KernelTier> {
 protected:
  // nullptr when this machine cannot run the tier; tests skip.
  const DistanceKernels* tier_ = KernelsForTier(GetParam());
  const DistanceKernels* scalar_ = KernelsForTier(KernelTier::kScalar);
};

TEST_P(KernelTierTest, PairwiseMatchesScalar) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  ASSERT_NE(scalar_, nullptr);
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 13 + 1);
    for (int trial = 0; trial < 10; ++trial) {
      const FeatureVector a = RandomVector(rng, dim);
      const FeatureVector b = RandomVector(rng, dim);
      ExpectClose(tier_->l2sq(a.data(), b.data(), dim),
                  scalar_->l2sq(a.data(), b.data(), dim));
      ExpectClose(tier_->ip(a.data(), b.data(), dim),
                  scalar_->ip(a.data(), b.data(), dim));
    }
  }
}

TEST_P(KernelTierTest, Batch4MatchesScalarPairwise) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 17 + 5);
    const FeatureVector q = RandomVector(rng, dim);
    // Tight stride (= dim) and padded stride with zeroed tail: both must
    // produce the pairwise distances.
    for (const std::size_t stride : {dim, PaddedDim(dim)}) {
      AlignedArray<float> base = AllocateAligned<float>(4 * stride);
      std::vector<FeatureVector> rows;
      for (int r = 0; r < 4; ++r) {
        rows.push_back(RandomVector(rng, dim));
        std::memcpy(base.get() + r * stride, rows.back().data(),
                    dim * sizeof(float));
      }
      // Scanning `stride` lanes over zero padding must equal scanning `dim`.
      const std::size_t n = stride;
      FeatureVector padded_q(stride, 0.f);
      std::memcpy(padded_q.data(), q.data(), dim * sizeof(float));
      float out[4];
      tier_->l2sq_batch4(padded_q.data(), base.get(), stride, n, out);
      for (int r = 0; r < 4; ++r) {
        ExpectClose(out[r], scalar_->l2sq(q.data(), rows[r].data(), dim));
      }
    }
  }
}

TEST_P(KernelTierTest, ScanMatchesScalarPairwise) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  // Row counts cover the batch4 groups and the 1-3 row remainder tail.
  for (const std::size_t rows : {1u, 3u, 4u, 5u, 8u, 11u}) {
    for (const std::size_t dim : {3u, 16u, 64u, 960u}) {
      Rng rng(rows * 31 + dim);
      const FeatureVector q = RandomVector(rng, dim);
      const std::size_t stride = PaddedDim(dim);
      AlignedArray<float> base = AllocateAligned<float>(rows * stride);
      std::vector<FeatureVector> stored;
      for (std::size_t r = 0; r < rows; ++r) {
        stored.push_back(RandomVector(rng, dim));
        std::memcpy(base.get() + r * stride, stored.back().data(),
                    dim * sizeof(float));
      }
      std::vector<float> out(rows, -1.f);
      tier_->l2sq_scan(q.data(), base.get(), stride, dim, rows, out.data());
      for (std::size_t r = 0; r < rows; ++r) {
        ExpectClose(out[r], scalar_->l2sq(q.data(), stored[r].data(), dim));
      }
    }
  }
}

namespace {
float SquaredNormF64(const float* v, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(v[i]) * static_cast<double>(v[i]);
  }
  return static_cast<float>(s);
}
}  // namespace

TEST_P(KernelTierTest, ScanFilterMatchesSubtractFormWithinCancellationTol) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  // threshold = +inf: every row survives, in ascending order, and each
  // distance must match the subtract-form scalar kernel within the dot
  // form's documented cancellation bound ~1e-5 * (||q||^2 + ||v||^2).
  for (const std::size_t rows : {1u, 3u, 4u, 5u, 8u, 11u}) {
    for (const std::size_t dim : {3u, 16u, 64u, 960u}) {
      Rng rng(rows * 37 + dim);
      const FeatureVector q = RandomVector(rng, dim);
      const std::size_t stride = PaddedDim(dim);
      AlignedArray<float> base = AllocateAligned<float>(rows * stride);
      std::vector<FeatureVector> stored;
      std::vector<float> norms(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        stored.push_back(RandomVector(rng, dim));
        std::memcpy(base.get() + r * stride, stored.back().data(),
                    dim * sizeof(float));
        norms[r] = SquaredNormF64(stored.back().data(), dim);
      }
      FeatureVector padded_q(stride, 0.f);
      std::memcpy(padded_q.data(), q.data(), dim * sizeof(float));
      const float q_norm = SquaredNormF64(q.data(), dim);
      std::vector<std::uint32_t> idx(rows, 0xdeadbeef);
      std::vector<float> dist(rows, -1.f);
      const std::size_t kept = tier_->l2sq_scan_filter(
          padded_q.data(), q_norm, base.get(), norms.data(), stride, stride,
          rows, std::numeric_limits<float>::infinity(), idx.data(),
          dist.data());
      ASSERT_EQ(kept, rows);
      for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(idx[r], static_cast<std::uint32_t>(r));
        const float expected =
            scalar_->l2sq(q.data(), stored[r].data(), dim);
        EXPECT_NEAR(dist[r], expected,
                    1e-4 * (1.0 + q_norm + norms[r]))
            << "rows=" << rows << " dim=" << dim << " r=" << r;
      }
    }
  }
}

TEST_P(KernelTierTest, ScanFilterAgreesWithScalarSurvivors) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  // Real thresholds: tiers must keep exactly the scalar fused kernel's
  // survivor set whenever no distance sits within lane-reduction rounding
  // of the threshold (the threshold is picked mid-gap to guarantee that).
  for (const std::size_t rows : {8u, 32u, 100u}) {
    const std::size_t dim = 64;
    Rng rng(rows * 41 + 7);
    const FeatureVector q = RandomVector(rng, dim);
    const std::size_t stride = PaddedDim(dim);
    AlignedArray<float> base = AllocateAligned<float>(rows * stride);
    std::vector<float> norms(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const FeatureVector v = RandomVector(rng, dim);
      std::memcpy(base.get() + r * stride, v.data(), dim * sizeof(float));
      norms[r] = SquaredNormF64(v.data(), dim);
    }
    const float q_norm = SquaredNormF64(q.data(), dim);
    std::vector<std::uint32_t> sidx(rows);
    std::vector<float> sdist(rows);
    const std::size_t all = scalar_->l2sq_scan_filter(
        q.data(), q_norm, base.get(), norms.data(), stride, stride, rows,
        std::numeric_limits<float>::infinity(), sidx.data(), sdist.data());
    ASSERT_EQ(all, rows);
    std::vector<float> sorted = sdist;
    std::sort(sorted.begin(), sorted.end());
    // Mid-gap thresholds at a few depths; skip degenerate (too-tight) gaps.
    for (const std::size_t depth : {rows / 4, rows / 2, rows - 1}) {
      const float lo = sorted[depth];
      const float hi = depth + 1 < rows ? sorted[depth + 1]
                                        : sorted[depth] + 1.f;
      if (hi - lo < 1e-2f) continue;
      const float threshold = (lo + hi) * 0.5f;
      std::vector<std::uint32_t> expect_idx;
      std::vector<float> expect_dist;
      for (std::size_t r = 0; r < rows; ++r) {
        if (sdist[r] <= threshold) {
          expect_idx.push_back(static_cast<std::uint32_t>(r));
          expect_dist.push_back(sdist[r]);
        }
      }
      std::vector<std::uint32_t> idx(rows, 0xdeadbeef);
      std::vector<float> dist(rows, -1.f);
      const std::size_t kept = tier_->l2sq_scan_filter(
          q.data(), q_norm, base.get(), norms.data(), stride, stride, rows,
          threshold, idx.data(), dist.data());
      ASSERT_EQ(kept, expect_idx.size())
          << "rows=" << rows << " depth=" << depth;
      for (std::size_t s = 0; s < kept; ++s) {
        EXPECT_EQ(idx[s], expect_idx[s]);
        ExpectClose(dist[s], expect_dist[s]);
      }
    }
  }
}

TEST_P(KernelTierTest, ScanFilterClampsIdenticalVectorToZero) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  // q scanned against itself: cancellation could produce a tiny negative in
  // the dot form; the kernel must clamp to a non-negative distance within
  // the cancellation bound of zero.
  const std::size_t dim = 64;
  Rng rng(4242);
  const FeatureVector q = RandomVector(rng, dim);
  const std::size_t stride = PaddedDim(dim);
  AlignedArray<float> base = AllocateAligned<float>(4 * stride);
  std::vector<float> norms(4);
  for (std::size_t r = 0; r < 4; ++r) {
    std::memcpy(base.get() + r * stride, q.data(), dim * sizeof(float));
    norms[r] = SquaredNormF64(q.data(), dim);
  }
  const float q_norm = SquaredNormF64(q.data(), dim);
  std::uint32_t idx[4];
  float dist[4];
  const std::size_t kept =
      tier_->l2sq_scan_filter(q.data(), q_norm, base.get(), norms.data(),
                              stride, stride, 4, 1e-3f, idx, dist);
  ASSERT_EQ(kept, 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_GE(dist[r], 0.f);
    EXPECT_LE(dist[r], 1e-3f);
  }
}

TEST_P(KernelTierTest, PqAdcScanMatchesPerCandidateLookups) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  Rng rng(99);
  for (const std::size_t m : {1u, 4u, 8u, 16u}) {
    const std::size_t ks = 256;
    std::vector<float> table(m * ks);
    for (float& x : table) x = static_cast<float>(rng.NextDouble());
    for (const std::size_t count : {1u, 3u, 7u, 8u, 15u, 16u, 17u, 100u}) {
      std::vector<std::uint8_t> codes(count * m);
      for (std::uint8_t& c : codes) {
        c = static_cast<std::uint8_t>(rng.Below(ks));
      }
      std::vector<float> out(count, -1.f);
      tier_->pq_adc_scan(table.data(), ks, codes.data(), m, count, out.data());
      for (std::size_t c = 0; c < count; ++c) {
        float expected = 0.f;
        for (std::size_t s = 0; s < m; ++s) {
          expected += table[s * ks + codes[c * m + s]];
        }
        ExpectClose(out[c], expected);
      }
    }
  }
}

TEST_P(KernelTierTest, FilterLeMatchesScalarExactly) {
  if (tier_ == nullptr) GTEST_SKIP() << "tier unsupported on this CPU";
  Rng rng(1234);
  for (const std::size_t count :
       {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 256u}) {
    std::vector<float> dists(count);
    for (float& d : dists) {
      // Coarse quantization of the values manufactures exact ties with the
      // thresholds below.
      d = static_cast<float>(rng.Below(16)) * 0.25f;
    }
    for (const float threshold :
         {-1.f, 0.f, 0.5f, 1.75f, 4.f,
          std::numeric_limits<float>::infinity()}) {
      std::vector<std::uint32_t> expected;
      for (std::size_t j = 0; j < count; ++j) {
        if (dists[j] <= threshold) {
          expected.push_back(static_cast<std::uint32_t>(j));
        }
      }
      std::vector<std::uint32_t> got(count + 1, 0xdeadbeef);
      const std::size_t n =
          tier_->filter_le(dists.data(), count, threshold, got.data());
      ASSERT_EQ(n, expected.size())
          << "count=" << count << " threshold=" << threshold;
      got.resize(n);
      EXPECT_EQ(got, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, KernelTierTest,
                         ::testing::Values(KernelTier::kScalar,
                                           KernelTier::kAvx2,
                                           KernelTier::kAvx512),
                         [](const auto& info) {
                           return KernelTierName(info.param);
                         });

TEST(KernelDispatchTest, ActiveTierIsSupportedAndForcible) {
  const KernelTier active = ActiveKernelTier();
  EXPECT_NE(KernelsForTier(active), nullptr);
  EXPECT_EQ(Kernels().tier, active);
  // Scalar is always forcible; restore the resolved tier afterwards.
  EXPECT_TRUE(ForceKernelTier(KernelTier::kScalar));
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  EXPECT_TRUE(ForceKernelTier(active));
  EXPECT_EQ(ActiveKernelTier(), active);
}

TEST(KernelDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx512), "avx512");
}

// ---- float64 accumulation (the L2Norm overflow fix) ----

TEST(NormPrecisionTest, LargeMagnitudeNormDoesNotOverflow) {
  // x*x for |x| ~ 1e19+ exceeds FLT_MAX (~3.4e38): an fp32 accumulator
  // returns +inf. The float64 path returns the exact 3-4-5 answer.
  const FeatureVector v{3e19f, 4e19f};
  const float norm = L2Norm(v);
  EXPECT_TRUE(std::isfinite(norm));
  EXPECT_NEAR(norm / 5e19f, 1.f, 1e-5);
}

TEST(NormPrecisionTest, LargeMagnitudeNormalizeYieldsUnitVector) {
  FeatureVector v(64, 2e19f);
  NormalizeL2(v);
  EXPECT_NEAR(L2Norm(v), 1.f, 1e-5);
  for (const float x : v) EXPECT_TRUE(std::isfinite(x));
}

// ---- aligned allocation + padded layout helpers ----

TEST(AlignedTest, PaddedDimRoundsToCacheLines) {
  EXPECT_EQ(PaddedDim(1), kFloatsPerCacheLine);
  EXPECT_EQ(PaddedDim(16), 16u);
  EXPECT_EQ(PaddedDim(17), 32u);
  EXPECT_EQ(PaddedDim(960), 960u);  // the paper's dim is already whole lines
}

TEST(AlignedTest, AllocationsAreAlignedAndZeroed) {
  for (const std::size_t count : {1u, 7u, 16u, 1000u}) {
    AlignedArray<float> block = AllocateAligned<float>(count);
    EXPECT_TRUE(IsCacheAligned(block.get()));
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(block.get()[i], 0.f);
  }
}

// ---- ScanBlock: the contiguous posting-list payload store ----

TEST(ScanBlockTest, RoundTripsEntriesAcrossChunks) {
  // 40 entries span the 16-entry first chunk and part of the 32-entry
  // second, so random access crosses a chunk boundary.
  constexpr std::size_t kStride = 12;
  constexpr std::size_t kEntries = 40;
  ScanBlock block(kStride, /*max_run_entries=*/8);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    std::vector<std::uint8_t> payload(kStride,
                                      static_cast<std::uint8_t>(i + 1));
    block.Append(/*id=*/i * 10, payload.data(), /*aux=*/i * 0.5f);
    payloads.push_back(std::move(payload));
  }
  ASSERT_EQ(block.size(), kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    EXPECT_EQ(block.IdAt(i), i * 10);
    EXPECT_EQ(std::memcmp(block.PayloadAt(i), payloads[i].data(), kStride), 0);
  }
  EXPECT_TRUE(block.storage_aligned());
  // Geometric growth: 16 + 32 entries allocated for 40 stored.
  EXPECT_EQ(block.memory_bytes(),
            48 * (kStride + sizeof(LocalId) + sizeof(float)));
}

TEST(ScanBlockTest, ForEachRunVisitsAllEntriesInOrderWithAlignedRuns) {
  // Run bases are 64-byte aligned when max_run_entries * stride is a
  // cache-line multiple: 8 * 8 = 64 here.
  ScanBlock block(/*payload_stride_bytes=*/8, /*max_run_entries=*/8);
  constexpr std::uint32_t kEntries = 20;
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    std::uint64_t payload = i;
    block.Append(i, &payload, /*aux=*/i * 2.0f);
  }
  std::vector<std::size_t> run_sizes;
  std::vector<LocalId> seen;
  block.ForEachRun([&](const LocalId* ids, const std::uint8_t* payload,
                       const float* aux, std::size_t count) {
    EXPECT_TRUE(IsCacheAligned(payload));
    run_sizes.push_back(count);
    for (std::size_t j = 0; j < count; ++j) {
      seen.push_back(ids[j]);
      std::uint64_t value;
      std::memcpy(&value, payload + j * 8, 8);
      EXPECT_EQ(value, ids[j]);
      EXPECT_EQ(aux[j], static_cast<float>(ids[j]) * 2.0f);
    }
  });
  // 16-entry chunk split into two 8-entry runs, then 4 entries of the
  // 32-entry second chunk.
  EXPECT_EQ(run_sizes, (std::vector<std::size_t>{8, 8, 4}));
  ASSERT_EQ(seen.size(), kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace jdvs

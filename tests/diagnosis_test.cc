// End-to-end tests for the performance-diagnosis layer: the always-on
// flight recorder catching an *unsampled* SLO breach, critical-path
// attribution pointing at an injected-slow stage, exemplars linking latency
// buckets back to flight records, QoS step-ups freezing the ring, and the
// slow-query log's critical-path summary line.
#include <gtest/gtest.h>

#include <string>

#include "jdvs/jdvs.h"

namespace jdvs {
namespace {

ClusterConfig SmallClusterConfig() {
  ClusterConfig config;
  config.num_partitions = 2;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.embedder = {.dim = 16, .num_categories = 4, .seed = 11};
  config.detector = {.num_categories = 4, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 4;
  config.ivf.nprobe = 4;
  config.hop_latency = {.base_micros = 100, .jitter_median_micros = 50,
                        .sigma = 0.5};
  return config;
}

void Populate(VisualSearchCluster& cluster) {
  CatalogGenConfig cg;
  cg.num_products = 60;
  cg.num_categories = 4;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();
}

QueryResponse RunQuery(VisualSearchCluster& cluster, std::size_t i) {
  const ProductId product = 1 + static_cast<ProductId>(i * 7) % 60;
  const auto record = cluster.catalog().Get(product);
  return cluster.Query(QueryImage{product, record->category, i + 1},
                       QueryOptions{.k = 5});
}

// The headline scenario: tracing is OFF (sample_every = 0), so the sampled
// tracer cannot see anything — yet an injected-slow searcher pushes one
// query over the SLO, the flight recorder freezes a dump, the record's
// critical path names the slow stage, the tracez page shows it, and the
// query-total latency histogram carries an exemplar whose flight ref leads
// back to the exact record.
TEST(DiagnosisTest, UnsampledSloBreachIsCapturedAndAttributed) {
  FaultInjector injector(23);
  ClusterConfig config = SmallClusterConfig();
  config.trace_sample_every = 0;  // tracing off: the recorder is the net
  config.flight_slo_micros = 20'000;
  config.fault_injector = &injector;
  VisualSearchCluster cluster(config);
  Populate(cluster);
  ASSERT_NE(cluster.flight_recorder(), nullptr);

  // Fault-free traffic: well under the 20ms SLO, nothing dumps.
  for (std::size_t i = 0; i < 10; ++i) RunQuery(cluster, i);
  EXPECT_TRUE(cluster.flight_recorder()->armed());
  EXPECT_EQ(cluster.flight_recorder()->dumps_taken(), 0u);
  EXPECT_EQ(cluster.flight_recorder()->recorded(), 10u);

  // Gray failure: partition 0's only replica turns slow (not dead).
  injector.SetNode(cluster.searcher(0, 0).name(),
                   LinkFaults{.added_latency_micros = 40'000});
  const QueryResponse slow = RunQuery(cluster, 99);
  EXPECT_EQ(slow.trace_id, 0u) << "query must be unsampled";
  EXPECT_GT(slow.total_micros, 20'000);

  // The breach froze a once-only dump with the breaching query inside.
  ASSERT_EQ(cluster.flight_recorder()->dumps_taken(), 1u);
  EXPECT_FALSE(cluster.flight_recorder()->armed());
  const auto dumps = cluster.flight_recorder()->dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].reason.find("slo breach"), std::string::npos);

  const obs::FlightRecord* culprit = nullptr;
  for (const auto& record : dumps[0].records) {
    if (culprit == nullptr || record.total_micros > culprit->total_micros) {
      culprit = &record;
    }
  }
  ASSERT_NE(culprit, nullptr);
  EXPECT_GT(culprit->total_micros, 20'000);
  EXPECT_EQ(culprit->trace_id, 0u);

  // Critical-path attribution names the injected-slow stage.
  const auto report = obs::CriticalPathFromFlightRecord(*culprit);
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.ByStage()[0].first, "searcher_scan") << report.Summary();
  EXPECT_GT(report.ByStage()[0].second, 30'000);

  // The latency histogram's bucket links back to this flight record even
  // though the query has no trace id.
  const Histogram* total = cluster.registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "query_total"));
  ASSERT_NE(total, nullptr);
  const auto exemplar = total->ExemplarNear(slow.total_micros);
  ASSERT_TRUE(exemplar.has_value());
  EXPECT_EQ(exemplar->trace_id, 0u);
  EXPECT_EQ(exemplar->ref, culprit->ordinal);
  // ...and the exposition renders it as a flight="N" annotation.
  EXPECT_NE(cluster.registry().ExpositionText().find(
                "flight=\"" + std::to_string(culprit->ordinal) + "\""),
            std::string::npos);

  // tracez surfaces the anomaly with its attribution.
  const std::string tracez = cluster.introspection().TraceZ();
  EXPECT_NE(tracez.find("slo breach"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("searcher_scan"), std::string::npos) << tracez;
  const std::string statusz = cluster.introspection().StatusZ();
  EXPECT_NE(statusz.find("flight recorder"), std::string::npos);
  EXPECT_NE(statusz.find("armed=no"), std::string::npos) << statusz;

  // Rearm: the next anomaly dumps again.
  cluster.flight_recorder()->Rearm();
  const QueryResponse again = RunQuery(cluster, 100);
  EXPECT_GT(again.total_micros, 20'000);
  EXPECT_EQ(cluster.flight_recorder()->dumps_taken(), 2u);
  cluster.Stop();
}

// A QoS degradation step-up is an anomaly trigger too: when the load
// controller climbs the ladder, the recorder freezes the queries that drove
// it there.
TEST(DiagnosisTest, QosStepUpFreezesFlightRing) {
  ClusterConfig config = SmallClusterConfig();
  config.trace_sample_every = 0;
  // Aggressive triggers so plain traffic counts as overload: every query's
  // latency (ms-scale hops) exceeds the 500us p99 threshold.
  config.load_control.p99_degrade_micros = 500;
  config.load_control.window_micros = 10'000;
  config.load_control.min_window_samples = 4;
  // Keep the SLO out of the way: only the step-up may dump.
  config.flight_slo_micros = 10'000'000;
  VisualSearchCluster cluster(config);
  Populate(cluster);
  ASSERT_NE(cluster.load_controller(), nullptr);
  ASSERT_NE(cluster.flight_recorder(), nullptr);

  for (std::size_t i = 0; i < 60 && cluster.load_controller()->steps_up() == 0;
       ++i) {
    RunQuery(cluster, i);
  }
  ASSERT_GE(cluster.load_controller()->steps_up(), 1u);
  const auto dumps = cluster.flight_recorder()->dumps();
  ASSERT_GE(dumps.size(), 1u);
  EXPECT_NE(dumps[0].reason.find("qos degradation stepped up"),
            std::string::npos);
  EXPECT_FALSE(dumps[0].records.empty());
  cluster.Stop();
}

// With tracing on, every sampled query's span tree is folded into the
// critical-path histograms, the slow log's entries carry a critical-path
// summary line, and the sampled scan histogram links exemplars to traces.
TEST(DiagnosisTest, SampledQueriesFeedCriticalPathAndSlowLog) {
  ClusterConfig config = SmallClusterConfig();
  config.trace_sample_every = 1;
  config.slow_query_threshold_micros = 1;  // every query is "slow"
  VisualSearchCluster cluster(config);
  Populate(cluster);
  ASSERT_NE(cluster.critical_paths(), nullptr);

  for (std::size_t i = 0; i < 8; ++i) {
    const QueryResponse response = RunQuery(cluster, i);
    EXPECT_NE(response.trace_id, 0u);
  }
  EXPECT_GE(cluster.critical_paths()->observed(), 8u);

  // Per-stage critical-path histograms exist and the table renders them.
  const Histogram* scan = cluster.registry().FindHistogram(
      obs::Labeled("jdvs_critical_path_micros", "stage", "searcher.scan"));
  ASSERT_NE(scan, nullptr);
  EXPECT_GT(scan->Count(), 0u);
  const std::string table =
      obs::RenderCriticalPathTable(cluster.registry());
  EXPECT_NE(table.find("searcher.scan"), std::string::npos) << table;

  // Slow-log entries carry the one-line attribution.
  const auto worst = cluster.slow_log().Worst();
  ASSERT_FALSE(worst.empty());
  EXPECT_FALSE(worst.front().critical_path.empty());
  EXPECT_NE(cluster.slow_log().Render().find("critical path: "),
            std::string::npos);

  // Sampled scans leave trace-linked exemplars on the scan-stage histogram.
  const Histogram* scan_stage = cluster.registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "searcher_scan"));
  ASSERT_NE(scan_stage, nullptr);
  bool linked = false;
  for (const auto& exemplar : scan_stage->Exemplars()) {
    if (exemplar.trace_id != 0) linked = true;
  }
  EXPECT_TRUE(linked);
  cluster.Stop();
}

// The recorder's kill switch makes the whole layer inert (the overhead
// bench's baseline), and re-enabling resumes recording.
TEST(DiagnosisTest, RecorderKillSwitch) {
  ClusterConfig config = SmallClusterConfig();
  VisualSearchCluster cluster(config);
  Populate(cluster);
  ASSERT_NE(cluster.flight_recorder(), nullptr);

  cluster.flight_recorder()->set_enabled(false);
  RunQuery(cluster, 1);
  EXPECT_EQ(cluster.flight_recorder()->recorded(), 0u);
  cluster.flight_recorder()->set_enabled(true);
  RunQuery(cluster, 2);
  EXPECT_EQ(cluster.flight_recorder()->recorded(), 1u);
  cluster.Stop();
}

}  // namespace
}  // namespace jdvs

// Tests for the multi-probe LSH baseline index.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "embedding/extractor.h"
#include "lsh/lsh_index.h"
#include "store/catalog.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

TEST(LshIndexTest, FindsExactDuplicate) {
  LshIndex index(16);
  Rng rng(1);
  FeatureVector target(16);
  for (float& x : target) x = static_cast<float>(rng.NextGaussian());
  index.Add(42, target);
  for (int i = 0; i < 50; ++i) {
    FeatureVector other(16);
    for (float& x : other) x = static_cast<float>(rng.NextGaussian()) + 20.f;
    index.Add(100 + i, other);
  }
  const auto results = index.Search(target, 1);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].image_id, 42u);
  EXPECT_NEAR(results[0].distance, 0.f, 1e-6);
}

TEST(LshIndexTest, SizeAndBuckets) {
  LshIndexConfig config;
  config.num_tables = 4;
  LshIndex index(8, config);
  EXPECT_EQ(index.size(), 0u);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    FeatureVector v(8);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian()) * 5.f;
    index.Add(i, v);
  }
  EXPECT_EQ(index.size(), 100u);
  EXPECT_GT(index.BucketCount(), 4u);
}

TEST(LshIndexTest, RecallAgainstBruteForce) {
  const SyntheticEmbedder embedder({.dim = 32, .num_categories = 10,
                                    .seed = 5});
  LshIndexConfig config;
  config.num_tables = 12;
  config.hashes_per_table = 6;
  config.bucket_width = 8.0f;
  LshIndex index(32, config);

  std::vector<std::pair<ImageId, FeatureVector>> all;
  for (ProductId pid = 1; pid <= 300; ++pid) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      const std::string url = MakeImageUrl(pid, k);
      auto f = embedder.Extract({url, pid, static_cast<CategoryId>(pid % 10)});
      const ImageId id = pid * 10 + k;
      index.Add(id, f);
      all.emplace_back(id, std::move(f));
    }
  }

  double recall_sum = 0.0;
  constexpr int kQueries = 50;
  for (int q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + (q * 7) % 300;
    const auto query =
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 10), q);
    // Brute-force ground truth.
    TopK exact(10);
    for (const auto& [id, v] : all) {
      exact.Offer(id, L2SquaredDistance(query, v));
    }
    const auto truth = exact.TakeSorted();
    const auto approx = index.Search(query, 10, /*extra_probes=*/6);
    int found = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.image_id == t.image_id) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / 10.0;
  }
  EXPECT_GT(recall_sum / kQueries, 0.5);
}

TEST(LshIndexTest, MultiProbeImprovesRecall) {
  const SyntheticEmbedder embedder({.dim = 32, .num_categories = 10,
                                    .seed = 6});
  LshIndexConfig config;
  config.num_tables = 4;
  config.hashes_per_table = 8;
  config.bucket_width = 4.0f;
  LshIndex index(32, config);
  std::vector<std::pair<ImageId, FeatureVector>> all;
  for (ProductId pid = 1; pid <= 400; ++pid) {
    const std::string url = MakeImageUrl(pid, 0);
    auto f = embedder.Extract({url, pid, static_cast<CategoryId>(pid % 10)});
    index.Add(pid, f);
    all.emplace_back(pid, std::move(f));
  }
  const auto recall_at = [&](std::size_t probes) {
    double sum = 0.0;
    for (int q = 0; q < 40; ++q) {
      const ProductId pid = 1 + (q * 11) % 400;
      const auto query =
          embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 10), q);
      TopK exact(5);
      for (const auto& [id, v] : all) exact.Offer(id, L2SquaredDistance(query, v));
      const auto truth = exact.TakeSorted();
      const auto approx = index.Search(query, 5, probes);
      int found = 0;
      for (const auto& t : truth) {
        for (const auto& a : approx) {
          if (a.image_id == t.image_id) {
            ++found;
            break;
          }
        }
      }
      sum += static_cast<double>(found) / 5.0;
    }
    return sum / 40.0;
  };
  EXPECT_GE(recall_at(10), recall_at(0));
}

TEST(LshIndexTest, DeterministicForSameSeed) {
  Rng rng(9);
  FeatureVector v(16);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  LshIndex a(16);
  LshIndex b(16);
  a.Add(1, v);
  b.Add(1, v);
  const auto ra = a.Search(v, 1);
  const auto rb = b.Search(v, 1);
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_EQ(ra[0].image_id, rb[0].image_id);
}

TEST(LshIndexTest, EmptyIndexReturnsNothing) {
  LshIndex index(8);
  EXPECT_TRUE(index.Search(FeatureVector(8, 0.f), 5).empty());
}

}  // namespace
}  // namespace jdvs

// Gray-failure defenses at the broker: per-attempt RPC timeouts turning
// silent message loss into failover, hedged requests racing a limping
// replica against a healthy sibling, the hedge rate cap, and the
// deadline/hedge interaction (a hedge is extra load, and extra load after
// the client has already given up is pure waste).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "index/full_index_builder.h"
#include "net/fault_injector.h"
#include "obs/registry.h"
#include "qos/deadline.h"
#include "search/broker.h"
#include "search/searcher.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

bool AcceptAll(std::string_view) { return true; }

// Two full-coverage replica searchers behind one broker partition — the
// smallest topology where a hedge has somewhere to go.
struct TwoReplicaHarness {
  SyntheticEmbedder embedder;
  FeatureDb features;
  ProductCatalog catalog;
  ImageStore images;
  Searcher r0;
  Searcher r1;

  TwoReplicaHarness(const Searcher::Config& c0, const Searcher::Config& c1)
      : embedder({.dim = 16, .num_categories = 2, .seed = 7}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}),
        r0("hedge-r0", c0, features, AcceptAll),
        r1("hedge-r1", c1, features, AcceptAll) {
    CatalogGenConfig cg;
    cg.num_products = 40;
    cg.num_categories = 2;
    GenerateCatalog(cg, catalog, images);
    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = 4;
    fc.index_config.nprobe = 4;
    FullIndexBuilder builder(catalog, images, features, fc);
    const auto quantizer = builder.TrainQuantizer();
    r0.InstallIndex(builder.Build(quantizer, AcceptAll));
    r1.InstallIndex(builder.Build(quantizer, AcceptAll));
  }

  FeatureVector Query(std::uint64_t seed) {
    const auto record = catalog.Get(1 + seed % 30);
    return embedder.ExtractQuery(record->id, record->category, seed);
  }
};

// One replica answers 80ms slow (network fault, not load — its heartbeats
// would still ack instantly); the hedge fires after 5ms and the healthy
// sibling's reply wins the slot, so the query finishes far under the
// limper's latency.
TEST(HedgingTest, HedgeWinsOverLimpingReplica) {
  Searcher::Config sc;
  sc.threads = 2;
  sc.latency = LatencyModel{.base_micros = 500};
  TwoReplicaHarness h(sc, sc);

  FaultInjector injector(21);
  injector.SetLink("b-hedge", h.r0.name(),
                   LinkFaults{.added_latency_micros = 80'000});
  h.r0.node().set_fault_injector(&injector);

  obs::Registry registry;
  Broker::Config bc;
  bc.threads = 2;
  bc.registry = &registry;
  bc.enable_hedging = true;
  bc.hedge_delay_micros = 5'000;
  bc.hedge_rate_cap = 0.0;  // uncapped: this test is about the race
  Broker broker("b-hedge", bc);
  broker.AddPartition({&h.r0, &h.r1});

  const auto& clock = MonotonicClock::Instance();
  // The rotation cursor starts at replica 0, so the very first fan-out's
  // primary is the limper.
  const Micros start = clock.NowMicros();
  auto hits = broker.SearchAsync(h.Query(1), 5).get();
  const Micros elapsed = clock.NowMicros() - start;
  EXPECT_FALSE(hits.empty());
  // Hedge delay (5ms) + a healthy scan (~1ms) — nowhere near the limper's
  // 80ms. A generous bound still separates the two outcomes cleanly.
  EXPECT_LT(elapsed, 60'000);
  EXPECT_GE(broker.hedges(), 1u);
  EXPECT_GE(broker.hedge_wins(), 1u);
  EXPECT_GE(
      registry
          .GetCounter(obs::Labeled("jdvs_broker_hedges_total", "broker",
                                   broker.name()))
          .Value(),
      1u);
  EXPECT_GE(
      registry
          .GetCounter(obs::Labeled("jdvs_broker_hedge_wins_total", "broker",
                                   broker.name()))
          .Value(),
      1u);
}

// Every query would hedge here (both replicas are slower than the hedge
// delay), but hedging doubles backend load exactly when the backend is
// already slow — the rate cap bounds the extra load to a fraction of
// primary dispatches.
TEST(HedgingTest, RateCapBoundsHedgeVolume) {
  Searcher::Config sc;
  sc.threads = 2;
  sc.latency = LatencyModel{.base_micros = 3'000};
  TwoReplicaHarness h(sc, sc);

  Broker::Config bc;
  bc.threads = 2;
  bc.enable_hedging = true;
  bc.hedge_delay_micros = 500;
  bc.hedge_rate_cap = 0.2;
  Broker broker("b-capped", bc);
  broker.AddPartition({&h.r0, &h.r1});

  constexpr std::size_t kQueries = 50;
  for (std::size_t i = 0; i < kQueries; ++i) {
    EXPECT_FALSE(broker.SearchAsync(h.Query(i), 5).get().empty());
  }
  // 50 primaries at cap 0.2 permits ~10 hedges; slack for the race between
  // the cap check and the counter bump.
  EXPECT_LE(broker.hedges(), 14u);
  EXPECT_GE(broker.hedges_capped(), 1u);
}

// The hedge timer outlives the query budget: when it fires the deadline is
// already dead, so no hedge is dispatched — re-offering work the client
// has given up on would only amplify an overload.
TEST(HedgingTest, NoHedgeAfterDeadlineExpires) {
  Searcher::Config sc;
  sc.threads = 2;
  sc.latency = LatencyModel{.base_micros = 10'000};
  TwoReplicaHarness h(sc, sc);

  Broker::Config bc;
  bc.threads = 2;
  bc.enable_hedging = true;
  bc.hedge_delay_micros = 5'000;
  bc.hedge_rate_cap = 0.0;
  Broker broker("b-deadline", bc);
  broker.AddPartition({&h.r0, &h.r1});

  auto future = broker.SearchAsync(
      h.Query(1), 5, 0, kNoCategoryFilter, FilterExpression{},
      qos::Deadline::FromBudget(MonotonicClock::Instance(), 2'000));
  EXPECT_THROW(future.get(), qos::DeadlineExceededError);
  EXPECT_EQ(broker.hedges(), 0u);
}

// 100% request loss toward one replica, no hedging — only the per-attempt
// timeout stands between the query and an indefinite hang. The timeout
// fires, the slot fails over to the sibling, and the query completes.
TEST(HedgingTest, TimeoutFailoverUnderTotalLoss) {
  Searcher::Config sc;
  sc.threads = 2;
  sc.latency = LatencyModel{.base_micros = 500};
  TwoReplicaHarness h(sc, sc);

  FaultInjector injector(33);
  injector.SetLink("b-loss", h.r0.name(),
                   LinkFaults{.drop_probability = 1.0});
  h.r0.node().set_fault_injector(&injector);

  Broker::Config bc;
  bc.threads = 2;
  bc.rpc_timeout_micros = 5'000;
  Broker broker("b-loss", bc);
  broker.AddPartition({&h.r0, &h.r1});

  auto hits = broker.SearchAsync(h.Query(1), 5).get();
  EXPECT_FALSE(hits.empty());
  EXPECT_GE(broker.rpc_timeouts(), 1u);
  EXPECT_GE(broker.failovers(), 1u);
  // The timeout fed the latency EWMA at the observed cost, so the
  // blackholed replica now *looks* slow to latency-aware selection too.
  EXPECT_GT(broker.replica_latency_ewma(0, 0), 0);
}

}  // namespace
}  // namespace jdvs

// Tests for the workload generators: catalog, diurnal day trace, and the
// closed-loop query client.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "workload/catalog_gen.h"
#include "workload/day_trace.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

TEST(CatalogGenTest, GeneratesRequestedShape) {
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig config;
  config.num_products = 500;
  config.min_images_per_product = 2;
  config.max_images_per_product = 4;
  config.num_categories = 10;
  const CatalogGenStats stats = GenerateCatalog(config, catalog, images);
  EXPECT_EQ(stats.products, 500u);
  EXPECT_EQ(catalog.size(), 500u);
  EXPECT_EQ(images.size(), stats.images);
  EXPECT_GE(stats.images, 2u * 500u);
  EXPECT_LE(stats.images, 4u * 500u);
  catalog.ForEach([&](const ProductRecord& r) {
    EXPECT_GE(r.image_urls.size(), 2u);
    EXPECT_LE(r.image_urls.size(), 4u);
    EXPECT_LT(r.category, 10u);
    EXPECT_GE(r.id, 1u);
  });
}

TEST(CatalogGenTest, OffMarketFractionApproximatelyRespected) {
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig config;
  config.num_products = 2000;
  config.initial_off_market_fraction = 0.3;
  const CatalogGenStats stats = GenerateCatalog(config, catalog, images);
  const double on_rate =
      static_cast<double>(stats.on_market_products) / stats.products;
  EXPECT_NEAR(on_rate, 0.7, 0.05);
}

TEST(CatalogGenTest, PrewarmFillsFeatureDb) {
  ProductCatalog catalog;
  ImageStore images;
  SyntheticEmbedder embedder({.dim = 8, .num_categories = 4, .seed = 2});
  FeatureDb features(embedder, {.mean_micros = 0});
  CatalogGenConfig config;
  config.num_products = 50;
  const CatalogGenStats stats =
      GenerateCatalog(config, catalog, images, &features);
  EXPECT_EQ(stats.features_prewarmed, stats.images);
  EXPECT_EQ(features.size(), stats.images);
}

TEST(CatalogGenTest, DeterministicForSameSeed) {
  ProductCatalog a;
  ProductCatalog b;
  ImageStore ia;
  ImageStore ib;
  CatalogGenConfig config;
  config.num_products = 100;
  GenerateCatalog(config, a, ia);
  GenerateCatalog(config, b, ib);
  a.ForEach([&](const ProductRecord& ra) {
    const auto rb = b.Get(ra.id);
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra.category, rb->category);
    EXPECT_EQ(ra.attributes, rb->attributes);
    EXPECT_EQ(ra.image_urls, rb->image_urls);
  });
}

TEST(CatalogGenTest, AttributeSamplerDeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleProductAttributes(a), SampleProductAttributes(b)) << i;
  }
}

// The sampler is Zipf-like: the top of the sales distribution has to sit
// orders of magnitude above the median, or "sales >= high threshold"
// filters wouldn't be the rare-predicate regime the selectivity sweep
// exercises.
TEST(CatalogGenTest, AttributeSamplerIsHeavyTailed) {
  Rng rng(7);
  std::vector<std::uint64_t> sales;
  std::uint64_t praise_le_sales = 0;
  constexpr std::size_t kDraws = 20'000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const ProductAttributes attrs = SampleProductAttributes(rng);
    sales.push_back(attrs.sales);
    praise_le_sales += attrs.praise <= attrs.sales;
    EXPECT_GE(attrs.price_cents, 100u);  // price floor: 1 CNY
  }
  std::sort(sales.begin(), sales.end());
  const std::uint64_t median = sales[kDraws / 2];
  const std::uint64_t p99 = sales[kDraws - kDraws / 100];
  const std::uint64_t p999 = sales[kDraws - kDraws / 1000];
  EXPECT_GE(p99, 10 * std::max<std::uint64_t>(median, 1));
  EXPECT_GE(p999, 100 * std::max<std::uint64_t>(median, 1));
  // Praise is a fraction of buyers, never more than sales.
  EXPECT_EQ(praise_le_sales, kDraws);
}

struct TraceFixture {
  TraceFixture(double off_market = 0.3, std::size_t products = 1000) {
    CatalogGenConfig config;
    config.num_products = products;
    config.initial_off_market_fraction = off_market;
    GenerateCatalog(config, catalog, images);
  }
  ProductCatalog catalog;
  ImageStore images;
};

TEST(DayTraceTest, TotalMessageCountExact) {
  TraceFixture fx;
  DayTraceConfig config;
  config.total_messages = 12345;
  DayTraceGenerator generator(config, fx.catalog);
  std::uint64_t seen = 0;
  const DayTraceStats stats =
      generator.Generate([&](const TraceEvent&) { ++seen; });
  EXPECT_EQ(seen, 12345u);
  EXPECT_EQ(stats.total, 12345u);
  EXPECT_EQ(stats.attribute_updates + stats.additions + stats.deletions,
            stats.total);
}

TEST(DayTraceTest, TypeMixMatchesTable1) {
  TraceFixture fx(/*off_market=*/0.4, /*products=*/5000);
  DayTraceConfig config;
  config.total_messages = 50000;
  DayTraceGenerator generator(config, fx.catalog);
  const DayTraceStats stats = generator.Generate([](const TraceEvent&) {});
  // Table 1: 32.2% / 53.3% / 14.4%.
  EXPECT_NEAR(static_cast<double>(stats.attribute_updates) / stats.total,
              0.3224, 0.02);
  EXPECT_NEAR(static_cast<double>(stats.additions) / stats.total, 0.5333,
              0.02);
  EXPECT_NEAR(static_cast<double>(stats.deletions) / stats.total, 0.1443,
              0.02);
}

TEST(DayTraceTest, RelistDominatesAdditionsWithWarmPool) {
  TraceFixture fx(/*off_market=*/0.5, /*products=*/20000);
  DayTraceConfig config;
  config.total_messages = 20000;
  DayTraceGenerator generator(config, fx.catalog);
  const DayTraceStats stats = generator.Generate([](const TraceEvent&) {});
  const double relist_rate =
      static_cast<double>(stats.relist_additions) / stats.additions;
  // Table 1: 513/521 = 98.5%; the pool is deep enough here to sustain it.
  EXPECT_GT(relist_rate, 0.95);
}

TEST(DayTraceTest, HourlyShapePeaksAt11) {
  TraceFixture fx;
  DayTraceConfig config;
  config.total_messages = 100000;
  DayTraceGenerator generator(config, fx.catalog);
  const DayTraceStats stats = generator.Generate([](const TraceEvent&) {});
  std::uint64_t max_count = 0;
  int max_hour = -1;
  for (int h = 0; h < 24; ++h) {
    if (stats.per_hour[h] > max_count) {
      max_count = stats.per_hour[h];
      max_hour = h;
    }
  }
  EXPECT_EQ(max_hour, 11);                      // Figure 11(a) peak
  EXPECT_GT(stats.per_hour[11], stats.per_hour[3] * 5);  // strong diurnality
}

TEST(DayTraceTest, EventsArriveInHourOrder) {
  TraceFixture fx;
  DayTraceConfig config;
  config.total_messages = 5000;
  DayTraceGenerator generator(config, fx.catalog);
  int last_hour = 0;
  generator.Generate([&](const TraceEvent& event) {
    EXPECT_GE(event.hour, last_hour);
    EXPECT_LT(event.hour, 24);
    last_hour = event.hour;
  });
}

TEST(DayTraceTest, DeletionsTargetOnMarketProducts) {
  TraceFixture fx(/*off_market=*/0.0, /*products=*/200);
  DayTraceConfig config;
  config.total_messages = 2000;
  DayTraceGenerator generator(config, fx.catalog);
  // Track market state; a deletion of an off-market product would be a bug.
  std::set<ProductId> off_market;
  generator.Generate([&](const TraceEvent& event) {
    const auto& m = event.message;
    if (m.type == UpdateType::kRemoveProduct) {
      EXPECT_EQ(off_market.count(m.product_id), 0u);
      off_market.insert(m.product_id);
    } else if (m.type == UpdateType::kAddProduct) {
      off_market.erase(m.product_id);
    }
  });
}

TEST(DayTraceTest, NewProductsGetFreshIdsAndImages) {
  TraceFixture fx(/*off_market=*/0.0, /*products=*/100);
  DayTraceConfig config;
  config.total_messages = 3000;
  config.relist_fraction = 0.0;  // force new products
  DayTraceGenerator generator(config, fx.catalog);
  std::set<ProductId> new_ids;
  generator.Generate([&](const TraceEvent& event) {
    const auto& m = event.message;
    if (m.type == UpdateType::kAddProduct && m.product_id > 100) {
      EXPECT_EQ(new_ids.count(m.product_id), 0u);  // never re-added as "new"
      new_ids.insert(m.product_id);
      EXPECT_FALSE(m.image_urls.empty());
    }
  });
  EXPECT_GT(new_ids.size(), 0u);
}

TEST(QueryClientTest, ZipfSkewConcentratesQueries) {
  // Use a tiny cluster so the client can run; we only inspect the skew.
  ClusterConfig config;
  config.num_partitions = 1;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.embedder = {.dim = 8, .num_categories = 2, .seed = 1};
  config.detector = {.num_categories = 2, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 2;
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 200;
  cg.num_categories = 2;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  const auto run = [&](double zipf) {
    QueryWorkloadConfig qc;
    qc.num_threads = 2;
    qc.queries_per_thread = 150;
    qc.zipf_exponent = zipf;
    QueryClient client(cluster, qc);
    return client.Run();
  };
  // Both modes must execute cleanly; the skew itself is validated through
  // the hit-rate staying intact (skew changes *which* products are queried,
  // not correctness).
  const auto uniform = run(0.0);
  const auto skewed = run(1.2);
  EXPECT_EQ(uniform.errors, 0u);
  EXPECT_EQ(skewed.errors, 0u);
  EXPECT_EQ(uniform.queries, 300u);
  EXPECT_EQ(skewed.queries, 300u);
  EXPECT_GT(skewed.subject_hit_rate, 0.9);
  cluster.Stop();
}

TEST(QueryClientTest, RetriesShedQueriesOnAnotherBlender) {
  // 2 blenders each admitting 1 query, 8 concurrent closed-loop threads,
  // 200ms of extraction per query: overload is certain, and a shed query
  // must be retried against the next blender instead of erroring outright.
  ClusterConfig config;
  config.num_partitions = 1;
  config.num_brokers = 1;
  config.num_blenders = 2;
  config.blender_max_in_flight = 1;
  config.query_extraction_micros = 200'000;
  config.embedder = {.dim = 8, .num_categories = 2, .seed = 1};
  config.detector = {.num_categories = 2, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 2;
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 50;
  cg.num_categories = 2;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  QueryWorkloadConfig qc;
  qc.num_threads = 8;
  qc.queries_per_thread = 1;
  qc.max_retries = 2;
  QueryClient client(cluster, qc);
  const QueryWorkloadResult result = client.Run();
  EXPECT_EQ(result.queries + result.errors, 8u);
  EXPECT_GT(result.queries, 0u);
  EXPECT_GT(result.retries, 0u);
  const obs::Counter* retries =
      cluster.registry().FindCounter("jdvs_client_query_retries_total");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->Value(), result.retries);
  cluster.Stop();
}

TEST(DayTraceTest, DeterministicForSameSeed) {
  TraceFixture fx;
  DayTraceConfig config;
  config.total_messages = 1000;
  std::vector<std::string> first;
  std::vector<std::string> second;
  DayTraceGenerator(config, fx.catalog).Generate([&](const TraceEvent& e) {
    first.push_back(ToString(e.message));
  });
  DayTraceGenerator(config, fx.catalog).Generate([&](const TraceEvent& e) {
    second.push_back(ToString(e.message));
  });
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace jdvs

// Tests for the simulated cluster fabric: partitioner, latency model, nodes,
// load balancer, partial-result collection.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "net/latency_model.h"
#include "net/load_balancer.h"
#include "net/node.h"
#include "net/partitioner.h"
#include "net/rpc.h"
#include "store/catalog.h"

namespace jdvs {
namespace {

TEST(PartitionerTest, StableAssignment) {
  const UrlPartitioner partitioner(20);
  for (int i = 0; i < 100; ++i) {
    const std::string url = MakeImageUrl(i, 0);
    EXPECT_EQ(partitioner.PartitionOf(url), partitioner.PartitionOf(url));
    EXPECT_LT(partitioner.PartitionOf(url), 20u);
  }
}

TEST(PartitionerTest, FiltersArePartition) {
  const UrlPartitioner partitioner(8);
  std::vector<PartitionFilter> filters;
  for (std::size_t p = 0; p < 8; ++p) filters.push_back(partitioner.FilterFor(p));
  for (int i = 0; i < 500; ++i) {
    const std::string url = MakeImageUrl(i, i % 3);
    int owners = 0;
    for (std::size_t p = 0; p < 8; ++p) {
      if (filters[p](url)) {
        ++owners;
        EXPECT_EQ(partitioner.PartitionOf(url), p);
      }
    }
    EXPECT_EQ(owners, 1);  // exactly one partition owns each image
  }
}

TEST(PartitionerTest, ReasonableBalance) {
  const UrlPartitioner partitioner(10);
  std::vector<int> counts(10, 0);
  constexpr int kUrls = 50000;
  for (int i = 0; i < kUrls; ++i) {
    ++counts[partitioner.PartitionOf(MakeImageUrl(i, 0))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kUrls / 10 / 2);
    EXPECT_LT(c, kUrls / 10 * 2);
  }
}

TEST(PartitionerTest, ZeroPartitionsClampedToOne) {
  const UrlPartitioner partitioner(0);
  EXPECT_EQ(partitioner.num_partitions(), 1u);
  EXPECT_EQ(partitioner.PartitionOf("anything"), 0u);
}

TEST(LatencyModelTest, ZeroModelSamplesZero) {
  const LatencyModel model;
  EXPECT_TRUE(model.IsZero());
  Rng rng(1);
  EXPECT_EQ(model.SampleMicros(rng), 0);
}

TEST(LatencyModelTest, BaseOnlyIsDeterministic) {
  const LatencyModel model{.base_micros = 250};
  Rng rng(1);
  EXPECT_EQ(model.SampleMicros(rng), 250);
}

TEST(LatencyModelTest, JitterMedianApproximatelyRight) {
  const LatencyModel model{
      .base_micros = 0, .jitter_median_micros = 1000, .sigma = 0.5};
  Rng rng(7);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(model.SampleMicros(rng));
  std::sort(samples.begin(), samples.end());
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_NEAR(median, 1000.0, 100.0);
}

TEST(NodeTest, InvokeRunsOnNodePool) {
  Node node("test-node", 2);
  auto f = node.Invoke([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(NodeTest, InvokeVoid) {
  Node node("test-node", 1);
  std::atomic<bool> ran{false};
  node.Invoke([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(NodeTest, FailedNodeThrowsThroughFuture) {
  Node node("flaky", 1);
  node.set_failed(true);
  auto f = node.Invoke([] { return 1; });
  EXPECT_THROW(f.get(), NodeFailedError);
  node.set_failed(false);
  EXPECT_EQ(node.Invoke([] { return 2; }).get(), 2);
}

TEST(NodeTest, ParallelInvocationsAllComplete) {
  Node node("par", 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(node.Invoke([i] { return i * 2; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * 2);
}

TEST(RoundRobinTest, CyclesThroughBackends) {
  int a = 1;
  int b = 2;
  int c = 3;
  RoundRobinBalancer<int> balancer({&a, &b, &c});
  std::multiset<int> seen;
  for (int i = 0; i < 6; ++i) seen.insert(balancer.Next());
  EXPECT_EQ(seen.count(1), 2u);
  EXPECT_EQ(seen.count(2), 2u);
  EXPECT_EQ(seen.count(3), 2u);
}

TEST(RoundRobinTest, SkipsUnhealthy) {
  int a = 1;
  int b = 2;
  RoundRobinBalancer<int> balancer({&a, &b},
                                   [](const int& v) { return v != 1; });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(balancer.Next(), 2);
}

TEST(RoundRobinTest, ThrowsWhenAllDown) {
  int a = 1;
  RoundRobinBalancer<int> balancer({&a}, [](const int&) { return false; });
  // Typed, so callers can branch on total-outage...
  EXPECT_THROW(balancer.Next(), NoHealthyBackendError);
  // ...while pre-existing catch(runtime_error) sites still work.
  EXPECT_THROW(balancer.Next(), std::runtime_error);
}

TEST(RoundRobinTest, RejectsEmptyBackendList) {
  EXPECT_THROW(RoundRobinBalancer<int>({}), std::invalid_argument);
}

TEST(NodeTest, InvokeAsyncDeliversValueToCallback) {
  Node node("async", 2);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync([] { return 41 + 1; },
                   [&delivered](AsyncResult<int> result) {
                     delivered.set_value(std::move(result));
                   });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 42);
}

TEST(NodeTest, InvokeAsyncVoid) {
  Node node("async-void", 1);
  std::promise<bool> done;
  node.InvokeAsync([] {}, [&done](AsyncResult<void> result) {
    done.set_value(result.ok());
  });
  EXPECT_TRUE(done.get_future().get());
}

TEST(NodeTest, InvokeAsyncFailedNodeDeliversError) {
  Node node("flaky-async", 1);
  node.set_failed(true);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync([] { return 1; }, [&delivered](AsyncResult<int> result) {
    delivered.set_value(std::move(result));
  });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_THROW(std::rethrow_exception(result.error), NodeFailedError);
  EXPECT_NE(DescribeException(result.error).find("flaky-async"),
            std::string::npos);
}

TEST(NodeTest, InvokeAsyncFnExceptionReachesCallback) {
  Node node("thrower", 1);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync(
      []() -> int { throw std::runtime_error("scan exploded"); },
      [&delivered](AsyncResult<int> result) {
        delivered.set_value(std::move(result));
      });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(DescribeException(result.error), "scan exploded");
}

TEST(FanInCollectorTest, ZeroChildrenFiresImmediately) {
  bool fired = false;
  auto collector = FanInCollector<int>::Create(
      0, [&fired](std::vector<AsyncResult<int>> slots) {
        fired = true;
        EXPECT_TRUE(slots.empty());
      });
  EXPECT_TRUE(fired);
  EXPECT_EQ(collector->num_children(), 0u);
}

TEST(FanInCollectorTest, FiresOnceAfterLastChild) {
  std::atomic<int> fires{0};
  std::vector<AsyncResult<int>> received;
  auto collector = FanInCollector<int>::Create(
      3, [&](std::vector<AsyncResult<int>> slots) {
        fires.fetch_add(1);
        received = std::move(slots);
      });
  collector->Complete(1, AsyncResult<int>::Ok(10));
  EXPECT_EQ(fires.load(), 0);
  collector->Complete(0, AsyncResult<int>::Ok(20));
  EXPECT_EQ(fires.load(), 0);
  collector->Complete(2, AsyncResult<int>::Ok(30));
  EXPECT_EQ(fires.load(), 1);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(*received[0].value, 20);
  EXPECT_EQ(*received[1].value, 10);
  EXPECT_EQ(*received[2].value, 30);
}

TEST(FanInCollectorTest, AllChildrenFailedStillFires) {
  bool fired = false;
  auto collector = FanInCollector<int>::Create(
      2, [&fired](std::vector<AsyncResult<int>> slots) {
        fired = true;
        for (const auto& slot : slots) {
          EXPECT_FALSE(slot.ok());
          EXPECT_EQ(DescribeException(slot.error), "down");
        }
      });
  for (std::size_t slot = 0; slot < 2; ++slot) {
    collector->Complete(slot, AsyncResult<int>::Fail(std::make_exception_ptr(
                                  std::runtime_error("down"))));
  }
  EXPECT_TRUE(fired);
}

// Hammered under TSan by CI: concurrent Complete() calls from many threads
// must publish every slot to the firing thread and fire exactly once.
TEST(FanInCollectorTest, ConcurrentCompletionsFireExactlyOnce) {
  constexpr std::size_t kChildren = 32;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> fires{0};
    std::promise<std::vector<AsyncResult<int>>> delivered;
    auto collector = FanInCollector<int>::Create(
        kChildren, [&](std::vector<AsyncResult<int>> slots) {
          fires.fetch_add(1);
          delivered.set_value(std::move(slots));
        });
    std::vector<std::thread> threads;
    threads.reserve(kChildren);
    for (std::size_t slot = 0; slot < kChildren; ++slot) {
      threads.emplace_back([&collector, slot] {
        collector->Complete(slot,
                            AsyncResult<int>::Ok(static_cast<int>(slot) * 3));
      });
    }
    const std::vector<AsyncResult<int>> slots = delivered.get_future().get();
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(fires.load(), 1);
    ASSERT_EQ(slots.size(), kChildren);
    for (std::size_t slot = 0; slot < kChildren; ++slot) {
      ASSERT_TRUE(slots[slot].ok());
      EXPECT_EQ(*slots[slot].value, static_cast<int>(slot) * 3);
    }
  }
}

// The continuation must be released right after firing, so per-request
// state captured in it (which often points back at the collector) is freed
// without waiting for the last external collector reference to drop.
TEST(FanInCollectorTest, ContinuationReleasedAfterFire) {
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  auto collector = FanInCollector<int>::Create(
      1, [keep = std::move(sentinel)](std::vector<AsyncResult<int>>) {});
  EXPECT_FALSE(watch.expired());
  collector->Complete(0, AsyncResult<int>::Ok(1));
  EXPECT_TRUE(watch.expired());  // collector still alive, capture is not
}

TEST(CollectPartialTest, DropsFailedFutures) {
  Node good("good", 1);
  Node bad("bad", 1);
  bad.set_failed(true);
  std::vector<std::future<int>> futures;
  futures.push_back(good.Invoke([] { return 1; }));
  futures.push_back(bad.Invoke([] { return 2; }));
  futures.push_back(good.Invoke([] { return 3; }));
  std::size_t failures = 0;
  const auto results = CollectPartial(futures, &failures);
  EXPECT_EQ(results, (std::vector<int>{1, 3}));
  EXPECT_EQ(failures, 1u);
}

}  // namespace
}  // namespace jdvs

// Tests for the simulated cluster fabric: partitioner, latency model, nodes,
// load balancer, partial-result collection, fault injection and per-RPC
// timeouts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "net/fault_injector.h"
#include "net/latency_model.h"
#include "net/load_balancer.h"
#include "net/node.h"
#include "net/partitioner.h"
#include "net/rpc.h"
#include "net/timeout.h"
#include "store/catalog.h"

namespace jdvs {
namespace {

TEST(PartitionerTest, StableAssignment) {
  const UrlPartitioner partitioner(20);
  for (int i = 0; i < 100; ++i) {
    const std::string url = MakeImageUrl(i, 0);
    EXPECT_EQ(partitioner.PartitionOf(url), partitioner.PartitionOf(url));
    EXPECT_LT(partitioner.PartitionOf(url), 20u);
  }
}

TEST(PartitionerTest, FiltersArePartition) {
  const UrlPartitioner partitioner(8);
  std::vector<PartitionFilter> filters;
  for (std::size_t p = 0; p < 8; ++p) filters.push_back(partitioner.FilterFor(p));
  for (int i = 0; i < 500; ++i) {
    const std::string url = MakeImageUrl(i, i % 3);
    int owners = 0;
    for (std::size_t p = 0; p < 8; ++p) {
      if (filters[p](url)) {
        ++owners;
        EXPECT_EQ(partitioner.PartitionOf(url), p);
      }
    }
    EXPECT_EQ(owners, 1);  // exactly one partition owns each image
  }
}

TEST(PartitionerTest, ReasonableBalance) {
  const UrlPartitioner partitioner(10);
  std::vector<int> counts(10, 0);
  constexpr int kUrls = 50000;
  for (int i = 0; i < kUrls; ++i) {
    ++counts[partitioner.PartitionOf(MakeImageUrl(i, 0))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kUrls / 10 / 2);
    EXPECT_LT(c, kUrls / 10 * 2);
  }
}

TEST(PartitionerTest, ZeroPartitionsClampedToOne) {
  const UrlPartitioner partitioner(0);
  EXPECT_EQ(partitioner.num_partitions(), 1u);
  EXPECT_EQ(partitioner.PartitionOf("anything"), 0u);
}

TEST(LatencyModelTest, ZeroModelSamplesZero) {
  const LatencyModel model;
  EXPECT_TRUE(model.IsZero());
  Rng rng(1);
  EXPECT_EQ(model.SampleMicros(rng), 0);
}

TEST(LatencyModelTest, BaseOnlyIsDeterministic) {
  const LatencyModel model{.base_micros = 250};
  Rng rng(1);
  EXPECT_EQ(model.SampleMicros(rng), 250);
}

TEST(LatencyModelTest, JitterMedianApproximatelyRight) {
  const LatencyModel model{
      .base_micros = 0, .jitter_median_micros = 1000, .sigma = 0.5};
  Rng rng(7);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(model.SampleMicros(rng));
  std::sort(samples.begin(), samples.end());
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_NEAR(median, 1000.0, 100.0);
}

TEST(NodeTest, InvokeRunsOnNodePool) {
  Node node("test-node", 2);
  auto f = node.Invoke([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(NodeTest, InvokeVoid) {
  Node node("test-node", 1);
  std::atomic<bool> ran{false};
  node.Invoke([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(NodeTest, FailedNodeThrowsThroughFuture) {
  Node node("flaky", 1);
  node.set_failed(true);
  auto f = node.Invoke([] { return 1; });
  EXPECT_THROW(f.get(), NodeFailedError);
  node.set_failed(false);
  EXPECT_EQ(node.Invoke([] { return 2; }).get(), 2);
}

TEST(NodeTest, ParallelInvocationsAllComplete) {
  Node node("par", 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(node.Invoke([i] { return i * 2; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * 2);
}

TEST(RoundRobinTest, CyclesThroughBackends) {
  int a = 1;
  int b = 2;
  int c = 3;
  RoundRobinBalancer<int> balancer({&a, &b, &c});
  std::multiset<int> seen;
  for (int i = 0; i < 6; ++i) seen.insert(balancer.Next());
  EXPECT_EQ(seen.count(1), 2u);
  EXPECT_EQ(seen.count(2), 2u);
  EXPECT_EQ(seen.count(3), 2u);
}

TEST(RoundRobinTest, SkipsUnhealthy) {
  int a = 1;
  int b = 2;
  RoundRobinBalancer<int> balancer({&a, &b},
                                   [](const int& v) { return v != 1; });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(balancer.Next(), 2);
}

TEST(RoundRobinTest, ThrowsWhenAllDown) {
  int a = 1;
  RoundRobinBalancer<int> balancer({&a}, [](const int&) { return false; });
  // Typed, so callers can branch on total-outage...
  EXPECT_THROW(balancer.Next(), NoHealthyBackendError);
  // ...while pre-existing catch(runtime_error) sites still work.
  EXPECT_THROW(balancer.Next(), std::runtime_error);
}

TEST(RoundRobinTest, RejectsEmptyBackendList) {
  EXPECT_THROW(RoundRobinBalancer<int>({}), std::invalid_argument);
}

TEST(NodeTest, InvokeAsyncDeliversValueToCallback) {
  Node node("async", 2);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync([] { return 41 + 1; },
                   [&delivered](AsyncResult<int> result) {
                     delivered.set_value(std::move(result));
                   });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 42);
}

TEST(NodeTest, InvokeAsyncVoid) {
  Node node("async-void", 1);
  std::promise<bool> done;
  node.InvokeAsync([] {}, [&done](AsyncResult<void> result) {
    done.set_value(result.ok());
  });
  EXPECT_TRUE(done.get_future().get());
}

TEST(NodeTest, InvokeAsyncFailedNodeDeliversError) {
  Node node("flaky-async", 1);
  node.set_failed(true);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync([] { return 1; }, [&delivered](AsyncResult<int> result) {
    delivered.set_value(std::move(result));
  });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_THROW(std::rethrow_exception(result.error), NodeFailedError);
  EXPECT_NE(DescribeException(result.error).find("flaky-async"),
            std::string::npos);
}

TEST(NodeTest, InvokeAsyncFnExceptionReachesCallback) {
  Node node("thrower", 1);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsync(
      []() -> int { throw std::runtime_error("scan exploded"); },
      [&delivered](AsyncResult<int> result) {
        delivered.set_value(std::move(result));
      });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(DescribeException(result.error), "scan exploded");
}

TEST(FanInCollectorTest, ZeroChildrenFiresImmediately) {
  bool fired = false;
  auto collector = FanInCollector<int>::Create(
      0, [&fired](std::vector<AsyncResult<int>> slots) {
        fired = true;
        EXPECT_TRUE(slots.empty());
      });
  EXPECT_TRUE(fired);
  EXPECT_EQ(collector->num_children(), 0u);
}

TEST(FanInCollectorTest, FiresOnceAfterLastChild) {
  std::atomic<int> fires{0};
  std::vector<AsyncResult<int>> received;
  auto collector = FanInCollector<int>::Create(
      3, [&](std::vector<AsyncResult<int>> slots) {
        fires.fetch_add(1);
        received = std::move(slots);
      });
  collector->Complete(1, AsyncResult<int>::Ok(10));
  EXPECT_EQ(fires.load(), 0);
  collector->Complete(0, AsyncResult<int>::Ok(20));
  EXPECT_EQ(fires.load(), 0);
  collector->Complete(2, AsyncResult<int>::Ok(30));
  EXPECT_EQ(fires.load(), 1);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(*received[0].value, 20);
  EXPECT_EQ(*received[1].value, 10);
  EXPECT_EQ(*received[2].value, 30);
}

TEST(FanInCollectorTest, AllChildrenFailedStillFires) {
  bool fired = false;
  auto collector = FanInCollector<int>::Create(
      2, [&fired](std::vector<AsyncResult<int>> slots) {
        fired = true;
        for (const auto& slot : slots) {
          EXPECT_FALSE(slot.ok());
          EXPECT_EQ(DescribeException(slot.error), "down");
        }
      });
  for (std::size_t slot = 0; slot < 2; ++slot) {
    collector->Complete(slot, AsyncResult<int>::Fail(std::make_exception_ptr(
                                  std::runtime_error("down"))));
  }
  EXPECT_TRUE(fired);
}

// Hammered under TSan by CI: concurrent Complete() calls from many threads
// must publish every slot to the firing thread and fire exactly once.
TEST(FanInCollectorTest, ConcurrentCompletionsFireExactlyOnce) {
  constexpr std::size_t kChildren = 32;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> fires{0};
    std::promise<std::vector<AsyncResult<int>>> delivered;
    auto collector = FanInCollector<int>::Create(
        kChildren, [&](std::vector<AsyncResult<int>> slots) {
          fires.fetch_add(1);
          delivered.set_value(std::move(slots));
        });
    std::vector<std::thread> threads;
    threads.reserve(kChildren);
    for (std::size_t slot = 0; slot < kChildren; ++slot) {
      threads.emplace_back([&collector, slot] {
        collector->Complete(slot,
                            AsyncResult<int>::Ok(static_cast<int>(slot) * 3));
      });
    }
    const std::vector<AsyncResult<int>> slots = delivered.get_future().get();
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(fires.load(), 1);
    ASSERT_EQ(slots.size(), kChildren);
    for (std::size_t slot = 0; slot < kChildren; ++slot) {
      ASSERT_TRUE(slots[slot].ok());
      EXPECT_EQ(*slots[slot].value, static_cast<int>(slot) * 3);
    }
  }
}

// The continuation must be released right after firing, so per-request
// state captured in it (which often points back at the collector) is freed
// without waiting for the last external collector reference to drop.
TEST(FanInCollectorTest, ContinuationReleasedAfterFire) {
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  auto collector = FanInCollector<int>::Create(
      1, [keep = std::move(sentinel)](std::vector<AsyncResult<int>>) {});
  EXPECT_FALSE(watch.expired());
  collector->Complete(0, AsyncResult<int>::Ok(1));
  EXPECT_TRUE(watch.expired());  // collector still alive, capture is not
}

TEST(CollectPartialTest, DropsFailedFutures) {
  Node good("good", 1);
  Node bad("bad", 1);
  bad.set_failed(true);
  std::vector<std::future<int>> futures;
  futures.push_back(good.Invoke([] { return 1; }));
  futures.push_back(bad.Invoke([] { return 2; }));
  futures.push_back(good.Invoke([] { return 3; }));
  std::size_t failures = 0;
  const auto results = CollectPartial(futures, &failures);
  EXPECT_EQ(results, (std::vector<int>{1, 3}));
  EXPECT_EQ(failures, 1u);
}

// ---- Fault injection ----

TEST(FaultInjectorTest, SameSeedReplaysSameSchedule) {
  // Decisions hash (seed, link rule, message ordinal), so two injectors with
  // the same seed produce identical drop schedules message for message —
  // the property that makes chaos runs reproducible under --seed.
  const LinkFaults faults{.drop_probability = 0.4};
  FaultInjector a(42);
  FaultInjector b(42);
  a.SetLink("broker", "searcher", faults);
  b.SetLink("broker", "searcher", faults);
  std::vector<bool> schedule_a;
  std::vector<bool> schedule_b;
  for (int i = 0; i < 200; ++i) {
    schedule_a.push_back(a.Decide("broker", "searcher").drop_request);
    schedule_b.push_back(b.Decide("broker", "searcher").drop_request);
  }
  EXPECT_EQ(schedule_a, schedule_b);
  // And the probability is roughly honored (very loose bounds).
  const auto drops = std::count(schedule_a.begin(), schedule_a.end(), true);
  EXPECT_GT(drops, 40);
  EXPECT_LT(drops, 160);

  // A different seed yields a different schedule (with overwhelming
  // probability over 200 draws at p=0.4).
  FaultInjector c(43);
  c.SetLink("broker", "searcher", faults);
  std::vector<bool> schedule_c;
  for (int i = 0; i < 200; ++i) {
    schedule_c.push_back(c.Decide("broker", "searcher").drop_request);
  }
  EXPECT_NE(schedule_a, schedule_c);
}

TEST(FaultInjectorTest, ExactLinkRuleOverridesWildcard) {
  FaultInjector injector(1);
  injector.SetNode("searcher", LinkFaults{.partitioned = true});
  injector.SetLink("ctrl", "searcher", LinkFaults{});  // clean exception
  // The control plane's probes get through; everyone else is partitioned.
  EXPECT_FALSE(injector.Decide("ctrl", "searcher").drop_request);
  EXPECT_TRUE(injector.Decide("broker", "searcher").drop_request);
  EXPECT_TRUE(injector.Decide("", "searcher").drop_request);
  // No rule at all: clean.
  EXPECT_TRUE(injector.Decide("broker", "other").IsClean());
}

TEST(FaultInjectorTest, PartitionAndHealAreRuntimeControllable) {
  FaultInjector injector(2);
  injector.Partition("blender", "broker");
  EXPECT_TRUE(injector.Decide("blender", "broker").drop_request);
  EXPECT_GT(injector.requests_dropped(), 0u);
  injector.Heal("blender", "broker");
  EXPECT_TRUE(injector.Decide("blender", "broker").IsClean());
  injector.SetNode("broker", LinkFaults{.drop_probability = 1.0});
  EXPECT_TRUE(injector.Decide("anyone", "broker").drop_request);
  injector.Clear();
  EXPECT_TRUE(injector.Decide("anyone", "broker").IsClean());
}

TEST(FaultInjectorTest, LatencyFaultsPassThroughDecision) {
  FaultInjector injector(3);
  injector.SetLink(
      "a", "b",
      LinkFaults{.latency_multiplier = 50.0, .added_latency_micros = 123});
  const FaultInjector::Decision decision = injector.Decide("a", "b");
  EXPECT_FALSE(decision.drop_request);
  EXPECT_DOUBLE_EQ(decision.latency_multiplier, 50.0);
  EXPECT_EQ(decision.added_latency_micros, 123);
}

TEST(OnceCallbackTest, FirstCompletionWins) {
  int deliveries = 0;
  int value = 0;
  OnceCallback<int> guard([&](AsyncResult<int> result) {
    ++deliveries;
    value = *result.value;
  });
  EXPECT_FALSE(guard.delivered());
  EXPECT_TRUE(guard.Deliver(AsyncResult<int>::Ok(7)));
  EXPECT_FALSE(guard.Deliver(AsyncResult<int>::Ok(9)));  // suppressed
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(guard.delivered());
}

TEST(TimeoutSchedulerTest, FiresAndCancels) {
  TimeoutScheduler scheduler;
  std::promise<void> fired;
  const auto id =
      scheduler.Schedule(2'000, [&fired] { fired.set_value(); });
  EXPECT_NE(id, 0u);
  fired.get_future().get();  // fires on the worker thread
  EXPECT_EQ(scheduler.fired_total(), 1u);
  EXPECT_FALSE(scheduler.Cancel(id));  // already fired

  std::atomic<bool> must_not_fire{false};
  const auto id2 = scheduler.Schedule(
      60'000'000, [&must_not_fire] { must_not_fire.store(true); });
  EXPECT_TRUE(scheduler.Cancel(id2));
  EXPECT_EQ(scheduler.cancelled_total(), 1u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_FALSE(must_not_fire.load());
}

TEST(NodeFaultTest, TimeoutBreaksTotalRequestLoss) {
  // 100% request loss: without a timeout the continuation would never fire.
  FaultInjector injector(5);
  injector.SetNode("lossy", LinkFaults{.drop_probability = 1.0});
  Node node("lossy", 1);
  node.set_fault_injector(&injector);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsyncWithTimeout(
      5'000, [] { return 1; },
      [&delivered](AsyncResult<int> result) {
        delivered.set_value(std::move(result));
      });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsRpcTimeout(result.error));
  EXPECT_GT(injector.requests_dropped(), 0u);
}

TEST(NodeFaultTest, ReplyBeatsTimeoutOnCleanLink) {
  FaultInjector injector(6);  // attached but no rules: clean fabric
  Node node("clean", 1);
  node.set_fault_injector(&injector);
  std::promise<AsyncResult<int>> delivered;
  node.InvokeAsyncWithTimeout(
      10'000'000, [] { return 27; },
      [&delivered](AsyncResult<int> result) {
        delivered.set_value(std::move(result));
      });
  const AsyncResult<int> result = delivered.get_future().get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value, 27);
  // The winning reply disarms its own timer right after delivering; poll
  // briefly since the cancel runs after the promise is fulfilled.
  const Micros poll_deadline =
      MonotonicClock::Instance().NowMicros() + 2'000'000;
  while (TimeoutScheduler::Default().pending() > 0 &&
         MonotonicClock::Instance().NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(TimeoutScheduler::Default().pending(), 0u);
}

TEST(NodeFaultTest, DuplicateReplyDeliveredExactlyOnce) {
  FaultInjector injector(7);
  injector.SetNode("dup", LinkFaults{.duplicate_probability = 1.0});
  Node node("dup", 1);
  node.set_fault_injector(&injector);
  std::atomic<int> deliveries{0};
  std::promise<void> first;
  node.InvokeAsync([] { return 3; }, [&](AsyncResult<int> result) {
    ASSERT_TRUE(result.ok());
    if (deliveries.fetch_add(1) == 0) first.set_value();
  });
  first.get_future().get();
  EXPECT_GT(injector.replies_duplicated(), 0u);
  // The duplicate is delivered (and swallowed) right after the original on
  // the same pool thread; give that second Deliver a moment to land.
  const Micros poll_deadline = MonotonicClock::Instance().NowMicros() + 2'000'000;
  while (injector.duplicates_suppressed() < injector.replies_duplicated() &&
         MonotonicClock::Instance().NowMicros() < poll_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(injector.duplicates_suppressed(), injector.replies_duplicated());
  EXPECT_EQ(deliveries.load(), 1);
}

TEST(NodeFaultTest, DroppedReplyStillRanTheWork) {
  // Reply loss: the side effect happened, the caller only hears the timeout
  // — the asymmetry that makes reply loss nastier than request loss.
  FaultInjector injector(8);
  injector.SetNode("ack-lost", LinkFaults{.reply_drop_probability = 1.0});
  Node node("ack-lost", 1);
  node.set_fault_injector(&injector);
  std::atomic<bool> ran{false};
  std::promise<AsyncResult<void>> delivered;
  node.InvokeAsyncWithTimeout(
      5'000, [&ran] { ran.store(true); },
      [&delivered](AsyncResult<void> result) {
        delivered.set_value(std::move(result));
      });
  const AsyncResult<void> result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsRpcTimeout(result.error));
  EXPECT_TRUE(ran.load());
  EXPECT_GT(injector.replies_dropped(), 0u);
}

TEST(NodeFaultTest, AddedLatencyStretchesTheHop) {
  FaultInjector injector(9);
  injector.SetNode("limpy", LinkFaults{.added_latency_micros = 30'000});
  Node node("limpy", 1);
  node.set_fault_injector(&injector);
  const Micros start = MonotonicClock::Instance().NowMicros();
  node.Invoke([] { return 0; }).get();
  // Two hops (request + reply), each stretched by 30ms.
  EXPECT_GE(MonotonicClock::Instance().NowMicros() - start, 50'000);
}

TEST(NodeFaultTest, InvokeFutureBreaksInsteadOfHanging) {
  // The blocking facade cannot wait forever either: a dropped message with
  // no timeout breaks the promise, surfacing as std::future_error.
  FaultInjector injector(10);
  injector.SetNode("void", LinkFaults{.drop_probability = 1.0});
  Node node("void", 1);
  node.set_fault_injector(&injector);
  auto future = node.Invoke([] { return 1; });
  EXPECT_THROW(future.get(), std::future_error);
}

}  // namespace
}  // namespace jdvs

// Tests for the tiered memory/disk subsystem: v4/v5 snapshot round trips,
// mapped-vs-heap bit-exactness, corruption rejection, the hot-list
// residency cache (hits/misses, clock eviction, pin-wins, io budget), and
// the integrity layer (checksums, quarantine, SIGBUS survival, scrub).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "common/crc32c.h"
#include "index/digest.h"
#include "index/full_index_builder.h"
#include "index/snapshot.h"
#include "net/fault_injector.h"
#include "tier/scrubber.h"
#include "tier/tiered_snapshot.h"
#include "tier/tiered_store.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

class TierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("jdvs_tier_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

struct Built {
  Built() : features(embedder, ExtractionCostModel{.mean_micros = 0}) {
    CatalogGenConfig cg;
    cg.num_products = 120;
    cg.num_categories = 8;
    GenerateCatalog(cg, catalog, images);
    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = 16;
    fc.index_config.nprobe = 4;
    FullIndexBuilder builder(catalog, images, features, fc);
    index = builder.Build(builder.TrainQuantizer());
  }
  SyntheticEmbedder embedder{{.dim = 24, .num_categories = 8, .seed = 2}};
  ProductCatalog catalog;
  ImageStore images;
  FeatureDb features;
  std::unique_ptr<IvfIndex> index;
};

void ExpectSameResults(const std::vector<SearchHit>& a,
                       const std::vector<SearchHit>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_id, b[i].image_id) << what << " rank " << i;
    EXPECT_FLOAT_EQ(a[i].distance, b[i].distance) << what << " rank " << i;
    EXPECT_EQ(a[i].attributes, b[i].attributes) << what << " rank " << i;
    EXPECT_EQ(a[i].image_url, b[i].image_url) << what << " rank " << i;
  }
}

// A clock that advances by `step` micros on every read, so a fault walk
// "costs" a deterministic amount of io-budget time under test.
class SteppingClock final : public Clock {
 public:
  explicit SteppingClock(Micros step) : step_(step) {}
  Micros NowMicros() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed);
  }

 private:
  const Micros step_;
  mutable std::atomic<Micros> now_{0};
};

// ---------------------------------------------------------------------------
// v4 snapshot: round trips, bit-exactness, version ladder, corruption.
// ---------------------------------------------------------------------------

TEST_F(TierTest, MappedLoadIsBitExactAgainstOriginal) {
  Built built;
  built.index->SetProductValidity(5, false);
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path, /*update_hwm=*/17);

  std::uint64_t hwm = 0;
  const auto mapped =
      LoadTieredSnapshot(path, TieredStoreConfig{}, InlineCopyExecutor(), &hwm);
  EXPECT_EQ(hwm, 17u);
  ASSERT_NE(mapped->tiered_store(), nullptr);
  EXPECT_EQ(mapped->size(), built.index->size());
  EXPECT_EQ(mapped->Stats().valid_images, built.index->Stats().valid_images);

  const IndexDigest original = ComputeIndexDigest(*built.index);
  const IndexDigest restored = ComputeIndexDigest(*mapped);
  EXPECT_EQ(original.content_hash, restored.content_hash);
  EXPECT_EQ(original.entries, restored.entries);

  for (ProductId pid = 1; pid <= 30; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query = built.embedder.ExtractQuery(pid, record->category, pid);
    ExpectSameResults(built.index->Search(query, 5),
                      mapped->Search(query, 5), "plain");
  }
  // Filtered search goes through the same frozen scan path.
  FilterExpression filter;
  filter.WithCategoryRange(0, 3).WithMin(FilterField::kSales, 1);
  for (ProductId pid = 1; pid <= 10; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query = built.embedder.ExtractQuery(pid, record->category, pid);
    ExpectSameResults(
        built.index->Search(query, 5, 16, kNoCategoryFilter, filter),
        mapped->Search(query, 5, 16, kNoCategoryFilter, filter), "filtered");
  }
}

TEST_F(TierTest, HeapLoadDispatchesV4AndMatchesMapped) {
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path, /*update_hwm=*/9);

  // The generic loader must recognize version 4 and produce the same index
  // (it copies everything to heap; no tier store attached).
  std::uint64_t hwm = 0;
  const auto heap = LoadIndexSnapshot(path, InlineCopyExecutor(), &hwm);
  EXPECT_EQ(hwm, 9u);
  EXPECT_EQ(heap->tiered_store(), nullptr);

  const auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});
  const IndexDigest heap_digest = ComputeIndexDigest(*heap);
  const IndexDigest mapped_digest = ComputeIndexDigest(*mapped);
  EXPECT_EQ(heap_digest.content_hash, mapped_digest.content_hash);
  EXPECT_EQ(heap_digest.entries, mapped_digest.entries);
  EXPECT_EQ(heap_digest.valid_entries, mapped_digest.valid_entries);

  for (ProductId pid = 1; pid <= 30; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query = built.embedder.ExtractQuery(pid, record->category, pid);
    ExpectSameResults(heap->Search(query, 5), mapped->Search(query, 5),
                      "heap-vs-mapped");
  }
}

TEST_F(TierTest, VersionLadderStillLoads) {
  Built built;
  // v3 (the classic writer) and v4 (tiered) of the same index must load
  // through LoadIndexSnapshot and agree on content.
  const std::string v3 = PathFor("index.v3");
  const std::string v4 = PathFor("index.v4");
  SaveIndexSnapshot(*built.index, v3, /*update_hwm=*/3);
  SaveTieredSnapshot(*built.index, v4, /*update_hwm=*/3);

  const auto from_v3 = LoadIndexSnapshot(v3);
  const auto from_v4 = LoadIndexSnapshot(v4);
  EXPECT_EQ(ComputeIndexDigest(*from_v3).content_hash,
            ComputeIndexDigest(*from_v4).content_hash);
  EXPECT_EQ(from_v3->config().nprobe, from_v4->config().nprobe);
  EXPECT_EQ(from_v3->attribute_filters().ColumnChecksum(),
            from_v4->attribute_filters().ColumnChecksum());
}

TEST_F(TierTest, BudgetedServingIsBitExact) {
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path);

  TieredStoreConfig config;
  const auto unlimited = LoadTieredSnapshot(path, config);
  const std::size_t payload =
      unlimited->tiered_store()->Stats().payload_bytes;
  ASSERT_GT(payload, 0u);
  // Serve the full catalog from ~1/10 of its posting bytes.
  config.resident_bytes_budget = std::max<std::size_t>(1, payload / 10);
  const auto tight = LoadTieredSnapshot(path, config);

  for (int round = 0; round < 3; ++round) {
    for (ProductId pid = 1; pid <= 40; ++pid) {
      const auto record = built.catalog.Get(pid);
      const auto query =
          built.embedder.ExtractQuery(pid, record->category, pid);
      ExpectSameResults(built.index->Search(query, 10),
                        tight->Search(query, 10), "budgeted");
    }
  }
  const TieredStoreStats stats = tight->tiered_store()->Stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.resident_lists, stats.num_lists);
  EXPECT_EQ(stats.probes_dropped, 0u);  // unlimited io budget in this test
}

TEST_F(TierTest, MappedIndexAcceptsNewWrites) {
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path);
  auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});

  const auto before = ComputeIndexDigest(*mapped);
  const auto feature = built.embedder.Extract({"tier-new-image", 999, 3});
  mapped->AddImage("tier-new-image", 999, 3, {.sales = 1}, "", feature);
  const auto hits = mapped->Search(feature, 1, /*nprobe=*/16);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].product_id, 999u);
  // The frozen prefix is untouched: removing nothing, digest grew by the
  // delta only (entry count +1).
  EXPECT_EQ(ComputeIndexDigest(*mapped).entries, before.entries + 1);
}

TEST_F(TierTest, TruncatedV4Throws) {
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path);
  const auto size = std::filesystem::file_size(path);

  // Cut mid-payload: the directory promises extents past EOF.
  std::filesystem::resize_file(path, size * 6 / 10);
  EXPECT_THROW(LoadTieredSnapshot(path, TieredStoreConfig{}), SnapshotError);
  EXPECT_THROW(LoadIndexSnapshot(path), SnapshotError);

  // Cut mid-head: the directory/verification stream itself is truncated.
  std::filesystem::resize_file(path, 100);
  EXPECT_THROW(LoadTieredSnapshot(path, TieredStoreConfig{}), SnapshotError);

  // Cut mid-prefix.
  std::filesystem::resize_file(path, 12);
  EXPECT_THROW(LoadTieredSnapshot(path, TieredStoreConfig{}), SnapshotError);
}

TEST_F(TierTest, CorruptDirectoryThrows) {
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path);

  // payload_base lives at offset 20 (magic + version + hwm); forcing its low
  // byte to an odd value breaks the 64-byte alignment invariant.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    const char bad = 0x01;
    f.write(&bad, 1);
  }
  EXPECT_THROW(LoadTieredSnapshot(path, TieredStoreConfig{}), SnapshotError);
  EXPECT_THROW(LoadIndexSnapshot(path), SnapshotError);
}

TEST_F(TierTest, NotAV4FileThrowsFromTieredLoader) {
  Built built;
  const std::string v3 = PathFor("index.v3");
  SaveIndexSnapshot(*built.index, v3);
  EXPECT_THROW(LoadTieredSnapshot(v3, TieredStoreConfig{}), SnapshotError);
  EXPECT_THROW(LoadTieredSnapshot(PathFor("missing"), TieredStoreConfig{}),
               SnapshotError);
}

// ---------------------------------------------------------------------------
// TieredListStore unit tests over a synthetic payload file.
// ---------------------------------------------------------------------------

constexpr std::size_t kSynListBytes = 8192;

// Writes `num_lists` segments of kSynListBytes, each filled with a
// per-list marker byte, 64-byte aligned (page-sized, so trivially aligned).
std::vector<TieredListStore::ListExtent> WriteSyntheticPayload(
    const std::string& path, std::size_t num_lists) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  std::vector<TieredListStore::ListExtent> extents;
  for (std::size_t i = 0; i < num_lists; ++i) {
    const std::string fill(kSynListBytes, static_cast<char>(i * 17 + 1));
    extents.push_back({i * kSynListBytes, kSynListBytes});
    os.write(fill.data(), static_cast<std::streamsize>(fill.size()));
  }
  return extents;
}

struct SynStore {
  SynStore(const std::string& path, std::size_t num_lists,
           std::size_t budget_lists, const Clock* clock = nullptr)
      : extents(WriteSyntheticPayload(path, num_lists)) {
    TieredStoreConfig config;
    config.resident_bytes_budget = budget_lists * kSynListBytes;
    config.registry = &registry;
    config.clock = clock;
    store = std::make_unique<TieredListStore>(MmapFile::Open(path),
                                              std::move(extents), config);
  }
  obs::Registry registry;
  std::vector<TieredListStore::ListExtent> extents;
  std::unique_ptr<TieredListStore> store;
};

TEST_F(TierTest, StoreHitMissEvictAccounting) {
  SynStore syn(PathFor("payload.bin"), /*num_lists=*/6, /*budget_lists=*/2);
  TieredListStore& store = *syn.store;

  const std::uint32_t first[] = {0, 1};
  {
    const auto guard = store.Pin(first, /*io_budget_micros=*/0, nullptr);
    EXPECT_EQ(guard.num_pinned(), 2u);
  }
  TieredStoreStats s = store.Stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.resident_bytes, 2 * kSynListBytes);

  {  // Re-pinning resident lists is a hit, no eviction.
    const auto guard = store.Pin(first, 0, nullptr);
    EXPECT_EQ(guard.num_pinned(), 2u);
  }
  s = store.Stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.evictions, 0u);

  {  // A third list over a two-list budget evicts.
    const std::uint32_t third[] = {2};
    const auto guard = store.Pin(third, 0, nullptr);
    EXPECT_EQ(guard.num_pinned(), 1u);
  }
  s = store.Stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, 2 * kSynListBytes);
}

TEST_F(TierTest, PinWinsOverEviction) {
  SynStore syn(PathFor("payload.bin"), /*num_lists=*/4, /*budget_lists=*/1);
  TieredListStore& store = *syn.store;

  const std::uint32_t a[] = {0};
  const std::uint32_t b[] = {1};
  auto guard_a = store.Pin(a, 0, nullptr);
  // List 0 is pinned: admitting list 1 cannot evict it, so the budget is
  // overshot rather than the pin broken.
  auto guard_b = store.Pin(b, 0, nullptr);
  EXPECT_EQ(guard_a.num_pinned(), 1u);
  EXPECT_EQ(guard_b.num_pinned(), 1u);
  TieredStoreStats s = store.Stats();
  EXPECT_EQ(s.resident_bytes, 2 * kSynListBytes);
  EXPECT_EQ(s.evictions, 0u);

  // Release list 0; the next admission can now evict it (list 1 stays
  // pinned), bringing residency back under budget.
  guard_a = TieredListStore::PinGuard();
  const std::uint32_t c[] = {2};
  const auto guard_c = store.Pin(c, 0, nullptr);
  s = store.Stats();
  EXPECT_GE(s.evictions, 1u);
  {  // List 1 must still be resident: pin wins.
    const auto again = store.Pin(b, 0, nullptr);
    EXPECT_EQ(store.Stats().hits, s.hits + 1);
  }
}

TEST_F(TierTest, IoBudgetDropsColdProbesButServesFirst) {
  // Every fault "costs" 100us on the stepping clock. With a 50us budget the
  // first cold list is still served (degraded answers need one probe), and
  // the remaining cold probes are dropped.
  SteppingClock clock(100);
  SynStore syn(PathFor("payload.bin"), /*num_lists=*/8, /*budget_lists=*/0,
               &clock);
  TieredListStore& store = *syn.store;

  TierScanStats stats;
  const std::uint32_t probes[] = {3, 4, 5, 6};
  {
    const auto guard = store.Pin(probes, /*io_budget_micros=*/50, &stats);
    EXPECT_EQ(guard.num_pinned(), 1u);
  }
  EXPECT_EQ(stats.lists_faulted, 1u);
  EXPECT_EQ(stats.probes_dropped, 3u);
  EXPECT_GE(stats.fault_micros, 100);
  EXPECT_EQ(store.Stats().probes_dropped, 3u);

  // Once the lists are warm, the same budget serves everything as hits.
  {
    const auto warm = store.Pin(probes, /*io_budget_micros=*/0, nullptr);
    EXPECT_EQ(warm.num_pinned(), 4u);
  }
  TierScanStats warm_stats;
  {
    const auto guard = store.Pin(probes, /*io_budget_micros=*/50, &warm_stats);
    EXPECT_EQ(guard.num_pinned(), 4u);
  }
  EXPECT_EQ(warm_stats.probes_dropped, 0u);
  EXPECT_EQ(warm_stats.lists_hit, 4u);
}

TEST_F(TierTest, ConcurrentPinScanEvictionRace) {
  // Four threads hammer overlapping probe sets over a one-list budget so
  // admissions constantly try to evict what other threads have pinned.
  // Pinned data must always read back intact (TSan guards the store's
  // internal state; eviction itself is only an madvise, never a data hazard).
  SynStore syn(PathFor("payload.bin"), /*num_lists=*/8, /*budget_lists=*/1);
  TieredListStore& store = *syn.store;

  std::atomic<int> bad_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &bad_bytes, t] {
      for (int i = 0; i < 400; ++i) {
        const std::uint32_t probes[] = {
            static_cast<std::uint32_t>((i + t) % 8),
            static_cast<std::uint32_t>((i * 3 + t) % 8),
            static_cast<std::uint32_t>((i * 5 + 2 * t) % 8)};
        const auto guard = store.Pin(probes, 0, nullptr);
        for (std::size_t p = 0; p < guard.num_pinned(); ++p) {
          const auto extent = store.extent(probes[p]);
          const std::uint8_t* data = store.file().data() + extent.offset;
          const auto want = static_cast<std::uint8_t>(probes[p] * 17 + 1);
          if (data[0] != want || data[extent.bytes - 1] != want) {
            bad_bytes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_bytes.load(), 0);
  const TieredStoreStats s = store.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.hits + s.misses, 4u * 400u * 3u);
}

TEST_F(TierTest, ConcurrentSearchOnBudgetedMappedIndex) {
  // End-to-end race: concurrent searches on a mapped index whose store
  // evicts under a tight budget must all match the RAM-resident answers.
  Built built;
  const std::string path = PathFor("index.v4");
  SaveTieredSnapshot(*built.index, path);
  TieredStoreConfig config;
  config.resident_bytes_budget = std::max<std::size_t>(
      1, LoadTieredSnapshot(path, TieredStoreConfig{})
                 ->tiered_store()
                 ->Stats()
                 .payload_bytes /
             10);
  const auto mapped = LoadTieredSnapshot(path, config);

  struct Expected {
    FeatureVector query;
    std::vector<SearchHit> results;
  };
  std::vector<Expected> expected;
  for (ProductId pid = 1; pid <= 24; ++pid) {
    const auto record = built.catalog.Get(pid);
    auto query = built.embedder.ExtractQuery(pid, record->category, pid);
    auto results = built.index->Search(query, 5);
    expected.push_back({std::move(query), std::move(results)});
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const Expected& e = expected[(i * 4 + t) % expected.size()];
        const auto got = mapped->Search(e.query, 5);
        if (got.size() != e.results.size()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t r = 0; r < got.size(); ++r) {
          if (got[r].image_id != e.results[r].image_id ||
              got[r].distance != e.results[r].distance) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(mapped->tiered_store()->Stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Integrity layer: CRC32C, checksummed v5 snapshots, quarantine, SIGBUS
// survival, scrub, storage fault injection.
// ---------------------------------------------------------------------------

TEST_F(TierTest, Crc32cKnownAnswer) {
  // RFC 3720 check value for the Castagnoli polynomial.
  const char* check = "123456789";
  EXPECT_EQ(Crc32c(check, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Incremental == one-shot.
  const std::uint32_t part = Crc32c(check, 4);
  EXPECT_EQ(Crc32c(check + 4, 5, part), Crc32c(check, 9));
}

TEST_F(TierTest, MmapFileTypedErrors) {
  // Zero-length file.
  const std::string empty = PathFor("empty");
  { std::ofstream os(empty, std::ios::binary); }
  EXPECT_THROW(MmapFile::Open(empty), MmapError);
  // Not a regular file (a directory).
  EXPECT_THROW(MmapFile::Open(dir_.string()), MmapError);
  // Missing file.
  EXPECT_THROW(MmapFile::Open(PathFor("missing")), MmapError);
}

TEST_F(TierTest, V5RoundTripCarriesChecksumsAndMatchesV4) {
  Built built;
  const std::string v4 = PathFor("index.v4");
  const std::string v5 = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, v4, /*update_hwm=*/3, /*version=*/4);
  SaveTieredSnapshot(*built.index, v5, /*update_hwm=*/3);

  const auto from_v4 = LoadTieredSnapshot(v4, TieredStoreConfig{});
  const auto from_v5 = LoadTieredSnapshot(v5, TieredStoreConfig{});
  EXPECT_FALSE(from_v4->tiered_store()->has_checksums());
  EXPECT_TRUE(from_v5->tiered_store()->has_checksums());
  EXPECT_EQ(ComputeIndexDigest(*from_v4).content_hash,
            ComputeIndexDigest(*from_v5).content_hash);

  // The generic (heap) loader dispatches v5 too and verifies during copy.
  const auto heap = LoadIndexSnapshot(v5);
  EXPECT_EQ(ComputeIndexDigest(*heap).content_hash,
            ComputeIndexDigest(*from_v5).content_hash);

  // The directory reports matching metadata and the offline verify is clean.
  const TieredDirectoryInfo dir = ReadTieredDirectory(v5);
  EXPECT_EQ(dir.version, 5u);
  EXPECT_TRUE(dir.has_checksums);
  EXPECT_FALSE(ReadTieredDirectory(v4).has_checksums);
  const TieredVerifyResult verify = VerifyTieredSnapshot(v5);
  EXPECT_TRUE(verify.has_checksums);
  EXPECT_GT(verify.checked, 0u);
  EXPECT_TRUE(verify.corrupt_lists.empty());
}

TEST_F(TierTest, FileSizeDisagreeingWithDirectoryRefusesToMap) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);
  // Append garbage: the size no longer matches the directory's last extent.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("xx", 2);
  }
  EXPECT_THROW(LoadTieredSnapshot(path, TieredStoreConfig{}), SnapshotError);
}

#if defined(__linux__) || defined(__APPLE__)
TEST_F(TierTest, SaveRefusesFileMappedByLiveIndex) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);
  {
    // The mapped loader holds a shared flock; rewriting under it must fail.
    const auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});
    EXPECT_THROW(SaveTieredSnapshot(*built.index, path), SnapshotError);
  }
  // Mapping gone, lock released: the rewrite goes through.
  SaveTieredSnapshot(*built.index, path);
  // And the loader refuses a file a live mapping still flocks, from the
  // other side: a concurrent second mapping is fine (shared lock).
  const auto a = LoadTieredSnapshot(path, TieredStoreConfig{});
  const auto b = LoadTieredSnapshot(path, TieredStoreConfig{});
  EXPECT_TRUE(a->tiered_store()->file().locked());
}
#endif

// Flips one bit inside the first non-empty payload segment of `path` and
// returns the victim list.
std::uint32_t CorruptFirstSegment(const std::string& path,
                                  std::uint64_t seed = 42) {
  const TieredDirectoryInfo dir = ReadTieredDirectory(path);
  for (const TieredSegmentInfo& seg : dir.segments) {
    if (seg.bytes == 0) continue;
    EXPECT_TRUE(FaultInjector::FlipBit(path, seg.offset, seg.bytes, seed));
    return seg.list;
  }
  ADD_FAILURE() << "no non-empty segment to corrupt";
  return 0;
}

// image_id -> exact distance over the whole partition: the "never a wrong
// answer" oracle for degraded queries.
std::map<ImageId, float> ExhaustiveDistances(const IvfIndex& index,
                                             FeatureView query) {
  std::map<ImageId, float> truth;
  for (const SearchHit& hit : index.SearchExhaustive(query, index.size())) {
    truth[hit.image_id] = hit.distance;
  }
  return truth;
}

TEST_F(TierTest, BitFlipQuarantinesAtFaultInAndQueriesDegradeCorrectly) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);
  const std::uint32_t victim = CorruptFirstSegment(path);

  const auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});
  TieredListStore& store = *mapped->tiered_store_shared();
  ASSERT_TRUE(store.has_checksums());

  // The heap loader verifies during copy: corrupt file refuses to restore.
  EXPECT_THROW(LoadIndexSnapshot(path), SnapshotError);
  // The offline verifier pins the same list.
  const TieredVerifyResult verify = VerifyTieredSnapshot(path);
  ASSERT_EQ(verify.corrupt_lists.size(), 1u);
  EXPECT_EQ(verify.corrupt_lists[0], victim);

  // Serving: every query completes; the corrupt list is quarantined on its
  // first fault-in and skipped after; no returned distance is ever wrong.
  std::uint32_t degraded_queries = 0;
  for (ProductId pid = 1; pid <= 40; ++pid) {
    const auto record = built.catalog.Get(pid);
    const auto query = built.embedder.ExtractQuery(pid, record->category, pid);
    TierScanStats tstats;
    const auto hits = mapped->Search(query, 5, /*nprobe=*/16,
                                     kNoCategoryFilter, nullptr, nullptr,
                                     /*io_budget_micros=*/0, &tstats);
    if (tstats.lists_quarantined > 0) ++degraded_queries;
    const auto truth = ExhaustiveDistances(*built.index, query);
    for (const SearchHit& hit : hits) {
      const auto it = truth.find(hit.image_id);
      ASSERT_NE(it, truth.end());
      // The IVF scan and the exhaustive oracle accumulate the same distance
      // through different float orderings; a corrupt payload would be off by
      // whole units, not ulps.
      EXPECT_NEAR(hit.distance, it->second, 0.01f);
    }
  }
  EXPECT_GT(degraded_queries, 0u);
  EXPECT_EQ(store.quarantined_lists(), 1u);
  EXPECT_TRUE(store.poisoned(victim));
  const TieredStoreStats stats = store.Stats();
  EXPECT_EQ(stats.quarantine_events, 1u);
  EXPECT_GT(stats.quarantine_skips, 0u);
  // Scrub agrees: the poisoned list is left alone, everything else is ok.
  EXPECT_EQ(store.ScrubList(victim),
            TieredListStore::ScrubStatus::kAlreadyQuarantined);
}

TEST_F(TierTest, ScrubFindsCorruptionBeforeAnyQueryTouchesIt) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);
  const std::uint32_t victim = CorruptFirstSegment(path);

  const auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});
  TieredListStore& store = *mapped->tiered_store_shared();
  // No query has run; the scrub walk discovers the corruption cold.
  bool found = false;
  for (std::uint32_t i = 0; i < store.num_lists(); ++i) {
    const auto status = store.ScrubList(i);
    if (i == victim) {
      EXPECT_EQ(status, TieredListStore::ScrubStatus::kCorrupt);
      found = true;
    } else {
      EXPECT_NE(status, TieredListStore::ScrubStatus::kCorrupt);
      EXPECT_NE(status, TieredListStore::ScrubStatus::kIoError);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(store.poisoned(victim));
  // Queries after the scrub skip the poisoned list without ever faulting it.
  const auto record = built.catalog.Get(1);
  const auto query = built.embedder.ExtractQuery(1, record->category, 1);
  const auto hits = mapped->Search(query, 5, /*nprobe=*/16);
  EXPECT_FALSE(hits.empty());
}

#if defined(__linux__)
TEST_F(TierTest, TruncationBehindMappingSurvivesAsQuarantine) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);

  const auto mapped = LoadTieredSnapshot(path, TieredStoreConfig{});
  TieredListStore& store = *mapped->tiered_store_shared();
  // Find a list whose extent will fall past the truncated EOF.
  const TieredDirectoryInfo dir = ReadTieredDirectory(path);
  const std::uintmax_t cut = std::filesystem::file_size(path) / 2;
  std::uint32_t victim = UINT32_MAX;
  for (const TieredSegmentInfo& seg : dir.segments) {
    if (seg.bytes > 0 && seg.offset + seg.bytes > cut) {
      victim = seg.list;
      break;
    }
  }
  ASSERT_NE(victim, UINT32_MAX);

  // Truncate the file behind the live mapping (an flock is advisory: a
  // hostile actor — or a full disk — does not ask), then force re-faults.
  store.DropResidency();
  std::filesystem::resize_file(path, cut);

  // The guarded fault-in takes the SIGBUS, quarantines, and the query path
  // survives: the pin simply skips the victim.
  TierScanStats stats;
  const std::uint32_t probes[] = {victim};
  {
    const auto guard = store.Pin(probes, 0, &stats);
    EXPECT_EQ(guard.num_pinned(), 0u);
  }
  EXPECT_EQ(stats.lists_quarantined, 1u);
  EXPECT_TRUE(store.poisoned(victim));
  EXPECT_GT(store.Stats().io_errors, 0u);

  // End-to-end: searches still complete (lists before the cut still serve).
  const auto record = built.catalog.Get(1);
  const auto query = built.embedder.ExtractQuery(1, record->category, 1);
  const auto hits = mapped->Search(query, 5, /*nprobe=*/16);
  EXPECT_FALSE(hits.empty());
}
#endif

TEST_F(TierTest, FailNextFaultInInjectsOneQuarantine) {
  Built built;
  const std::string path = PathFor("index.v5");
  SaveTieredSnapshot(*built.index, path);

  FaultInjector injector(7);
  TieredStoreConfig config;
  config.fault_injector = &injector;
  config.node_name = "searcher-under-test";
  const auto mapped = LoadTieredSnapshot(path, config);
  TieredListStore& store = *mapped->tiered_store_shared();

  StorageFaults faults;
  faults.fail_next_fault_in = true;
  injector.SetStorage("searcher-under-test", faults);

  // First cold fault-in fails (one-shot); later fault-ins are clean.
  const auto record = built.catalog.Get(1);
  const auto query = built.embedder.ExtractQuery(1, record->category, 1);
  TierScanStats tstats;
  const auto hits = mapped->Search(query, 5, /*nprobe=*/16, kNoCategoryFilter,
                                   nullptr, nullptr, 0, &tstats);
  EXPECT_FALSE(hits.empty());
  EXPECT_EQ(store.quarantined_lists(), 1u);
  EXPECT_EQ(injector.storage_faults_injected(), 1u);
  EXPECT_GE(tstats.lists_quarantined, 1u);

  // The rest of the store still faults in and serves normally.
  for (ProductId pid = 2; pid <= 10; ++pid) {
    const auto r = built.catalog.Get(pid);
    const auto q = built.embedder.ExtractQuery(pid, r->category, pid);
    EXPECT_FALSE(mapped->Search(q, 5, 16).empty());
  }
  EXPECT_EQ(store.quarantined_lists(), 1u);  // no further poisoning
}

TEST_F(TierTest, ConcurrentScrubAndServingScans) {
  // TSan target: a scrubber walking checksums through pread while serving
  // threads pin/fault/evict the same lists through the mapping.
  const std::string path = PathFor("payload.bin");
  auto extents = WriteSyntheticPayload(path, 8);
  std::vector<std::uint32_t> checksums;
  {
    const MmapFile probe = MmapFile::Open(path);
    for (const auto& extent : extents) {
      checksums.push_back(Crc32c(probe.data() + extent.offset,
                                 static_cast<std::size_t>(extent.bytes)));
    }
  }
  obs::Registry registry;
  TieredStoreConfig config;
  config.resident_bytes_budget = 2 * kSynListBytes;  // constant eviction
  config.registry = &registry;
  auto store = std::make_shared<TieredListStore>(
      MmapFile::Open(path), std::move(extents), std::move(checksums), config);

  TierScrubConfig sc;
  sc.poll_micros = 100;
  sc.lists_per_slice = 8;
  sc.registry = &registry;
  TierScrubber scrubber([&store] { return store; }, sc);
  scrubber.Start();

  std::atomic<int> bad_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&store, &bad_bytes, t] {
      for (int i = 0; i < 300; ++i) {
        const std::uint32_t probes[] = {
            static_cast<std::uint32_t>((i + t) % 8),
            static_cast<std::uint32_t>((i * 5 + 2 * t) % 8)};
        const auto guard = store->Pin(probes, 0, nullptr);
        for (const std::uint32_t list : guard.pinned()) {
          const auto extent = store->extent(list);
          const std::uint8_t* data = store->file().data() + extent.offset;
          const auto want = static_cast<std::uint8_t>(list * 17 + 1);
          if (data[0] != want || data[extent.bytes - 1] != want) {
            bad_bytes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  scrubber.Stop();
  EXPECT_EQ(bad_bytes.load(), 0);
  EXPECT_GT(scrubber.lists_scrubbed(), 0u);
  EXPECT_EQ(scrubber.corrupt_found(), 0u);
  EXPECT_EQ(store->quarantined_lists(), 0u);
}

}  // namespace
}  // namespace jdvs

// Tests for the inverted lists and the Figure 9 lock-free expansion
// protocol, including an explicitly-controlled background copier that lets
// tests hold the system inside the expansion window.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "index/inverted_index.h"

namespace jdvs {
namespace {

// Collects copy tasks and runs them only when told to: freezes the system
// inside the Figure 9 expansion window.
class ManualCopier {
 public:
  CopyExecutor Executor() {
    return [this](std::function<void()> task) {
      tasks_.push_back(std::move(task));
    };
  }
  std::size_t pending() const { return tasks_.size(); }
  void RunAll() {
    for (auto& t : tasks_) t();
    tasks_.clear();
  }

 private:
  std::vector<std::function<void()>> tasks_;
};

TEST(InvertedListTest, AppendAndScan) {
  InvertedList list(8);
  for (LocalId id = 0; id < 5; ++id) list.Append(id);
  EXPECT_EQ(list.VisibleSize(), 5u);
  EXPECT_EQ(list.TotalAppended(), 5u);
  const auto ids = list.SnapshotIds();
  EXPECT_EQ(ids, (std::vector<LocalId>{0, 1, 2, 3, 4}));
}

TEST(InvertedListTest, AuxiliaryPositionTracksLastElement) {
  InvertedList list(16);
  EXPECT_EQ(list.VisibleSize(), 0u);
  list.Append(42);
  EXPECT_EQ(list.VisibleSize(), 1u);  // "position of the last element"
  list.Append(43);
  EXPECT_EQ(list.VisibleSize(), 2u);
}

TEST(InvertedListTest, ExpansionDoublesCapacityAndKeepsAllIds) {
  InvertedList list(4);  // inline copier: expansion completes immediately
  for (LocalId id = 0; id < 100; ++id) list.Append(id);
  list.MaybeFinishExpansion();
  EXPECT_EQ(list.TotalAppended(), 100u);
  EXPECT_EQ(list.VisibleSize(), 100u);
  EXPECT_GE(list.VisibleCapacity(), 100u);
  // Doubling from 4: capacities 4,8,16,32,64,128 -> 5 expansions.
  EXPECT_EQ(list.expansions(), 5u);
  const auto ids = list.SnapshotIds();
  for (LocalId id = 0; id < 100; ++id) EXPECT_EQ(ids[id], id);
}

TEST(InvertedListTest, OldListServesReadsDuringExpansionWindow) {
  ManualCopier copier;
  InvertedList list(4, copier.Executor());
  for (LocalId id = 0; id < 4; ++id) list.Append(id);
  EXPECT_EQ(list.VisibleSize(), 4u);
  EXPECT_FALSE(list.expanding());

  // The 5th append triggers expansion; the copy is withheld.
  list.Append(4);
  EXPECT_TRUE(list.expanding());
  EXPECT_EQ(copier.pending(), 1u);
  // "The current inverted list continues to serve the requests": readers see
  // the old (full) list only.
  EXPECT_EQ(list.VisibleSize(), 4u);
  EXPECT_EQ(list.SnapshotIds(), (std::vector<LocalId>{0, 1, 2, 3}));
  EXPECT_EQ(list.TotalAppended(), 5u);

  // More appends during the window accumulate in the new list.
  list.Append(5);
  list.Append(6);
  EXPECT_EQ(list.VisibleSize(), 4u);

  // Copy completes; the next writer action performs the swap.
  copier.RunAll();
  list.MaybeFinishExpansion();
  EXPECT_FALSE(list.expanding());
  EXPECT_EQ(list.VisibleSize(), 7u);
  EXPECT_EQ(list.VisibleCapacity(), 8u);
  EXPECT_EQ(list.SnapshotIds(), (std::vector<LocalId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(InvertedListTest, SwapHappensOnNextAppendWithoutExplicitFinish) {
  ManualCopier copier;
  InvertedList list(2, copier.Executor());
  list.Append(0);
  list.Append(1);
  list.Append(2);  // expansion starts
  copier.RunAll();
  list.Append(3);  // writer notices copy done, swaps, then appends
  EXPECT_EQ(list.SnapshotIds(), (std::vector<LocalId>{0, 1, 2, 3}));
}

TEST(InvertedListTest, BurstFillingNewListBlocksUntilCopyDone) {
  // Pathological: the doubled list fills before the copy lands. The writer
  // must wait for the copy, swap, and re-expand without losing ids.
  ThreadPool pool(1, "copier");
  InvertedList list(2, PoolCopyExecutor(pool));
  for (LocalId id = 0; id < 1000; ++id) list.Append(id);
  list.MaybeFinishExpansion();
  // Wait for any trailing copy, then finish.
  for (int i = 0; i < 100 && list.expanding(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    list.MaybeFinishExpansion();
  }
  EXPECT_EQ(list.TotalAppended(), 1000u);
  EXPECT_EQ(list.VisibleSize(), 1000u);
  const auto ids = list.SnapshotIds();
  for (LocalId id = 0; id < 1000; ++id) EXPECT_EQ(ids[id], id);
}

TEST(InvertedListTest, ReadersNeverSeePartialOrReorderedPrefix) {
  // Single writer appends 0..N; concurrent readers must always observe a
  // prefix of the sequence (lock-free publication correctness), across many
  // expansions.
  ThreadPool pool(2, "copier");
  InvertedList list(8, PoolCopyExecutor(pool));
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        LocalId expected = 0;
        bool ok = true;
        list.Scan([&](LocalId id) {
          if (id != expected) ok = false;
          ++expected;
        });
        if (!ok) anomalies.fetch_add(1);
      }
    });
  }
  for (LocalId id = 0; id < 200000; ++id) list.Append(id);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(InvertedListTest, ExpansionCountMatchesDoublings) {
  InvertedList list(1);
  list.Append(0);
  EXPECT_EQ(list.expansions(), 0u);
  list.Append(1);  // 1 -> 2
  list.MaybeFinishExpansion();
  EXPECT_EQ(list.expansions(), 1u);
  list.Append(2);  // 2 -> 4
  list.MaybeFinishExpansion();
  EXPECT_EQ(list.expansions(), 2u);
}

TEST(LockedInvertedListTest, SameObservableBehaviour) {
  LockedInvertedList list(4);
  for (LocalId id = 0; id < 100; ++id) list.Append(id);
  EXPECT_EQ(list.VisibleSize(), 100u);
  const auto ids = list.SnapshotIds();
  for (LocalId id = 0; id < 100; ++id) EXPECT_EQ(ids[id], id);
  LocalId expected = 0;
  list.Scan([&](LocalId id) { EXPECT_EQ(id, expected++); });
}

TEST(LockedInvertedListTest, ConcurrentAppendScan) {
  LockedInvertedList list;
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread reader([&] {
    while (!stop.load()) {
      LocalId expected = 0;
      list.Scan([&](LocalId id) {
        if (id != expected++) anomalies.fetch_add(1);
      });
    }
  });
  for (LocalId id = 0; id < 50000; ++id) list.Append(id);
  stop.store(true);
  reader.join();
  EXPECT_EQ(anomalies.load(), 0);
}

}  // namespace
}  // namespace jdvs

// Tests for the sharded KV store (the feature-dedup substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kvstore.h"

namespace jdvs {
namespace {

TEST(ShardIndexTest, StableAndInRange) {
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::size_t shard = ShardIndexFor(key, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, ShardIndexFor(key, 16));
  }
  EXPECT_EQ(ShardIndexFor("anything", 1), 0u);
  EXPECT_EQ(ShardIndexFor("anything", 0), 0u);
}

TEST(ShardIndexTest, ReasonablyBalanced) {
  constexpr std::size_t kShards = 8;
  std::vector<int> counts(kShards, 0);
  constexpr int kKeys = 80000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ShardIndexFor("jd://img/" + std::to_string(i) + "/0", kShards)];
  }
  const int expected = kKeys / kShards;
  for (const int c : counts) {
    EXPECT_GT(c, expected / 2);
    EXPECT_LT(c, expected * 2);
  }
}

TEST(KvStoreTest, PutGetRoundTrip) {
  ShardedKvStore<int> store(4);
  store.Put("a", 1);
  store.Put("b", 2);
  EXPECT_EQ(store.Get("a").value(), 1);
  EXPECT_EQ(store.Get("b").value(), 2);
  EXPECT_FALSE(store.Get("c").has_value());
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStoreTest, PutOverwrites) {
  ShardedKvStore<int> store(4);
  store.Put("a", 1);
  store.Put("a", 9);
  EXPECT_EQ(store.Get("a").value(), 9);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, PutIfAbsentKeepsFirst) {
  ShardedKvStore<int> store(4);
  EXPECT_TRUE(store.PutIfAbsent("a", 1));
  EXPECT_FALSE(store.PutIfAbsent("a", 2));
  EXPECT_EQ(store.Get("a").value(), 1);
}

TEST(KvStoreTest, EraseRemoves) {
  ShardedKvStore<int> store(4);
  store.Put("a", 1);
  EXPECT_TRUE(store.Erase("a"));
  EXPECT_FALSE(store.Erase("a"));
  EXPECT_FALSE(store.Contains("a"));
}

TEST(KvStoreTest, GetOrComputeCachesResult) {
  ShardedKvStore<int> store(4);
  int calls = 0;
  const auto compute = [&calls] {
    ++calls;
    return 42;
  };
  EXPECT_EQ(store.GetOrCompute("k", compute), 42);
  EXPECT_EQ(store.GetOrCompute("k", compute), 42);
  EXPECT_EQ(calls, 1);
}

TEST(KvStoreTest, StatsCountHitsAndMisses) {
  ShardedKvStore<int> store(4);
  store.Put("a", 1);
  (void)store.Get("a");
  (void)store.Get("a");
  (void)store.Get("missing");
  const KvStoreStats stats = store.stats();
  EXPECT_EQ(stats.gets, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_NEAR(stats.HitRate(), 2.0 / 3.0, 1e-9);
  store.ResetStats();
  EXPECT_EQ(store.stats().gets, 0u);
}

TEST(KvStoreTest, ConcurrentMixedOperations) {
  ShardedKvStore<std::string> store(16);
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i);
        store.Put(key, key);
        const auto value = store.Get(key);
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, key);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(),
            static_cast<std::size_t>(kThreads * kKeysPerThread));
}

TEST(KvStoreTest, ConcurrentGetOrComputeSingleValue) {
  ShardedKvStore<int> store(8);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const int got = store.GetOrCompute("shared", [&] {
        computes.fetch_add(1);
        return 7;
      });
      if (got != 7) mismatches.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.Get("shared").value(), 7);
}

}  // namespace
}  // namespace jdvs

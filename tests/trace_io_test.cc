// Tests for trace file persistence and replay, plus span-tree edge cases:
// the tooling that renders or analyzes span trees (TraceSink::Render,
// ComputeCriticalPath) must degrade gracefully on malformed input — orphan
// spans, out-of-order finishes, duplicate span ids, cycles — because a
// lossy fabric and capacity-bounded sink can produce all of them.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/critical_path.h"
#include "obs/trace.h"
#include "workload/catalog_gen.h"
#include "workload/trace_io.h"

namespace jdvs {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jdvs_trace_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

std::vector<TraceEvent> GenerateSample(std::uint64_t messages = 500) {
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 200;
  cg.initial_off_market_fraction = 0.2;
  GenerateCatalog(cg, catalog, images);
  DayTraceConfig tc;
  tc.total_messages = messages;
  std::vector<TraceEvent> events;
  DayTraceGenerator(tc, catalog).Generate([&](const TraceEvent& e) {
    events.push_back(e);
  });
  return events;
}

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const auto events = GenerateSample();
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    writer.Close();
    EXPECT_EQ(writer.events_written(), events.size());
  }
  std::vector<TraceEvent> replayed;
  const auto count = ReplayTraceFile(path_, [&](const TraceEvent& e) {
    replayed.push_back(e);
  });
  ASSERT_EQ(count, events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(replayed[i].hour, events[i].hour);
    const auto& a = events[i].message;
    const auto& b = replayed[i].message;
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.product_id, b.product_id);
    EXPECT_EQ(a.category_id, b.category_id);
    EXPECT_EQ(a.attributes, b.attributes);
    EXPECT_EQ(a.detail_url, b.detail_url);
    EXPECT_EQ(a.timestamp_micros, b.timestamp_micros);
    EXPECT_EQ(a.image_urls, b.image_urls);
  }
}

TEST_F(TraceIoTest, DestructorFinalizesHeader) {
  const auto events = GenerateSample(50);
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    // No explicit Close(): destructor must patch the count.
  }
  std::uint64_t count = 0;
  ReplayTraceFile(path_, [&](const TraceEvent&) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  {
    TraceWriter writer(path_);
    writer.Close();
  }
  EXPECT_EQ(ReplayTraceFile(path_, [](const TraceEvent&) {}), 0u);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(ReplayTraceFile("/nonexistent/trace.bin",
                               [](const TraceEvent&) {}),
               TraceIoError);
}

TEST_F(TraceIoTest, GarbageFileThrows) {
  std::ofstream(path_, std::ios::binary) << "not a trace";
  EXPECT_THROW(ReplayTraceFile(path_, [](const TraceEvent&) {}),
               TraceIoError);
}

TEST_F(TraceIoTest, TruncatedFileThrows) {
  const auto events = GenerateSample(100);
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    writer.Close();
  }
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - size / 4);
  EXPECT_THROW(ReplayTraceFile(path_, [](const TraceEvent&) {}),
               TraceIoError);
}

// ---- Span-tree edge cases ----

obs::SpanRecord MakeSpan(std::uint64_t span_id, std::uint64_t parent,
                         const char* name, Micros start, Micros end) {
  obs::SpanRecord span;
  span.trace_id = 0x42;
  span.span_id = span_id;
  span.parent_span_id = parent;
  span.name = name;
  span.start_micros = start;
  span.end_micros = end;
  return span;
}

TEST(SpanTreeEdgeCaseTest, OrphanSpanRendersAtRoot) {
  obs::TraceSink sink;
  sink.Record(MakeSpan(1, 0, "query", 0, 1000));
  // Parent 99 was dropped by the capacity bound: render at the root.
  sink.Record(MakeSpan(2, 99, "searcher.scan", 100, 400));
  const std::string tree = sink.Render(0x42);
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("searcher.scan"), std::string::npos);

  const auto report =
      obs::ComputeCriticalPath(sink.SpansFor(0x42));
  EXPECT_FALSE(report.empty());
  EXPECT_GT(report.total_micros, 0);
}

TEST(SpanTreeEdgeCaseTest, OutOfOrderFinishTimes) {
  obs::TraceSink sink;
  // Child finishes *after* its parent (hedge straggler whose reply lost).
  sink.Record(MakeSpan(1, 0, "query", 0, 500));
  sink.Record(MakeSpan(2, 1, "searcher.scan", 100, 900));
  EXPECT_NE(sink.Render(0x42).find("searcher.scan"), std::string::npos);
  const auto report = obs::ComputeCriticalPath(sink.SpansFor(0x42));
  Micros total = 0;
  for (const auto& segment : report.segments) {
    EXPECT_GE(segment.micros, 0);
    total += segment.micros;
  }
  EXPECT_EQ(total, 500);  // clamped to the root's window
}

TEST(SpanTreeEdgeCaseTest, DuplicateSpanIds) {
  obs::TraceSink sink;
  sink.Record(MakeSpan(1, 0, "query", 0, 1000));
  // Two children with the same span id (id collision across tiers).
  sink.Record(MakeSpan(2, 1, "scan-a", 100, 400));
  sink.Record(MakeSpan(2, 1, "scan-b", 100, 600));
  const std::string tree = sink.Render(0x42);
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_FALSE(obs::ComputeCriticalPath(sink.SpansFor(0x42)).empty());
}

TEST(SpanTreeEdgeCaseTest, SelfParentAndCycles) {
  obs::TraceSink sink;
  sink.Record(MakeSpan(1, 1, "self", 0, 100));  // self-parent
  EXPECT_FALSE(sink.Render(0x42).empty());

  obs::TraceSink cycle_sink;
  cycle_sink.Record(MakeSpan(1, 2, "a", 0, 100));  // 2-cycle
  cycle_sink.Record(MakeSpan(2, 1, "b", 10, 90));
  const std::string tree = cycle_sink.Render(0x42);
  EXPECT_FALSE(tree.empty());
  EXPECT_NE(tree.find("a"), std::string::npos);
  EXPECT_FALSE(
      obs::ComputeCriticalPath(cycle_sink.SpansFor(0x42)).empty());
}

TEST(SpanTreeEdgeCaseTest, DeepChainHitsDepthCap) {
  obs::TraceSink sink;
  // 200-deep parent chain: rendering must cap, not overflow the stack.
  for (std::uint64_t i = 1; i <= 200; ++i) {
    sink.Record(MakeSpan(i, i - 1, "hop", static_cast<Micros>(i),
                         static_cast<Micros>(1000 - i)));
  }
  const std::string tree = sink.Render(0x42);
  EXPECT_NE(tree.find("(depth cap)"), std::string::npos);
  EXPECT_FALSE(obs::ComputeCriticalPath(sink.SpansFor(0x42)).empty());
}

}  // namespace
}  // namespace jdvs

// Tests for trace file persistence and replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "workload/catalog_gen.h"
#include "workload/trace_io.h"

namespace jdvs {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("jdvs_trace_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

std::vector<TraceEvent> GenerateSample(std::uint64_t messages = 500) {
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 200;
  cg.initial_off_market_fraction = 0.2;
  GenerateCatalog(cg, catalog, images);
  DayTraceConfig tc;
  tc.total_messages = messages;
  std::vector<TraceEvent> events;
  DayTraceGenerator(tc, catalog).Generate([&](const TraceEvent& e) {
    events.push_back(e);
  });
  return events;
}

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const auto events = GenerateSample();
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    writer.Close();
    EXPECT_EQ(writer.events_written(), events.size());
  }
  std::vector<TraceEvent> replayed;
  const auto count = ReplayTraceFile(path_, [&](const TraceEvent& e) {
    replayed.push_back(e);
  });
  ASSERT_EQ(count, events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(replayed[i].hour, events[i].hour);
    const auto& a = events[i].message;
    const auto& b = replayed[i].message;
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.product_id, b.product_id);
    EXPECT_EQ(a.category_id, b.category_id);
    EXPECT_EQ(a.attributes, b.attributes);
    EXPECT_EQ(a.detail_url, b.detail_url);
    EXPECT_EQ(a.timestamp_micros, b.timestamp_micros);
    EXPECT_EQ(a.image_urls, b.image_urls);
  }
}

TEST_F(TraceIoTest, DestructorFinalizesHeader) {
  const auto events = GenerateSample(50);
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    // No explicit Close(): destructor must patch the count.
  }
  std::uint64_t count = 0;
  ReplayTraceFile(path_, [&](const TraceEvent&) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  {
    TraceWriter writer(path_);
    writer.Close();
  }
  EXPECT_EQ(ReplayTraceFile(path_, [](const TraceEvent&) {}), 0u);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(ReplayTraceFile("/nonexistent/trace.bin",
                               [](const TraceEvent&) {}),
               TraceIoError);
}

TEST_F(TraceIoTest, GarbageFileThrows) {
  std::ofstream(path_, std::ios::binary) << "not a trace";
  EXPECT_THROW(ReplayTraceFile(path_, [](const TraceEvent&) {}),
               TraceIoError);
}

TEST_F(TraceIoTest, TruncatedFileThrows) {
  const auto events = GenerateSample(100);
  {
    TraceWriter writer(path_);
    for (const auto& e : events) writer.Write(e);
    writer.Close();
  }
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - size / 4);
  EXPECT_THROW(ReplayTraceFile(path_, [](const TraceEvent&) {}),
               TraceIoError);
}

}  // namespace
}  // namespace jdvs

// Tests for the forward index: the paper's "custom array" with fixed-length
// atomic numeric fields and offset-referenced variable-length attributes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "index/forward_index.h"

namespace jdvs {
namespace {

TEST(AppendOnlyBufferTest, RoundTrip) {
  AppendOnlyBuffer buffer(64);
  const auto ref = buffer.Append("hello");
  EXPECT_EQ(buffer.View(ref), "hello");
}

TEST(AppendOnlyBufferTest, EmptyStringIsEmptyRef) {
  AppendOnlyBuffer buffer(64);
  EXPECT_EQ(buffer.Append(""), AppendOnlyBuffer::kEmptyRef);
  EXPECT_EQ(buffer.View(AppendOnlyBuffer::kEmptyRef), "");
}

TEST(AppendOnlyBufferTest, OffsetZeroDistinguishedFromEmpty) {
  AppendOnlyBuffer buffer(64);
  const auto first = buffer.Append("x");  // stored at global offset 0
  EXPECT_NE(first, AppendOnlyBuffer::kEmptyRef);
  EXPECT_EQ(buffer.View(first), "x");
}

TEST(AppendOnlyBufferTest, StringsNeverStraddleChunks) {
  AppendOnlyBuffer buffer(16);
  std::vector<std::uint64_t> refs;
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back("value-" + std::to_string(i));  // 7-9 bytes
    refs.push_back(buffer.Append(values.back()));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(buffer.View(refs[i]), values[i]);
  }
}

TEST(AppendOnlyBufferTest, OldRefsSurviveLaterAppends) {
  AppendOnlyBuffer buffer(32);
  const auto ref = buffer.Append("stable");
  for (int i = 0; i < 1000; ++i) buffer.Append("filler-" + std::to_string(i));
  EXPECT_EQ(buffer.View(ref), "stable");
}

ProductAttributes Attrs(std::uint64_t sales, std::uint64_t price,
                        std::uint64_t praise) {
  return {.sales = sales, .price_cents = price, .praise = praise};
}

TEST(ForwardIndexTest, AppendAssignsSequentialIds) {
  ForwardIndex index;
  EXPECT_EQ(index.Append(100, 1, 2, Attrs(1, 2, 3), "u0", "d0"), 0u);
  EXPECT_EQ(index.Append(101, 1, 2, Attrs(1, 2, 3), "u1", "d1"), 1u);
  EXPECT_EQ(index.size(), 2u);
}

TEST(ForwardIndexTest, SnapshotRoundTrip) {
  ForwardIndex index;
  const LocalId id =
      index.Append(424242, 7, 3, Attrs(10, 20, 30), "jd://img/7/0", "jd://item/7");
  const AttributeSnapshot snapshot = index.Get(id);
  EXPECT_EQ(snapshot.image_id, 424242u);
  EXPECT_EQ(snapshot.product_id, 7u);
  EXPECT_EQ(snapshot.category, 3u);
  EXPECT_EQ(snapshot.attributes.sales, 10u);
  EXPECT_EQ(snapshot.attributes.price_cents, 20u);
  EXPECT_EQ(snapshot.attributes.praise, 30u);
  EXPECT_EQ(snapshot.image_url, "jd://img/7/0");
  EXPECT_EQ(snapshot.detail_url, "jd://item/7");
}

TEST(ForwardIndexTest, UpdateNumericVisibleImmediately) {
  ForwardIndex index;
  const LocalId id = index.Append(1, 1, 1, Attrs(1, 1, 1), "u", "d");
  index.UpdateNumeric(id, Attrs(100, 200, 300));
  const AttributeSnapshot snapshot = index.Get(id);
  EXPECT_EQ(snapshot.attributes.sales, 100u);
  EXPECT_EQ(snapshot.attributes.price_cents, 200u);
  EXPECT_EQ(snapshot.attributes.praise, 300u);
}

TEST(ForwardIndexTest, UpdateDetailUrlSwapsOffset) {
  ForwardIndex index;
  const LocalId id = index.Append(1, 1, 1, Attrs(1, 1, 1), "u", "old");
  index.UpdateDetailUrl(id, "new-and-longer-url");
  EXPECT_EQ(index.Get(id).detail_url, "new-and-longer-url");
  // The image URL is untouched.
  EXPECT_EQ(index.ImageUrl(id), "u");
}

class ForwardIndexSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForwardIndexSizeTest, ManyEntriesAcrossChunks) {
  const std::size_t n = GetParam();
  ForwardIndex index(/*chunk_entries=*/64);  // force many chunks
  for (std::size_t i = 0; i < n; ++i) {
    index.Append(i, i / 3, static_cast<CategoryId>(i % 5),
                 Attrs(i, i * 2, i * 3), "url-" + std::to_string(i),
                 "detail-" + std::to_string(i));
  }
  ASSERT_EQ(index.size(), n);
  for (std::size_t i = 0; i < n; i += 7) {
    const AttributeSnapshot s = index.Get(static_cast<LocalId>(i));
    EXPECT_EQ(s.image_id, i);
    EXPECT_EQ(s.product_id, i / 3);
    EXPECT_EQ(s.attributes.sales, i);
    EXPECT_EQ(s.image_url, "url-" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForwardIndexSizeTest,
                         ::testing::Values(1, 63, 64, 65, 1000, 10000));

TEST(ForwardIndexTest, ProductOf) {
  ForwardIndex index;
  const LocalId id = index.Append(1, 99, 1, Attrs(0, 0, 0), "u", "");
  EXPECT_EQ(index.ProductOf(id), 99u);
}

TEST(ForwardIndexTest, ConcurrentReadersDuringAppendsAndUpdates) {
  ForwardIndex index(/*chunk_entries=*/128);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  // Invariant maintained by the writer: sales == praise for every entry at
  // all times (updated with two separate atomic stores, but both fields are
  // written with the same value, so readers must never see a value pair from
  // different generations *with different magnitudes* beyond one transition;
  // we check the coarser invariant sales/praise within one generation gap).
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::size_t n = index.size();
        for (std::size_t i = 0; i < n; i += 17) {
          const auto s = index.Get(static_cast<LocalId>(i));
          // URL must never be torn: it is always "url-<image_id>".
          if (s.image_url != "url-" + std::to_string(s.image_id)) {
            anomalies.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::size_t i = 0; i < 20000; ++i) {
    const LocalId id = index.Append(i, i, 0, Attrs(i, i, i),
                                    "url-" + std::to_string(i), "");
    if (i % 3 == 0 && id > 0) {
      index.UpdateNumeric(id - 1, Attrs(i, i, i));
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0);
}

}  // namespace
}  // namespace jdvs

// End-to-end integration tests over the full VisualSearchCluster: the
// Figure 1 system with all three tiers, real-time indexing via the message
// queue, full-index rebuilds under live traffic, and failure injection.
#include <gtest/gtest.h>

#include <memory>

#include "search/cluster_builder.h"
#include "workload/catalog_gen.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_partitions = 4;
  config.replicas_per_partition = 1;
  config.num_brokers = 2;
  config.num_blenders = 2;
  config.searcher_threads = 1;
  config.broker_threads = 2;
  config.blender_threads = 2;
  config.embedder = {.dim = 16, .num_categories = 8, .seed = 5};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.training_sample = 512;
  config.ivf.nprobe = 8;
  config.build_threads = 4;
  return config;
}

std::unique_ptr<VisualSearchCluster> MakeCluster(
    ClusterConfig config = SmallConfig(), std::size_t products = 200) {
  auto cluster = std::make_unique<VisualSearchCluster>(config);
  CatalogGenConfig cg;
  cg.num_products = products;
  cg.num_categories = config.embedder.num_categories;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

QueryImage QueryFor(VisualSearchCluster& cluster, ProductId id,
                    std::uint64_t seed = 1) {
  const auto record = cluster.catalog().Get(id);
  EXPECT_TRUE(record.has_value());
  return QueryImage{id, record->category, seed};
}

ProductUpdateMessage AddMessage(ProductId id, CategoryId category,
                                std::uint32_t images) {
  ProductUpdateMessage m;
  m.type = UpdateType::kAddProduct;
  m.product_id = id;
  m.category_id = category;
  m.attributes = {.sales = 3, .price_cents = 900, .praise = 1};
  for (std::uint32_t k = 0; k < images; ++k) {
    m.image_urls.push_back(MakeImageUrl(id, k));
  }
  return m;
}

TEST(ClusterIntegrationTest, QueryFindsSubjectProduct) {
  auto cluster = MakeCluster();
  int found = 0;
  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    const ProductId target = 1 + (q * 7) % 200;
    const auto response = cluster->Query(QueryFor(*cluster, target, q));
    ASSERT_FALSE(response.results.empty());
    for (const auto& r : response.results) {
      if (r.hit.product_id == target) {
        ++found;
        break;
      }
    }
  }
  // The synthetic embedding separates products well; expect near-perfect.
  EXPECT_GE(found, kQueries - 2);
}

TEST(ClusterIntegrationTest, AllPartitionsServeData) {
  auto cluster = MakeCluster();
  const auto stats = cluster->AggregateIndexStats();
  EXPECT_GT(stats.total_images, 0u);
  EXPECT_EQ(stats.total_images, stats.valid_images);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_GT(cluster->searcher(p).index_stats().total_images, 0u)
        << "partition " << p << " is empty";
  }
}

TEST(ClusterIntegrationTest, RealTimeAdditionIsImmediatelySearchable) {
  auto cluster = MakeCluster();
  // Data freshness: publish an addition, drain, query.
  cluster->PublishUpdate(AddMessage(9001, 3, 4));
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());
  const auto response = cluster->Query(QueryImage{9001, 3, 77});
  ASSERT_FALSE(response.results.empty());
  EXPECT_EQ(response.results[0].hit.product_id, 9001u);
  const auto counters = cluster->TotalUpdateCounters();
  EXPECT_EQ(counters.images_added, 4u);  // spread across partitions
}

TEST(ClusterIntegrationTest, RealTimeDeletionIsImmediatelyInvisible) {
  auto cluster = MakeCluster();
  const ProductId victim = 42;
  const auto query = QueryFor(*cluster, victim, 5);
  // Present before deletion.
  bool before = false;
  for (const auto& r : cluster->Query(query).results) {
    before |= (r.hit.product_id == victim);
  }
  ASSERT_TRUE(before);

  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = victim;
  cluster->PublishUpdate(del);
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());

  for (const auto& r : cluster->Query(query).results) {
    EXPECT_NE(r.hit.product_id, victim);
  }
}

TEST(ClusterIntegrationTest, RelistRestoresWithoutReextraction) {
  auto cluster = MakeCluster();
  const ProductId product = 17;
  const auto record = cluster->catalog().Get(product);
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = product;
  cluster->PublishUpdate(del);

  ProductUpdateMessage relist;
  relist.type = UpdateType::kAddProduct;
  relist.product_id = product;
  relist.category_id = record->category;
  relist.image_urls = record->image_urls;
  relist.attributes = record->attributes;
  cluster->PublishUpdate(relist);
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());

  const auto counters = cluster->TotalUpdateCounters();
  EXPECT_EQ(counters.images_revalidated, record->image_urls.size());
  EXPECT_EQ(counters.features_extracted, 0u);  // reuse, no CNN run

  bool found = false;
  for (const auto& r :
       cluster->Query(QueryFor(*cluster, product, 3)).results) {
    found |= (r.hit.product_id == product);
  }
  EXPECT_TRUE(found);
}

TEST(ClusterIntegrationTest, AttributeUpdateVisibleInResults) {
  auto cluster = MakeCluster();
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = 10;
  upd.attributes = {.sales = 123456, .price_cents = 77, .praise = 999};
  cluster->PublishUpdate(upd);
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());
  const auto response = cluster->Query(QueryFor(*cluster, 10, 9));
  ASSERT_FALSE(response.results.empty());
  bool saw = false;
  for (const auto& r : response.results) {
    if (r.hit.product_id == 10u) {
      EXPECT_EQ(r.hit.attributes.sales, 123456u);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ClusterIntegrationTest, WithoutRealtimeUpdatesWaitForFullCycle) {
  ClusterConfig config = SmallConfig();
  config.realtime_enabled = false;  // the Figure 12 baseline
  auto cluster = MakeCluster(config);

  cluster->PublishUpdate(AddMessage(9002, 2, 3));
  // No real-time path: the product is not searchable yet.
  const auto before = cluster->Query(QueryImage{9002, 2, 11});
  for (const auto& r : before.results) {
    EXPECT_NE(r.hit.product_id, 9002u);
  }
  // After the periodic full indexing cycle it appears.
  cluster->RunFullIndexingCycle();
  const auto after = cluster->Query(QueryImage{9002, 2, 11});
  ASSERT_FALSE(after.results.empty());
  EXPECT_EQ(after.results[0].hit.product_id, 9002u);
}

TEST(ClusterIntegrationTest, FullRebuildUnderLiveTrafficKeepsServing) {
  auto cluster = MakeCluster();
  // Publish some churn, then rebuild while queries continue.
  for (int i = 0; i < 20; ++i) {
    cluster->PublishUpdate(AddMessage(8000 + i, i % 8, 2));
  }
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());
  cluster->RunFullIndexingCycle();
  const auto response = cluster->Query(QueryImage{8005, 5, 2});
  ASSERT_FALSE(response.results.empty());
  EXPECT_EQ(response.results[0].hit.product_id, 8005u);
  // Day log was truncated by the cycle.
  EXPECT_EQ(cluster->day_log().size(), 0u);
}

TEST(ClusterIntegrationTest, ReplicaFailoverKeepsFullCoverage) {
  ClusterConfig config = SmallConfig();
  config.replicas_per_partition = 2;
  auto cluster = MakeCluster(config);
  // Kill the primary replica of partition 0.
  cluster->searcher(0, 0).node().set_failed(true);
  int found = 0;
  constexpr int kQueries = 10;
  for (int q = 0; q < kQueries; ++q) {
    const ProductId target = 1 + q * 11;
    const auto response = cluster->Query(QueryFor(*cluster, target, q));
    for (const auto& r : response.results) {
      if (r.hit.product_id == target) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, kQueries - 1);
  std::uint64_t failovers = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failovers += cluster->broker(b).failovers();
  }
  EXPECT_GT(failovers, 0u);
}

TEST(ClusterIntegrationTest, BlenderFailureHandledByFrontEnd) {
  auto cluster = MakeCluster();
  cluster->blender(0).node().set_failed(true);
  // Round robin skips the failed blender.
  for (int q = 0; q < 5; ++q) {
    const auto response = cluster->Query(QueryFor(*cluster, 30 + q, q));
    EXPECT_FALSE(response.results.empty());
  }
}

TEST(ClusterIntegrationTest, QueryClientMeasuresWorkload) {
  auto cluster = MakeCluster();
  QueryWorkloadConfig qc;
  qc.num_threads = 4;
  qc.queries_per_thread = 10;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  EXPECT_EQ(result.queries, 40u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_EQ(result.latency_micros->Count(), 40u);
  EXPECT_GT(result.subject_hit_rate, 0.8);
}

TEST(ClusterIntegrationTest, ResultCacheThroughClusterConfig) {
  ClusterConfig config = SmallConfig();
  config.num_blenders = 1;  // a single cache to hit
  config.blender_result_cache = true;
  config.blender_cache.ttl_micros = 60'000'000;
  auto cluster = MakeCluster(config);
  const QueryImage query = QueryFor(*cluster, 8, 3);
  EXPECT_FALSE(cluster->Query(query).from_cache);
  EXPECT_TRUE(cluster->Query(query).from_cache);

  // Strict invalidation: an update bumps the cluster version and kills it.
  ClusterConfig strict_config = config;
  strict_config.blender_cache.strict_version_check = true;
  auto strict = MakeCluster(strict_config);
  const QueryImage q2 = QueryFor(*strict, 8, 3);
  EXPECT_FALSE(strict->Query(q2).from_cache);
  EXPECT_TRUE(strict->Query(q2).from_cache);
  strict->PublishUpdate(AddMessage(9300, 1, 1));
  ASSERT_TRUE(strict->WaitForUpdatesDrained());
  EXPECT_FALSE(strict->Query(q2).from_cache);  // version moved
}

TEST(ClusterIntegrationTest, StatusReportSummarizesState) {
  auto cluster = MakeCluster();
  cluster->PublishUpdate(AddMessage(9100, 1, 2));
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());
  cluster->Query(QueryFor(*cluster, 5, 1));
  const std::string report = cluster->StatusReport();
  EXPECT_NE(report.find("4 partitions"), std::string::npos);
  EXPECT_NE(report.find("realtime=on"), std::string::npos);
  EXPECT_NE(report.find("broker-0"), std::string::npos);
  EXPECT_NE(report.find("blender-0"), std::string::npos);
  EXPECT_NE(report.find("searchers: 4/4 healthy"), std::string::npos);
  cluster->searcher(0).node().set_failed(true);
  EXPECT_NE(cluster->StatusReport().find("searchers: 3/4 healthy"),
            std::string::npos);
}

TEST(ClusterIntegrationTest, UpdatesRaceQueriesWithoutErrors) {
  auto cluster = MakeCluster();
  // Drive updates and queries concurrently; nothing may crash or error.
  std::thread updater([&] {
    for (int i = 0; i < 200; ++i) {
      cluster->PublishUpdate(AddMessage(7000 + i, i % 8, 2));
      if (i % 3 == 0) {
        ProductUpdateMessage del;
        del.type = UpdateType::kRemoveProduct;
        del.product_id = 1 + (i % 100);
        cluster->PublishUpdate(del);
      }
    }
  });
  QueryWorkloadConfig qc;
  qc.num_threads = 4;
  qc.queries_per_thread = 25;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  updater.join();
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.queries, 100u);
  ASSERT_TRUE(cluster->WaitForUpdatesDrained());
}

}  // namespace
}  // namespace jdvs

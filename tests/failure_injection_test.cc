// Failure injection and malformed-input tests: the system must degrade
// gracefully, never crash, and keep its counters honest.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/quantizer.h"
#include "index/ivf_index.h"
#include "index/realtime_indexer.h"
#include "net/fault_injector.h"
#include "search/cluster_builder.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "workload/catalog_gen.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

struct IndexerFixture {
  IndexerFixture()
      : embedder({.dim = 8, .num_categories = 4, .seed = 1}),
        features(embedder, ExtractionCostModel{.mean_micros = 0}),
        quantizer(std::make_shared<CoarseQuantizer>(
            std::vector<float>(8, 0.f), 8)),
        index(quantizer),
        indexer(index, features) {}

  SyntheticEmbedder embedder;
  FeatureDb features;
  std::shared_ptr<const CoarseQuantizer> quantizer;
  IvfIndex index;
  RealTimeIndexer indexer;
};

TEST(MalformedMessageTest, AddWithNoImagesIsHarmless) {
  IndexerFixture fx;
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 1;
  // No image URLs at all.
  fx.indexer.Apply(add);
  EXPECT_EQ(fx.index.size(), 0u);
  EXPECT_EQ(fx.indexer.counters().additions, 1u);
  EXPECT_EQ(fx.indexer.counters().images_added, 0u);
}

TEST(MalformedMessageTest, DeleteUnknownProductIsNoop) {
  IndexerFixture fx;
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 424242;
  fx.indexer.Apply(del);
  EXPECT_EQ(fx.indexer.counters().deletions, 1u);
  EXPECT_EQ(fx.indexer.counters().images_invalidated, 0u);
}

TEST(MalformedMessageTest, DoubleDeleteIsIdempotent) {
  IndexerFixture fx;
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 5;
  add.category_id = 1;
  add.image_urls = {MakeImageUrl(5, 0)};
  fx.indexer.Apply(add);

  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 5;
  fx.indexer.Apply(del);
  fx.indexer.Apply(del);
  EXPECT_EQ(fx.index.Stats().valid_images, 0u);
  // Re-list still works after double delete.
  fx.indexer.Apply(add);
  EXPECT_EQ(fx.index.Stats().valid_images, 1u);
  EXPECT_EQ(fx.index.size(), 1u);
}

TEST(MalformedMessageTest, DuplicateImageUrlsWithinMessage) {
  IndexerFixture fx;
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 9;
  add.category_id = 2;
  const std::string url = MakeImageUrl(9, 0);
  add.image_urls = {url, url, url};  // duplicated
  fx.indexer.Apply(add);
  // First occurrence inserts, the rest revalidate: exactly one entry.
  EXPECT_EQ(fx.index.size(), 1u);
  EXPECT_EQ(fx.indexer.counters().images_added, 1u);
  EXPECT_EQ(fx.indexer.counters().images_revalidated, 2u);
}

TEST(MalformedMessageTest, SameImageUrlOnTwoProductsKeepsFirstOwner) {
  IndexerFixture fx;
  ProductUpdateMessage a;
  a.type = UpdateType::kAddProduct;
  a.product_id = 1;
  a.image_urls = {"shared-url"};
  fx.indexer.Apply(a);
  ProductUpdateMessage b = a;
  b.product_id = 2;
  fx.indexer.Apply(b);
  // The URL is already indexed; the second product's message revalidates it
  // rather than double-inserting.
  EXPECT_EQ(fx.index.size(), 1u);
  EXPECT_TRUE(fx.index.HasProduct(1));
}

TEST(LatencySpikeTest, ClusterSurvivesHeavyJitter) {
  ClusterConfig config;
  config.num_partitions = 2;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.embedder = {.dim = 16, .num_categories = 4, .seed = 2};
  config.detector = {.num_categories = 4, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 4;
  config.ivf.nprobe = 4;
  // Violent tail: median 1ms jitter with sigma 2 => occasional ~50ms hops.
  config.hop_latency = {.base_micros = 100, .jitter_median_micros = 1000,
                        .sigma = 2.0};
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 50;
  cg.num_categories = 4;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();
  QueryWorkloadConfig qc;
  qc.num_threads = 4;
  qc.queries_per_thread = 10;
  QueryClient client(cluster, qc);
  const QueryWorkloadResult result = client.Run();
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.queries, 40u);
  cluster.Stop();
}

// The issue's acceptance bar: with 100% request loss toward one replica of
// a replicated partition, no query may block indefinitely — the per-attempt
// RPC timeout fires, the broker fails the slot over to the sibling replica,
// and every query completes. Without `searcher_rpc_timeout_micros` a query
// whose primary is the blackholed replica would hang forever (a dropped
// message is silent).
TEST(GrayFailureTest, BlackholedReplicaCannotHangQueries) {
  FaultInjector injector(17);
  ClusterConfig config;
  config.num_partitions = 2;
  config.replicas_per_partition = 2;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.embedder = {.dim = 16, .num_categories = 4, .seed = 9};
  config.detector = {.num_categories = 4, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 4;
  config.ivf.nprobe = 4;
  config.fault_injector = &injector;
  config.searcher_rpc_timeout_micros = 10'000;
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 50;
  cg.num_categories = 4;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  // Blackhole the broker -> replica-0-of-partition-0 link only: heartbeats
  // and the sibling replica are untouched, so this is a gray failure the
  // query path must survive on its own.
  injector.SetLink(cluster.broker(0).name(), cluster.searcher(0, 0).name(),
                   LinkFaults{.drop_probability = 1.0});

  QueryWorkloadConfig qc;
  qc.num_threads = 2;
  qc.queries_per_thread = 10;
  QueryClient client(cluster, qc);
  const auto& clock = MonotonicClock::Instance();
  const Micros start = clock.NowMicros();
  const QueryWorkloadResult result = client.Run();
  const Micros elapsed = clock.NowMicros() - start;

  // Every query completed — none hung, none failed (the sibling answered).
  EXPECT_EQ(result.queries, 20u);
  EXPECT_EQ(result.errors, 0u);
  // Bounded: worst case every query eats one 10ms timeout before failover.
  EXPECT_LT(elapsed, 8'000'000);
  // The defense actually engaged (rotation parks half the primaries on the
  // blackholed replica).
  EXPECT_GE(cluster.broker(0).rpc_timeouts(), 1u);
  EXPECT_GE(cluster.broker(0).failovers(), 1u);
  EXPECT_GT(injector.requests_dropped(), 0u);
  cluster.Stop();
}

TEST(FailureRecoveryTest, SearcherRecoversAfterRevival) {
  ClusterConfig config;
  config.num_partitions = 2;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.embedder = {.dim = 16, .num_categories = 4, .seed = 3};
  config.detector = {.num_categories = 4, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 4;
  config.ivf.nprobe = 4;
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 60;
  cg.num_categories = 4;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  cluster.searcher(0).node().set_failed(true);
  // Queries still answer (partial coverage, no exceptions).
  const auto record = cluster.catalog().Get(10);
  EXPECT_NO_THROW(
      cluster.Query(QueryImage{10, record->category, 1}));

  cluster.searcher(0).node().set_failed(false);
  // After revival, full coverage returns: partition-0 products findable.
  ProductId in_p0 = 0;
  cluster.catalog().ForEach([&](const ProductRecord& r) {
    if (in_p0 != 0) return;
    for (const auto& url : r.image_urls) {
      if (cluster.partitioner().PartitionOf(url) == 0) {
        in_p0 = r.id;
        return;
      }
    }
  });
  ASSERT_NE(in_p0, 0u);
  const auto target = cluster.catalog().Get(in_p0);
  const auto response =
      cluster.Query(QueryImage{in_p0, target->category, 2});
  bool found = false;
  for (const auto& r : response.results) {
    found |= (r.hit.product_id == in_p0);
  }
  EXPECT_TRUE(found);
  cluster.Stop();
}

TEST(UpdateBeforeIndexInstallTest, DroppedGracefully) {
  SyntheticEmbedder embedder({.dim = 8, .num_categories = 2, .seed = 4});
  FeatureDb features(embedder, {.mean_micros = 0});
  Searcher searcher("no-index", Searcher::Config{}, features,
                    AcceptAllPartitionFilter());
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 1;
  add.image_urls = {MakeImageUrl(1, 0)};
  // No index installed yet: the update is logged and dropped, not a crash.
  EXPECT_NO_THROW(searcher.ApplyUpdate(add));
  EXPECT_EQ(searcher.update_counters().TotalMessages(), 0u);
}

}  // namespace
}  // namespace jdvs

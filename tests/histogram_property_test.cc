// Property tests for the log-bucketed histogram: quantiles must track exact
// order statistics within the bucket's relative error across distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace jdvs {
namespace {

enum class Distribution { kUniform, kExponential, kLognormal, kBimodal, kConstant };

const char* Name(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kExponential:
      return "exponential";
    case Distribution::kLognormal:
      return "lognormal";
    case Distribution::kBimodal:
      return "bimodal";
    case Distribution::kConstant:
      return "constant";
  }
  return "?";
}

std::int64_t Sample(Distribution d, Rng& rng) {
  switch (d) {
    case Distribution::kUniform:
      return static_cast<std::int64_t>(rng.Below(1'000'000));
    case Distribution::kExponential:
      return static_cast<std::int64_t>(rng.NextExponential(50'000.0));
    case Distribution::kLognormal:
      return static_cast<std::int64_t>(
          std::exp(10.0 + 1.5 * rng.NextGaussian()));
    case Distribution::kBimodal:
      return rng.NextBool(0.9)
                 ? static_cast<std::int64_t>(1000 + rng.Below(1000))
                 : static_cast<std::int64_t>(800'000 + rng.Below(100'000));
    case Distribution::kConstant:
      return 12345;
  }
  return 0;
}

class HistogramDistributionTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(HistogramDistributionTest, QuantilesTrackExactOrderStatistics) {
  const Distribution dist = GetParam();
  Rng rng(static_cast<std::uint64_t>(dist) + 100);
  Histogram h;
  std::vector<std::int64_t> values;
  constexpr int kN = 50000;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const std::int64_t v = Sample(dist, rng);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.Quantile(q);
    // Bucket relative error is ~1/32 (5 mantissa bits); allow 2 buckets of
    // slack plus small-value exactness.
    const double tolerance =
        std::max<double>(2.0, static_cast<double>(exact) * 2.0 / 32.0);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                tolerance)
        << Name(dist) << " q=" << q;
  }
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(h.Min(), values.front());
  // Max is bucket-rounded upward by at most one bucket width.
  EXPECT_GE(h.Max(), values.back());
  EXPECT_LE(static_cast<double>(h.Max()),
            static_cast<double>(values.back()) * (1.0 + 2.0 / 32.0) + 2.0);
}

TEST_P(HistogramDistributionTest, MeanIsExact) {
  const Distribution dist = GetParam();
  Rng rng(static_cast<std::uint64_t>(dist) + 200);
  Histogram h;
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const std::int64_t v = Sample(dist, rng);
    sum += static_cast<double>(v);
    h.Record(v);
  }
  // The mean is tracked exactly (running sum), not bucketed.
  EXPECT_NEAR(h.Mean(), sum / kN, 1e-6 * (1.0 + std::abs(sum / kN)));
}

TEST_P(HistogramDistributionTest, MergeEqualsUnion) {
  const Distribution dist = GetParam();
  Rng rng(static_cast<std::uint64_t>(dist) + 300);
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = Sample(dist, rng);
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), all.Quantile(q)) << Name(dist) << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramDistributionTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kExponential,
                                           Distribution::kLognormal,
                                           Distribution::kBimodal,
                                           Distribution::kConstant),
                         [](const auto& info) { return Name(info.param); });

}  // namespace
}  // namespace jdvs

// Tests for the learned re-ranker (the paper's future-work extension).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "search/reranker.h"

namespace jdvs {
namespace {

SearchHit MakeHit(float distance, std::uint64_t sales, std::uint64_t praise,
                  std::uint64_t price_cents, CategoryId category) {
  SearchHit hit;
  static ImageId next_id = 1;
  hit.image_id = next_id++;
  hit.distance = distance;
  hit.attributes = {.sales = sales, .price_cents = price_cents,
                    .praise = praise};
  hit.category = category;
  return hit;
}

TEST(RerankFeaturesTest, ExtractsExpectedValues) {
  const SearchHit hit = MakeHit(3.f, 100, 50, 9900, 7);
  const RerankFeatures f = ExtractRerankFeatures(hit, 7);
  EXPECT_NEAR(f.similarity, 0.25, 1e-9);
  EXPECT_NEAR(f.log_sales, std::log1p(100.0), 1e-9);
  EXPECT_NEAR(f.log_praise, std::log1p(50.0), 1e-9);
  EXPECT_NEAR(f.log_price, std::log1p(99.0), 1e-9);
  EXPECT_EQ(f.category_match, 1.0);
  EXPECT_EQ(ExtractRerankFeatures(hit, 3).category_match, 0.0);
}

// Generates clicks from a hidden linear utility; training must recover the
// ordering induced by that utility.
std::vector<LearnedReranker::Example> SyntheticClicks(std::size_t n,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  // Hidden preference: similarity matters most, cheap and popular preferred.
  const std::array<double, RerankFeatures::kCount> hidden = {6.0, 0.4, 0.2,
                                                             -0.3, 1.0};
  std::vector<LearnedReranker::Example> dataset;
  dataset.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RerankFeatures f;
    f.similarity = rng.NextDouble();
    f.log_sales = rng.NextDouble() * 8.0;
    f.log_praise = rng.NextDouble() * 6.0;
    f.log_price = rng.NextDouble() * 8.0;
    f.category_match = rng.NextBool(0.7) ? 1.0 : 0.0;
    const auto x = f.AsArray();
    double z = -4.0;
    for (std::size_t j = 0; j < x.size(); ++j) z += hidden[j] * x[j];
    const double p = 1.0 / (1.0 + std::exp(-z));
    dataset.push_back({f, rng.NextBool(p)});
  }
  return dataset;
}

TEST(LearnedRerankerTest, LearnsSignOfHiddenWeights) {
  const auto dataset = SyntheticClicks(20000, 3);
  const LearnedReranker model = LearnedReranker::Train(dataset);
  const auto& w = model.weights();
  EXPECT_GT(w[0], 0.0);  // similarity helps
  EXPECT_GT(w[1], 0.0);  // sales help
  EXPECT_LT(w[3], 0.0);  // price hurts
  EXPECT_GT(w[4], 0.0);  // category match helps
}

TEST(LearnedRerankerTest, PredictsClicksAboveChance) {
  const auto train = SyntheticClicks(20000, 4);
  const auto test = SyntheticClicks(5000, 5);
  const LearnedReranker model = LearnedReranker::Train(train);
  // AUC-proxy: average predicted probability for clicked examples should
  // clearly exceed that of unclicked ones.
  double clicked_sum = 0.0;
  double unclicked_sum = 0.0;
  std::size_t clicked_n = 0;
  std::size_t unclicked_n = 0;
  for (const auto& example : test) {
    const double p = model.PredictClick(example.features);
    if (example.clicked) {
      clicked_sum += p;
      ++clicked_n;
    } else {
      unclicked_sum += p;
      ++unclicked_n;
    }
  }
  ASSERT_GT(clicked_n, 0u);
  ASSERT_GT(unclicked_n, 0u);
  EXPECT_GT(clicked_sum / clicked_n, unclicked_sum / unclicked_n + 0.1);
}

TEST(LearnedRerankerTest, RerankOrdersByScore) {
  // A model that only cares about sales.
  const LearnedReranker model({0.0, 1.0, 0.0, 0.0, 0.0}, 0.0);
  std::vector<SearchHit> hits;
  hits.push_back(MakeHit(1.f, 10, 0, 100, 0));
  hits.push_back(MakeHit(1.f, 1000, 0, 100, 0));
  hits.push_back(MakeHit(1.f, 100, 0, 100, 0));
  const auto ranked = model.Rerank(std::move(hits), 0, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].hit.attributes.sales, 1000u);
  EXPECT_EQ(ranked[1].hit.attributes.sales, 100u);
  EXPECT_GE(ranked[0].score, ranked[1].score);
}

TEST(LearnedRerankerTest, TrainingIsDeterministic) {
  const auto dataset = SyntheticClicks(2000, 6);
  const LearnedReranker a = LearnedReranker::Train(dataset);
  const LearnedReranker b = LearnedReranker::Train(dataset);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(LearnedRerankerTest, DefaultModelScoresZero) {
  const LearnedReranker model;
  EXPECT_EQ(model.Score(RerankFeatures{}), 0.0);
  EXPECT_NEAR(model.PredictClick(RerankFeatures{}), 0.5, 1e-9);
}

}  // namespace
}  // namespace jdvs

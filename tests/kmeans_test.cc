// Tests for k-means training and the coarse quantizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/kmeans.h"
#include "cluster/quantizer.h"
#include "common/rng.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

// Generates `per_cluster` points around each of `centers`.
std::vector<FeatureVector> BlobData(const std::vector<FeatureVector>& centers,
                                    std::size_t per_cluster, float noise,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  for (const auto& center : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      FeatureVector p = center;
      for (float& x : p) x += static_cast<float>(rng.NextGaussian()) * noise;
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  const std::vector<FeatureVector> centers = {
      {0.f, 0.f}, {10.f, 10.f}, {-10.f, 10.f}, {10.f, -10.f}};
  const auto points = BlobData(centers, 50, 0.3f, 1);
  KMeansConfig config;
  config.num_clusters = 4;
  config.seed = 3;
  const KMeansResult result = TrainKMeans(points, config);
  ASSERT_EQ(result.num_clusters, 4u);
  // Every true center must have a learned centroid nearby.
  for (const auto& center : centers) {
    float best = 1e30f;
    for (std::size_t c = 0; c < 4; ++c) {
      best = std::min(best, L2SquaredDistance(center, result.Centroid(c)));
    }
    EXPECT_LT(best, 1.0f);
  }
}

TEST(KMeansTest, AssignmentsPointToNearestCentroid) {
  Rng rng(4);
  std::vector<FeatureVector> points;
  for (int i = 0; i < 200; ++i) {
    FeatureVector p(8);
    for (float& x : p) x = static_cast<float>(rng.NextGaussian());
    points.push_back(std::move(p));
  }
  KMeansConfig config;
  config.num_clusters = 8;
  const KMeansResult result = TrainKMeans(points, config);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const float assigned =
        L2SquaredDistance(points[i], result.Centroid(result.assignments[i]));
    for (std::size_t c = 0; c < result.num_clusters; ++c) {
      EXPECT_LE(assigned,
                L2SquaredDistance(points[i], result.Centroid(c)) + 1e-4f);
    }
  }
}

TEST(KMeansTest, InertiaEqualsSumOfAssignedDistances) {
  Rng rng(6);
  std::vector<FeatureVector> points;
  for (int i = 0; i < 100; ++i) {
    FeatureVector p(4);
    for (float& x : p) x = static_cast<float>(rng.NextGaussian());
    points.push_back(std::move(p));
  }
  KMeansConfig config;
  config.num_clusters = 5;
  const KMeansResult result = TrainKMeans(points, config);
  double sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    sum += L2SquaredDistance(points[i], result.Centroid(result.assignments[i]));
  }
  EXPECT_NEAR(result.inertia, sum, 1e-3 * (1.0 + sum));
}

TEST(KMeansTest, FewerPointsThanClustersReducesK) {
  const std::vector<FeatureVector> points = {{1.f, 1.f}, {2.f, 2.f}};
  KMeansConfig config;
  config.num_clusters = 10;
  const KMeansResult result = TrainKMeans(points, config);
  EXPECT_EQ(result.num_clusters, 2u);
}

TEST(KMeansTest, SinglePoint) {
  const std::vector<FeatureVector> points = {{3.f, 4.f}};
  KMeansConfig config;
  config.num_clusters = 3;
  const KMeansResult result = TrainKMeans(points, config);
  ASSERT_EQ(result.num_clusters, 1u);
  EXPECT_FLOAT_EQ(result.Centroid(0)[0], 3.f);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, DeterministicForSameSeed) {
  const auto points =
      BlobData({{0.f, 0.f}, {5.f, 5.f}}, 40, 0.5f, /*seed=*/2);
  KMeansConfig config;
  config.num_clusters = 2;
  config.seed = 42;
  const KMeansResult a = TrainKMeans(points, config);
  const KMeansResult b = TrainKMeans(points, config);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.assignments, b.assignments);
}

// Property sweep: more clusters never increases the optimal inertia found
// (not strictly guaranteed for Lloyd's, but holds on well-behaved blob data).
class KMeansKSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansKSweepTest, InertiaIsFiniteAndClustersNonEmptyOnBlobs) {
  const std::size_t k = GetParam();
  const auto points = BlobData(
      {{0.f, 0.f}, {8.f, 0.f}, {0.f, 8.f}, {8.f, 8.f}}, 64, 0.5f, k);
  KMeansConfig config;
  config.num_clusters = k;
  config.seed = k;
  const KMeansResult result = TrainKMeans(points, config);
  EXPECT_EQ(result.num_clusters, std::min(k, points.size()));
  EXPECT_GE(result.inertia, 0.0);
  // Every cluster id in range.
  for (const auto a : result.assignments) EXPECT_LT(a, result.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweepTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(QuantizerTest, NearestCentroidIsArgmin) {
  const std::vector<float> centroids = {0.f, 0.f, 10.f, 0.f, 0.f, 10.f};
  const CoarseQuantizer quantizer(centroids, 2);
  EXPECT_EQ(quantizer.num_clusters(), 3u);
  EXPECT_EQ(quantizer.NearestCentroid(FeatureVector{1.f, 1.f}), 0u);
  EXPECT_EQ(quantizer.NearestCentroid(FeatureVector{9.f, 1.f}), 1u);
  EXPECT_EQ(quantizer.NearestCentroid(FeatureVector{1.f, 9.f}), 2u);
}

TEST(QuantizerTest, NearestCentroidsOrderedBySimilarity) {
  const std::vector<float> centroids = {0.f, 0.f, 10.f, 0.f, 0.f, 10.f};
  const CoarseQuantizer quantizer(centroids, 2);
  const auto probes =
      quantizer.NearestCentroids(FeatureVector{6.f, 1.f}, 3);
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_EQ(probes[0], 1u);
  EXPECT_EQ(probes[1], 0u);
  EXPECT_EQ(probes[2], 2u);
}

TEST(QuantizerTest, NprobeClampedToNumClusters) {
  const std::vector<float> centroids = {0.f, 0.f, 1.f, 1.f};
  const CoarseQuantizer quantizer(centroids, 2);
  EXPECT_EQ(quantizer.NearestCentroids(FeatureVector{0.f, 0.f}, 100).size(),
            2u);
  EXPECT_EQ(quantizer.NearestCentroids(FeatureVector{0.f, 0.f}, 0).size(), 1u);
}

TEST(QuantizerTest, BuildsFromKMeansResult) {
  const auto points = BlobData({{0.f, 0.f}, {9.f, 9.f}}, 30, 0.3f, 8);
  KMeansConfig config;
  config.num_clusters = 2;
  const KMeansResult result = TrainKMeans(points, config);
  const CoarseQuantizer quantizer(result);
  EXPECT_EQ(quantizer.num_clusters(), 2u);
  EXPECT_EQ(quantizer.dim(), 2u);
  // Points from one blob quantize together.
  const auto c1 = quantizer.NearestCentroid(FeatureVector{0.1f, -0.2f});
  const auto c2 = quantizer.NearestCentroid(FeatureVector{9.2f, 8.8f});
  EXPECT_NE(c1, c2);
}

}  // namespace
}  // namespace jdvs

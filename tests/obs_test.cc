// Tests for the observability subsystem: metrics registry semantics and
// exposition format, span/trace nesting and rendering, sampling
// determinism, the slow-query log, and multithreaded stress on the
// registry + sink (run under TSan to validate the lock-free paths).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/introspection.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jdvs::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAddAndValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(5);
  gauge.Decrement();
  EXPECT_EQ(gauge.Value(), 14);
  gauge.Add(-20);
  EXPECT_EQ(gauge.Value(), -6);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.GetCounter("jdvs_x_total");
  Counter& b = registry.GetCounter("jdvs_x_total");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  EXPECT_NE(&registry.GetCounter("jdvs_y_total"), &a);
  EXPECT_EQ(&registry.GetHistogram("jdvs_h"), &registry.GetHistogram("jdvs_h"));
}

TEST(RegistryTest, LabeledBuildsPrometheusSeriesName) {
  EXPECT_EQ(Labeled("jdvs_cache_hits_total", "owner", "bl-0"),
            "jdvs_cache_hits_total{owner=\"bl-0\"}");
}

TEST(RegistryTest, HasAndFindNeverCreate) {
  Registry registry;
  EXPECT_FALSE(registry.Has("jdvs_x_total"));
  EXPECT_EQ(registry.FindCounter("jdvs_x_total"), nullptr);
  EXPECT_EQ(registry.FindHistogram("jdvs_h"), nullptr);
  registry.GetCounter("jdvs_x_total");
  registry.GetHistogram("jdvs_h");
  EXPECT_TRUE(registry.Has("jdvs_x_total"));
  EXPECT_EQ(registry.FindCounter("jdvs_x_total"),
            &registry.GetCounter("jdvs_x_total"));
  EXPECT_EQ(registry.FindHistogram("jdvs_h"), &registry.GetHistogram("jdvs_h"));
  EXPECT_EQ(registry.FindGauge("jdvs_g"), nullptr);
}

TEST(RegistryTest, ExpositionFormat) {
  Registry registry;
  registry.GetCounter(Labeled("jdvs_hits_total", "owner", "a")).Increment(3);
  registry.GetCounter(Labeled("jdvs_hits_total", "owner", "b")).Increment(7);
  registry.GetGauge("jdvs_depth").Set(5);
  Histogram& h = registry.GetHistogram(Labeled("jdvs_lat", "stage", "scan"));
  h.Record(100);
  h.Record(300);

  const std::string text = registry.ExpositionText();
  // One TYPE line per family, series sorted under it.
  EXPECT_NE(text.find("# TYPE jdvs_hits_total counter\n"
                      "jdvs_hits_total{owner=\"a\"} 3\n"
                      "jdvs_hits_total{owner=\"b\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jdvs_depth gauge\njdvs_depth 5\n"),
            std::string::npos);
  // Histograms render as cumulative buckets (Prometheus histogram type):
  // one `_bucket{le="upper"}` series per non-empty bucket, the mandatory
  // +Inf bucket equal to the count, then _sum and _count.
  EXPECT_NE(text.find("# TYPE jdvs_lat histogram\n"), std::string::npos);
  const std::string bucket_100 =
      "jdvs_lat_bucket{stage=\"scan\",le=\"" +
      std::to_string(Histogram::BucketUpperBound(Histogram::BucketFor(100))) +
      "\"} 1\n";
  const std::string bucket_300 =
      "jdvs_lat_bucket{stage=\"scan\",le=\"" +
      std::to_string(Histogram::BucketUpperBound(Histogram::BucketFor(300))) +
      "\"} 2\n";
  EXPECT_NE(text.find(bucket_100), std::string::npos) << text;
  EXPECT_NE(text.find(bucket_300), std::string::npos) << text;
  EXPECT_NE(text.find("jdvs_lat_bucket{stage=\"scan\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  // Buckets are cumulative and ascending: the 100 bucket precedes 300.
  EXPECT_LT(text.find(bucket_100), text.find(bucket_300));
  EXPECT_NE(text.find("jdvs_lat_sum{stage=\"scan\"} 400\n"),
            std::string::npos);
  EXPECT_NE(text.find("jdvs_lat_count{stage=\"scan\"} 2\n"),
            std::string::npos);
  // The old summary rendering must be gone: no quantile series.
  EXPECT_EQ(text.find("quantile"), std::string::npos);
}

TEST(RegistryTest, ExpositionAttachesExemplars) {
  Registry registry;
  Histogram& h = registry.GetHistogram(Labeled("jdvs_lat", "stage", "q"));
  h.EnableExemplars();
  h.RecordWithExemplar(100, /*trace_id=*/0xabcdef12u, /*ref=*/0);
  h.RecordWithExemplar(5000, /*trace_id=*/0, /*ref=*/42);  // unsampled query

  const std::string text = registry.ExpositionText();
  // The sampled observation's bucket carries its trace id...
  EXPECT_NE(text.find("# {trace_id=\"00000000abcdef12\"} 100"),
            std::string::npos)
      << text;
  // ...and the unsampled one still links to its flight-recorder ordinal.
  EXPECT_NE(
      text.find("# {trace_id=\"0000000000000000\",flight=\"42\"} 5000"),
      std::string::npos)
      << text;
}

TEST(HistogramExemplarTest, StoresNearestAndIgnoresUnidentified) {
  Histogram h;
  EXPECT_FALSE(h.exemplars_enabled());
  h.RecordWithExemplar(100, 7);  // before EnableExemplars: counted, no slot
  h.EnableExemplars();
  EXPECT_TRUE(h.exemplars_enabled());
  EXPECT_EQ(h.Exemplars().size(), 0u);

  h.RecordWithExemplar(100, /*trace_id=*/0, /*ref=*/0);  // nothing to link
  EXPECT_EQ(h.Exemplars().size(), 0u);

  h.RecordWithExemplar(100, /*trace_id=*/11);
  h.RecordWithExemplar(1'000'000, /*trace_id=*/22);
  ASSERT_EQ(h.Exemplars().size(), 2u);
  EXPECT_EQ(h.Count(), 4u);

  const auto near_small = h.ExemplarNear(90);
  ASSERT_TRUE(near_small.has_value());
  EXPECT_EQ(near_small->trace_id, 11u);
  const auto near_big = h.ExemplarNear(2'000'000);
  ASSERT_TRUE(near_big.has_value());
  EXPECT_EQ(near_big->trace_id, 22u);
  EXPECT_FALSE(Histogram().ExemplarNear(5).has_value());
}

TEST(SpanTest, ParentChildNesting) {
  TraceSink sink;
  ManualClock clock(1000);
  Tracer tracer(&sink, {.sample_every = 1}, clock);

  Span root = tracer.StartTrace("query", "blender-0");
  ASSERT_TRUE(root.sampled());
  const TraceContext root_ctx = root.context();
  EXPECT_NE(root_ctx.trace_id, 0u);
  clock.AdvanceMicros(50);
  {
    Span child = root.StartChild("broker.search", "broker-0");
    EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    EXPECT_NE(child.context().span_id, root_ctx.span_id);
    clock.AdvanceMicros(200);
    child.AddTag("hits", std::uint64_t{7});
  }  // child finishes via RAII
  clock.AdvanceMicros(10);
  root.Finish();

  const auto spans = sink.SpansFor(root_ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: root first.
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent_span_id, 0u);
  EXPECT_EQ(spans[0].DurationMicros(), 260);
  EXPECT_EQ(spans[1].name, "broker.search");
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[1].DurationMicros(), 200);

  const std::string tree = sink.Render(root_ctx.trace_id);
  EXPECT_NE(tree.find("query @blender-0 260us"), std::string::npos);
  EXPECT_NE(tree.find("`- broker.search @broker-0 200us hits=7"),
            std::string::npos);
  // Child is indented under the root.
  EXPECT_LT(tree.find("query"), tree.find("broker.search"));
}

TEST(SpanTest, ErrorStatusRendered) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  Span root = tracer.StartTrace("query");
  const std::uint64_t trace_id = root.context().trace_id;
  root.SetError("partition 3 unavailable");
  root.Finish();
  const auto spans = sink.SpansFor(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
  EXPECT_NE(sink.Render(trace_id).find("[ERROR: partition 3 unavailable]"),
            std::string::npos);
}

TEST(SpanTest, UnsampledSpansAreNoOps) {
  TraceSink sink;
  ManualClock clock;
  Tracer off(&sink, {.sample_every = 0}, clock);
  Span root = off.StartTrace("query");
  EXPECT_FALSE(root.sampled());
  EXPECT_FALSE(root.context().sampled());
  Span child = root.StartChild("noop");
  child.AddTag("k", std::uint64_t{10});
  child.Finish();
  root.Finish();
  EXPECT_EQ(sink.size(), 0u);

  // Children of an unsampled context are no-ops too.
  Span orphan(&sink, clock, TraceContext{}, "dangling");
  orphan.Finish();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TracerTest, SamplingIsDeterministicOneInN) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 3}, clock);
  std::vector<bool> sampled;
  for (int i = 0; i < 9; ++i) {
    Span span = tracer.StartTrace("q");
    sampled.push_back(span.sampled());
  }
  // Counter-based: exactly every third call, starting with the first.
  EXPECT_EQ(sampled, std::vector<bool>({true, false, false, true, false,
                                        false, true, false, false}));
  EXPECT_EQ(tracer.traces_started(), 3u);
  EXPECT_EQ(sink.size(), 3u);
}

TEST(TracerTest, DistinctSeedsYieldDistinctTraceIds) {
  TraceSink sink;
  ManualClock clock;
  Tracer a(&sink, {.sample_every = 1, .seed = 1}, clock);
  Tracer b(&sink, {.sample_every = 1, .seed = 2}, clock);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.insert(a.StartTrace("q").context().trace_id);
    ids.insert(b.StartTrace("q").context().trace_id);
  }
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(ids.count(0), 0u);
}

TEST(TraceSinkTest, CapacityBoundsAndCountsDrops) {
  TraceSink sink(/*stripes=*/2, /*max_spans=*/4);
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  for (int i = 0; i < 10; ++i) tracer.StartTrace("q").Finish();
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.Collect().size(), 0u);
}

TEST(SlowLogTest, KeepsWorstNOverThreshold) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  SlowQueryLog log({.threshold_micros = 100, .capacity = 2}, &sink);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    Span root = tracer.StartTrace("query");
    ids.push_back(root.context().trace_id);
    clock.AdvanceMicros(50 * (i + 1));  // durations 50, 100, 150, 200
    root.Finish();
  }
  log.Offer(ids[0], 50);    // under threshold: ignored
  log.Offer(ids[1], 150);
  log.Offer(ids[2], 120);
  log.Offer(ids[3], 200);

  const auto worst = log.Worst();
  ASSERT_EQ(worst.size(), 2u);  // capacity 2: worst two retained
  EXPECT_EQ(worst[0].trace_id, ids[3]);
  EXPECT_EQ(worst[0].duration_micros, 200);
  EXPECT_EQ(worst[1].trace_id, ids[1]);
  EXPECT_EQ(log.offered(), 3u);  // only over-threshold offers count
  // Rendered trees were captured at Offer() time.
  EXPECT_NE(worst[0].rendered.find("query"), std::string::npos);
  EXPECT_NE(log.Render().find("query"), std::string::npos);
}

FlightRecord MakeRecord(Micros total, std::uint64_t trace_id = 0) {
  FlightRecord record;
  record.trace_id = trace_id;
  record.total_micros = total;
  record.set_stage(FlightStage::kExtract, total / 2);
  record.set_stage(FlightStage::kScan, total / 2);
  return record;
}

TEST(FlightRecorderTest, RecordsEveryQueryAndWrapsRing) {
  FlightRecorder recorder({.stripes = 2, .capacity_per_stripe = 4});
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(recorder.Record(MakeRecord(i * 10)), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  const auto snapshot = recorder.Snapshot();
  // 2 stripes x 4 slots: only the newest 8 survive, ordinal-ascending.
  ASSERT_EQ(snapshot.size(), 8u);
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].ordinal, snapshot[i].ordinal);
  }
  EXPECT_EQ(snapshot.back().ordinal, 20u);
  EXPECT_EQ(snapshot.back().total_micros, 200);
  EXPECT_EQ(snapshot.back().stage(FlightStage::kScan), 100);
}

TEST(FlightRecorderTest, NegativeStageTimesClampToZero) {
  FlightRecord record;
  record.set_stage(FlightStage::kFanIn, -50);
  EXPECT_EQ(record.stage(FlightStage::kFanIn), 0);
}

TEST(FlightRecorderTest, SloBreachDumpsOnceUntilRearmed) {
  FlightRecorder recorder(
      {.stripes = 1, .capacity_per_stripe = 8, .slo_micros = 1000});
  recorder.Record(MakeRecord(500));  // under SLO: no anomaly
  EXPECT_EQ(recorder.anomalies(), 0u);
  EXPECT_TRUE(recorder.armed());

  recorder.Record(MakeRecord(5000, /*trace_id=*/0x77));
  EXPECT_EQ(recorder.anomalies(), 1u);
  EXPECT_EQ(recorder.dumps_taken(), 1u);
  EXPECT_FALSE(recorder.armed());

  // Follow-on breaches count but do not overwrite the first dump.
  recorder.Record(MakeRecord(9000));
  EXPECT_EQ(recorder.anomalies(), 2u);
  EXPECT_EQ(recorder.dumps_taken(), 1u);

  const auto dumps = recorder.dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].reason.find("slo breach"), std::string::npos);
  // The dump's ring contains the breaching query (and its neighbors).
  bool found = false;
  for (const auto& record : dumps[0].records) {
    if (record.trace_id == 0x77) found = true;
  }
  EXPECT_TRUE(found);

  recorder.Rearm();
  EXPECT_TRUE(recorder.armed());
  recorder.DumpOnAnomaly("external trigger");
  EXPECT_EQ(recorder.dumps_taken(), 2u);
  EXPECT_EQ(recorder.dumps().size(), 2u);
  EXPECT_EQ(recorder.dumps()[1].reason, "external trigger");
}

TEST(FlightRecorderTest, MaxDumpsEvictsOldest) {
  FlightRecorder recorder(
      {.stripes = 1, .capacity_per_stripe = 4, .max_dumps = 2});
  for (int i = 0; i < 3; ++i) {
    recorder.DumpOnAnomaly("dump " + std::to_string(i));
    recorder.Rearm();
  }
  const auto dumps = recorder.dumps();
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].reason, "dump 1");
  EXPECT_EQ(dumps[1].reason, "dump 2");
}

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  FlightRecorder recorder({.stripes = 1, .capacity_per_stripe = 4});
  recorder.set_enabled(false);
  EXPECT_EQ(recorder.Record(MakeRecord(100)), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.Snapshot().size(), 0u);
  recorder.set_enabled(true);
  EXPECT_NE(recorder.Record(MakeRecord(100)), 0u);
}

TEST(FlightRecorderTest, MirrorsCountersIntoRegistry) {
  Registry registry;
  FlightRecorder recorder(
      {.stripes = 1, .capacity_per_stripe = 4, .slo_micros = 10},
      MonotonicClock::Instance(), &registry);
  recorder.Record(MakeRecord(100));  // breaches, dumps
  EXPECT_EQ(registry.GetCounter("jdvs_flight_records_total").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("jdvs_flight_anomalies_total").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("jdvs_flight_dumps_total").Value(), 1u);
}

// TSan target: concurrent records, anomaly dumps and snapshots.
TEST(FlightRecorderTest, ConcurrentRecordDumpSnapshot) {
  FlightRecorder recorder(
      {.stripes = 4, .capacity_per_stripe = 64, .slo_micros = 300});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeRecord(i, static_cast<std::uint64_t>(t + 1)));
        if (i % 97 == 0) {
          (void)recorder.Snapshot();
          recorder.Rearm();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(recorder.anomalies(), 1u);
}

// ---- Critical-path analysis ----

SpanRecord MakeSpan(std::uint64_t span_id, std::uint64_t parent,
                    const char* name, Micros start, Micros end,
                    const char* node = "") {
  SpanRecord span;
  span.trace_id = 1;
  span.span_id = span_id;
  span.parent_span_id = parent;
  span.name = name;
  span.node = node;
  span.start_micros = start;
  span.end_micros = end;
  return span;
}

TEST(CriticalPathTest, EmptyAndSingleSpan) {
  EXPECT_TRUE(ComputeCriticalPath({}).empty());
  const auto report =
      ComputeCriticalPath({MakeSpan(1, 0, "query", 100, 400)});
  EXPECT_EQ(report.total_micros, 300);
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_EQ(report.segments[0].stage, "query");
  EXPECT_EQ(report.segments[0].micros, 300);
}

TEST(CriticalPathTest, ConcurrentFanOutChargesOnlyGatingChild) {
  // Root 0..1000; two concurrent scans: fast 100..300, slow 100..900.
  // The slow scan gates: path = query[0,100] + scan_slow[100,900] +
  // query[900,1000]. The fast sibling is hidden and contributes nothing.
  const auto report = ComputeCriticalPath({
      MakeSpan(1, 0, "query", 0, 1000),
      MakeSpan(2, 1, "searcher.scan", 100, 300, "fast"),
      MakeSpan(3, 1, "searcher.scan", 100, 900, "slow"),
  });
  EXPECT_EQ(report.total_micros, 1000);
  Micros total = 0;
  for (const auto& segment : report.segments) total += segment.micros;
  EXPECT_EQ(total, 1000);  // segments partition the root window exactly
  const auto by_stage = report.ByStage();
  ASSERT_EQ(by_stage.size(), 2u);
  EXPECT_EQ(by_stage[0].first, "searcher.scan");
  EXPECT_EQ(by_stage[0].second, 800);
  EXPECT_EQ(by_stage[1].first, "query");
  EXPECT_EQ(by_stage[1].second, 200);
  // No segment came from the hidden fast replica.
  for (const auto& segment : report.segments) {
    EXPECT_NE(segment.node, "fast");
  }
}

TEST(CriticalPathTest, NestedChainAttributesInnermost) {
  // query > broker.search > searcher.scan, sequential nesting.
  const auto report = ComputeCriticalPath({
      MakeSpan(1, 0, "query", 0, 1000),
      MakeSpan(2, 1, "broker.search", 200, 900),
      MakeSpan(3, 2, "searcher.scan", 300, 800),
  });
  const auto by_stage = report.ByStage();
  ASSERT_EQ(by_stage.size(), 3u);
  // scan 500, query 300 (0..200 + 900..1000), broker 200 (the gaps).
  EXPECT_EQ(by_stage[0].first, "searcher.scan");
  EXPECT_EQ(by_stage[0].second, 500);
  EXPECT_EQ(by_stage[1].first, "query");
  EXPECT_EQ(by_stage[1].second, 300);
  EXPECT_EQ(by_stage[2].first, "broker.search");
  EXPECT_EQ(by_stage[2].second, 200);
  EXPECT_NE(report.Summary().find("searcher.scan 500us (50%)"),
            std::string::npos)
      << report.Summary();
}

TEST(CriticalPathTest, ChildOverhangingParentIsClamped) {
  // A hedge straggler finishing after its parent must not produce negative
  // or out-of-window segments.
  const auto report = ComputeCriticalPath({
      MakeSpan(1, 0, "query", 0, 500),
      MakeSpan(2, 1, "searcher.scan", 100, 900),  // overhangs the root
  });
  Micros total = 0;
  for (const auto& segment : report.segments) {
    EXPECT_GE(segment.micros, 0);
    total += segment.micros;
  }
  EXPECT_EQ(total, 500);
}

TEST(CriticalPathTest, MalformedTreesDegradeGracefully) {
  // Orphan parent pointer: treated as a root candidate, never crashes.
  const auto orphan = ComputeCriticalPath({
      MakeSpan(2, 99, "scan", 100, 300),
  });
  EXPECT_FALSE(orphan.empty());

  // Duplicate span ids: first wins, no infinite descent.
  const auto dupes = ComputeCriticalPath({
      MakeSpan(1, 0, "query", 0, 100),
      MakeSpan(1, 0, "query", 0, 200),
  });
  EXPECT_FALSE(dupes.empty());

  // Self-parent and a 2-cycle: the visited guard stops the walk.
  const auto cycle = ComputeCriticalPath({
      MakeSpan(1, 2, "a", 0, 100),
      MakeSpan(2, 1, "b", 0, 100),
  });
  EXPECT_FALSE(cycle.empty());
  const auto self_parent = ComputeCriticalPath({
      MakeSpan(1, 1, "a", 0, 100),
  });
  EXPECT_FALSE(self_parent.empty());
}

TEST(CriticalPathTest, FlightRecordDecomposition) {
  FlightRecord record;
  record.total_micros = 1000;
  record.set_stage(FlightStage::kQueueWait, 100);
  record.set_stage(FlightStage::kExtract, 200);
  record.set_stage(FlightStage::kFanOut, 700);  // skipped: decomposed below
  record.set_stage(FlightStage::kScan, 600);
  record.set_stage(FlightStage::kFanIn, 100);
  record.set_stage(FlightStage::kRank, 0);  // zero stages omitted
  const auto report = CriticalPathFromFlightRecord(record);
  EXPECT_EQ(report.total_micros, 1000);
  const auto by_stage = report.ByStage();
  ASSERT_EQ(by_stage.size(), 4u);
  EXPECT_EQ(by_stage[0].first, "searcher_scan");
  EXPECT_EQ(by_stage[0].second, 600);
  EXPECT_NE(report.Summary().find("searcher_scan 600us (60%)"),
            std::string::npos)
      << report.Summary();
}

TEST(CriticalPathTest, AggregatorFoldsIntoRegistry) {
  TraceSink sink;
  Registry registry;
  ManualClock clock(1000);
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  CriticalPathAggregator aggregator(&sink, &registry);

  Span root = tracer.StartTrace("query", "blender-0");
  const std::uint64_t trace_id = root.context().trace_id;
  clock.AdvanceMicros(100);
  {
    Span scan = root.StartChild("searcher.scan", "searcher-0");
    clock.AdvanceMicros(400);
  }
  clock.AdvanceMicros(50);
  root.Finish();

  const auto report = aggregator.Observe(trace_id);
  EXPECT_EQ(report.total_micros, 550);
  EXPECT_EQ(aggregator.observed(), 1u);
  const Histogram* scan = registry.FindHistogram(
      Labeled("jdvs_critical_path_micros", "stage", "searcher.scan"));
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->Count(), 1u);
  EXPECT_EQ(scan->Sum(), 400);
  const Histogram* query = registry.FindHistogram(
      Labeled("jdvs_critical_path_micros", "stage", "query"));
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->Sum(), 150);

  const std::string table = RenderCriticalPathTable(registry);
  EXPECT_NE(table.find("searcher.scan"), std::string::npos) << table;
  // Unknown trace: empty report, nothing folded.
  EXPECT_TRUE(aggregator.Observe(0xdeadbeef).empty());
  EXPECT_EQ(aggregator.observed(), 1u);
}

// ---- Introspection pages ----

TEST(IntrospectionTest, PagesRenderRegisteredState) {
  Registry registry;
  TraceSink sink;
  ManualClock clock(500);
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  SlowQueryLog slow_log({.threshold_micros = 10, .capacity = 4}, &sink);
  FlightRecorder recorder(
      {.stripes = 1, .capacity_per_stripe = 8, .slo_micros = 1000});
  registry.GetCounter("jdvs_queries_total").Increment(3);

  Span root = tracer.StartTrace("query", "blender-0");
  const std::uint64_t trace_id = root.context().trace_id;
  clock.AdvanceMicros(100);
  root.Finish();
  slow_log.Offer(trace_id, 100);
  recorder.Record(MakeRecord(2000, trace_id));  // breaches: dump retained

  Introspection pages;
  pages.SetRegistry(&registry);
  pages.SetTraceSink(&sink);
  pages.SetSlowLog(&slow_log);
  pages.SetFlightRecorder(&recorder);
  pages.AddStatusSection("cluster", [](std::ostream& os) {
    os << "3 blenders, all healthy\n";
  });

  const std::string statusz = pages.StatusZ();
  EXPECT_NE(statusz.find("statusz"), std::string::npos);
  EXPECT_NE(statusz.find("cluster"), std::string::npos);
  EXPECT_NE(statusz.find("3 blenders, all healthy"), std::string::npos);
  EXPECT_NE(statusz.find("flight recorder"), std::string::npos);

  const std::string tracez = pages.TraceZ();
  EXPECT_NE(tracez.find("query @blender-0"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("slo breach"), std::string::npos) << tracez;
  // The flight record's critical-path summary names its top stage.
  EXPECT_NE(tracez.find("extract"), std::string::npos) << tracez;

  const std::string metricz = pages.MetricZ();
  EXPECT_NE(metricz.find("jdvs_queries_total 3"), std::string::npos);

  // Pages with no sources at all still render (empty scaffolding).
  Introspection bare;
  EXPECT_NE(bare.StatusZ().find("statusz"), std::string::npos);
  EXPECT_FALSE(bare.TraceZ().empty());
  EXPECT_FALSE(bare.MetricZ().empty());
}

// Stress: concurrent span finishes, counter increments, and reads. Run
// under TSan to validate the striped sink and relaxed-atomic instruments.
TEST(ObsStressTest, ConcurrentRecordAndRead) {
  TraceSink sink(/*stripes=*/4);
  Registry registry;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  Counter& counter = registry.GetCounter("jdvs_stress_total");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span root = tracer.StartTrace("q", "node-" + std::to_string(t));
        Span child = root.StartChild("scan");
        child.AddTag("i", static_cast<std::uint64_t>(i));
        child.Finish();
        root.Finish();
        counter.Increment();
        registry.GetHistogram(Labeled("jdvs_stress_lat", "stage", "scan"))
            .Record(i);
        if (i % 100 == 0) {
          (void)sink.Collect();
          (void)registry.ExpositionText();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.size(), 2u * kThreads * kPerThread);
  EXPECT_EQ(registry
                .GetHistogram(Labeled("jdvs_stress_lat", "stage", "scan"))
                .Count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace jdvs::obs

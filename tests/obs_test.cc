// Tests for the observability subsystem: metrics registry semantics and
// exposition format, span/trace nesting and rendering, sampling
// determinism, the slow-query log, and multithreaded stress on the
// registry + sink (run under TSan to validate the lock-free paths).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jdvs::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAddAndValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(5);
  gauge.Decrement();
  EXPECT_EQ(gauge.Value(), 14);
  gauge.Add(-20);
  EXPECT_EQ(gauge.Value(), -6);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.GetCounter("jdvs_x_total");
  Counter& b = registry.GetCounter("jdvs_x_total");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  EXPECT_NE(&registry.GetCounter("jdvs_y_total"), &a);
  EXPECT_EQ(&registry.GetHistogram("jdvs_h"), &registry.GetHistogram("jdvs_h"));
}

TEST(RegistryTest, LabeledBuildsPrometheusSeriesName) {
  EXPECT_EQ(Labeled("jdvs_cache_hits_total", "owner", "bl-0"),
            "jdvs_cache_hits_total{owner=\"bl-0\"}");
}

TEST(RegistryTest, HasAndFindNeverCreate) {
  Registry registry;
  EXPECT_FALSE(registry.Has("jdvs_x_total"));
  EXPECT_EQ(registry.FindCounter("jdvs_x_total"), nullptr);
  EXPECT_EQ(registry.FindHistogram("jdvs_h"), nullptr);
  registry.GetCounter("jdvs_x_total");
  registry.GetHistogram("jdvs_h");
  EXPECT_TRUE(registry.Has("jdvs_x_total"));
  EXPECT_EQ(registry.FindCounter("jdvs_x_total"),
            &registry.GetCounter("jdvs_x_total"));
  EXPECT_EQ(registry.FindHistogram("jdvs_h"), &registry.GetHistogram("jdvs_h"));
  EXPECT_EQ(registry.FindGauge("jdvs_g"), nullptr);
}

TEST(RegistryTest, ExpositionFormat) {
  Registry registry;
  registry.GetCounter(Labeled("jdvs_hits_total", "owner", "a")).Increment(3);
  registry.GetCounter(Labeled("jdvs_hits_total", "owner", "b")).Increment(7);
  registry.GetGauge("jdvs_depth").Set(5);
  Histogram& h = registry.GetHistogram(Labeled("jdvs_lat", "stage", "scan"));
  h.Record(100);
  h.Record(300);

  const std::string text = registry.ExpositionText();
  // One TYPE line per family, series sorted under it.
  EXPECT_NE(text.find("# TYPE jdvs_hits_total counter\n"
                      "jdvs_hits_total{owner=\"a\"} 3\n"
                      "jdvs_hits_total{owner=\"b\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jdvs_depth gauge\njdvs_depth 5\n"),
            std::string::npos);
  // Histograms render as summaries: _count, _sum, and quantile series.
  EXPECT_NE(text.find("# TYPE jdvs_lat summary\n"), std::string::npos);
  EXPECT_NE(text.find("jdvs_lat_count{stage=\"scan\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("jdvs_lat_sum{stage=\"scan\"} 400\n"),
            std::string::npos);
  EXPECT_NE(text.find("jdvs_lat{stage=\"scan\",quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(SpanTest, ParentChildNesting) {
  TraceSink sink;
  ManualClock clock(1000);
  Tracer tracer(&sink, {.sample_every = 1}, clock);

  Span root = tracer.StartTrace("query", "blender-0");
  ASSERT_TRUE(root.sampled());
  const TraceContext root_ctx = root.context();
  EXPECT_NE(root_ctx.trace_id, 0u);
  clock.AdvanceMicros(50);
  {
    Span child = root.StartChild("broker.search", "broker-0");
    EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    EXPECT_NE(child.context().span_id, root_ctx.span_id);
    clock.AdvanceMicros(200);
    child.AddTag("hits", std::uint64_t{7});
  }  // child finishes via RAII
  clock.AdvanceMicros(10);
  root.Finish();

  const auto spans = sink.SpansFor(root_ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: root first.
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent_span_id, 0u);
  EXPECT_EQ(spans[0].DurationMicros(), 260);
  EXPECT_EQ(spans[1].name, "broker.search");
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[1].DurationMicros(), 200);

  const std::string tree = sink.Render(root_ctx.trace_id);
  EXPECT_NE(tree.find("query @blender-0 260us"), std::string::npos);
  EXPECT_NE(tree.find("`- broker.search @broker-0 200us hits=7"),
            std::string::npos);
  // Child is indented under the root.
  EXPECT_LT(tree.find("query"), tree.find("broker.search"));
}

TEST(SpanTest, ErrorStatusRendered) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  Span root = tracer.StartTrace("query");
  const std::uint64_t trace_id = root.context().trace_id;
  root.SetError("partition 3 unavailable");
  root.Finish();
  const auto spans = sink.SpansFor(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
  EXPECT_NE(sink.Render(trace_id).find("[ERROR: partition 3 unavailable]"),
            std::string::npos);
}

TEST(SpanTest, UnsampledSpansAreNoOps) {
  TraceSink sink;
  ManualClock clock;
  Tracer off(&sink, {.sample_every = 0}, clock);
  Span root = off.StartTrace("query");
  EXPECT_FALSE(root.sampled());
  EXPECT_FALSE(root.context().sampled());
  Span child = root.StartChild("noop");
  child.AddTag("k", std::uint64_t{10});
  child.Finish();
  root.Finish();
  EXPECT_EQ(sink.size(), 0u);

  // Children of an unsampled context are no-ops too.
  Span orphan(&sink, clock, TraceContext{}, "dangling");
  orphan.Finish();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TracerTest, SamplingIsDeterministicOneInN) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 3}, clock);
  std::vector<bool> sampled;
  for (int i = 0; i < 9; ++i) {
    Span span = tracer.StartTrace("q");
    sampled.push_back(span.sampled());
  }
  // Counter-based: exactly every third call, starting with the first.
  EXPECT_EQ(sampled, std::vector<bool>({true, false, false, true, false,
                                        false, true, false, false}));
  EXPECT_EQ(tracer.traces_started(), 3u);
  EXPECT_EQ(sink.size(), 3u);
}

TEST(TracerTest, DistinctSeedsYieldDistinctTraceIds) {
  TraceSink sink;
  ManualClock clock;
  Tracer a(&sink, {.sample_every = 1, .seed = 1}, clock);
  Tracer b(&sink, {.sample_every = 1, .seed = 2}, clock);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.insert(a.StartTrace("q").context().trace_id);
    ids.insert(b.StartTrace("q").context().trace_id);
  }
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(ids.count(0), 0u);
}

TEST(TraceSinkTest, CapacityBoundsAndCountsDrops) {
  TraceSink sink(/*stripes=*/2, /*max_spans=*/4);
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  for (int i = 0; i < 10; ++i) tracer.StartTrace("q").Finish();
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.Collect().size(), 0u);
}

TEST(SlowLogTest, KeepsWorstNOverThreshold) {
  TraceSink sink;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  SlowQueryLog log({.threshold_micros = 100, .capacity = 2}, &sink);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    Span root = tracer.StartTrace("query");
    ids.push_back(root.context().trace_id);
    clock.AdvanceMicros(50 * (i + 1));  // durations 50, 100, 150, 200
    root.Finish();
  }
  log.Offer(ids[0], 50);    // under threshold: ignored
  log.Offer(ids[1], 150);
  log.Offer(ids[2], 120);
  log.Offer(ids[3], 200);

  const auto worst = log.Worst();
  ASSERT_EQ(worst.size(), 2u);  // capacity 2: worst two retained
  EXPECT_EQ(worst[0].trace_id, ids[3]);
  EXPECT_EQ(worst[0].duration_micros, 200);
  EXPECT_EQ(worst[1].trace_id, ids[1]);
  EXPECT_EQ(log.offered(), 3u);  // only over-threshold offers count
  // Rendered trees were captured at Offer() time.
  EXPECT_NE(worst[0].rendered.find("query"), std::string::npos);
  EXPECT_NE(log.Render().find("query"), std::string::npos);
}

// Stress: concurrent span finishes, counter increments, and reads. Run
// under TSan to validate the striped sink and relaxed-atomic instruments.
TEST(ObsStressTest, ConcurrentRecordAndRead) {
  TraceSink sink(/*stripes=*/4);
  Registry registry;
  ManualClock clock;
  Tracer tracer(&sink, {.sample_every = 1}, clock);
  Counter& counter = registry.GetCounter("jdvs_stress_total");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span root = tracer.StartTrace("q", "node-" + std::to_string(t));
        Span child = root.StartChild("scan");
        child.AddTag("i", static_cast<std::uint64_t>(i));
        child.Finish();
        root.Finish();
        counter.Increment();
        registry.GetHistogram(Labeled("jdvs_stress_lat", "stage", "scan"))
            .Record(i);
        if (i % 100 == 0) {
          (void)sink.Collect();
          (void)registry.ExpositionText();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.size(), 2u * kThreads * kPerThread);
  EXPECT_EQ(registry
                .GetHistogram(Labeled("jdvs_stress_lat", "stage", "scan"))
                .Count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace jdvs::obs

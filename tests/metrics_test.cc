// Tests for the metrics/reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/clock.h"
#include "metrics/cdf.h"
#include "metrics/latency_recorder.h"
#include "metrics/qps_counter.h"
#include "metrics/time_series.h"
#include "obs/registry.h"

namespace jdvs {
namespace {

TEST(FormatMicrosTest, PicksUnits) {
  EXPECT_EQ(FormatMicros(0), "0us");
  EXPECT_EQ(FormatMicros(999), "999us");
  EXPECT_EQ(FormatMicros(1500), "1.5ms");
  EXPECT_EQ(FormatMicros(132000), "132.0ms");
  EXPECT_EQ(FormatMicros(2'100'000), "2.10s");
}

TEST(SummarizeLatencyTest, ContainsAllFields) {
  Histogram h;
  h.Record(1000);
  h.Record(2000);
  const std::string s = SummarizeLatency(h, "query");
  EXPECT_NE(s.find("query:"), std::string::npos);
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(PrintLatencyTest, WritesLine) {
  Histogram h;
  h.Record(10);
  std::ostringstream os;
  PrintLatency(os, h, "x");
  EXPECT_NE(os.str().find("x: n=1"), std::string::npos);
  EXPECT_EQ(os.str().back(), '\n');
}

TEST(QpsCounterTest, CountsAndComputesRate) {
  ManualClock clock(0);
  QpsCounter counter(clock);
  counter.Add(100);
  clock.AdvanceMicros(2'000'000);
  EXPECT_EQ(counter.count(), 100u);
  EXPECT_NEAR(counter.Qps(), 50.0, 1e-9);
  counter.Reset();
  EXPECT_EQ(counter.count(), 0u);
}

TEST(QpsCounterTest, ZeroElapsedIsZeroQps) {
  ManualClock clock(5);
  QpsCounter counter(clock);
  counter.Add();
  EXPECT_EQ(counter.Qps(), 0.0);
}

TEST(HourlySeriesTest, CountsByHourAndType) {
  HourlyUpdateSeries series;
  series.AddCount(11, UpdateType::kAddProduct, 3);
  series.AddCount(11, UpdateType::kRemoveProduct);
  series.AddCount(4, UpdateType::kAttributeUpdate);
  EXPECT_EQ(series.CountAt(11, UpdateType::kAddProduct), 3u);
  EXPECT_EQ(series.CountAt(11, UpdateType::kRemoveProduct), 1u);
  EXPECT_EQ(series.CountAt(11, UpdateType::kAttributeUpdate), 0u);
  EXPECT_EQ(series.TotalAt(11), 4u);
  EXPECT_EQ(series.TotalAt(4), 1u);
  EXPECT_EQ(series.TotalAt(0), 0u);
}

TEST(HourlySeriesTest, LatencyPerHour) {
  HourlyUpdateSeries series;
  series.AddLatency(3, 100);
  series.AddLatency(3, 300);
  EXPECT_EQ(series.LatencyAt(3).Count(), 2u);
  EXPECT_EQ(series.LatencyAt(4).Count(), 0u);
  EXPECT_NEAR(series.LatencyAt(3).Mean(), 200.0, 1.0);
}

TEST(CdfPrintTest, EmptyHistogram) {
  Histogram h;
  std::ostringstream os;
  PrintCdfSeconds(os, h);
  EXPECT_EQ(os.str(), "(empty)\n");
}

TEST(CdfPrintTest, MonotoneOutputEndsAtOne) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1000);
  std::ostringstream os;
  PrintCdfSeconds(os, h, 10);
  std::istringstream is(os.str());
  double last_v = -1.0;
  double last_f = -1.0;
  double v;
  double f;
  int rows = 0;
  while (is >> v >> f) {
    EXPECT_GT(v, last_v);
    EXPECT_GT(f, last_f);
    last_v = v;
    last_f = f;
    ++rows;
  }
  EXPECT_GT(rows, 2);
  EXPECT_LE(rows, 15);  // downsampled
  EXPECT_DOUBLE_EQ(last_f, 1.0);
}

// Regression test for the Prometheus histogram exposition: `_bucket` series
// must be cumulative, ascending in `le`, end with `le="+Inf"` equal to the
// count, and agree with _sum/_count. (An earlier rendering emitted summary
// quantiles instead, which scrapers cannot aggregate across instances.)
TEST(HistogramExpositionTest, CumulativeBucketsParseCorrectly) {
  obs::Registry registry;
  Histogram& h =
      registry.GetHistogram(obs::Labeled("jdvs_resp_micros", "tier", "web"));
  const std::int64_t values[] = {3, 40, 40, 512, 9000, 70000, 70001};
  std::int64_t expected_sum = 0;
  for (const std::int64_t v : values) {
    h.Record(v);
    expected_sum += v;
  }

  const std::string text = registry.ExpositionText();
  std::istringstream is(text);
  std::string line;
  std::int64_t last_upper = -1;
  std::uint64_t last_cum = 0;
  std::uint64_t inf_cum = 0;
  int buckets = 0;
  bool saw_inf = false;
  while (std::getline(is, line)) {
    const std::string prefix = "jdvs_resp_micros_bucket{tier=\"web\",le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t le_end = line.find('"', prefix.size());
    ASSERT_NE(le_end, std::string::npos);
    const std::string le = line.substr(prefix.size(), le_end - prefix.size());
    const std::uint64_t cum =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(cum, last_cum) << "buckets must be cumulative: " << line;
    last_cum = cum;
    if (le == "+Inf") {
      saw_inf = true;
      inf_cum = cum;
      continue;
    }
    EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket";
    const std::int64_t upper = std::stoll(le);
    EXPECT_GT(upper, last_upper) << "le bounds must ascend: " << line;
    last_upper = upper;
    ++buckets;
  }
  EXPECT_GE(buckets, 4);  // 7 values spread over >= 4 distinct buckets
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_cum, 7u);  // +Inf == observation count

  EXPECT_NE(text.find("jdvs_resp_micros_count{tier=\"web\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("jdvs_resp_micros_sum{tier=\"web\"} " +
                      std::to_string(expected_sum) + "\n"),
            std::string::npos);
}

}  // namespace
}  // namespace jdvs

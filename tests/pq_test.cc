// Tests for product quantization: codebook training, encode/decode, ADC
// identity, the code store, and the IVF-PQ index.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "embedding/extractor.h"
#include "index/realtime_indexer.h"
#include "pq/codebook.h"
#include "pq/ivfpq_index.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

std::vector<FeatureVector> RandomTraining(std::size_t count, std::size_t dim,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    points.push_back(std::move(v));
  }
  return points;
}

TEST(ProductQuantizerTest, EncodeDecodeShapes) {
  const auto training = RandomTraining(500, 32, 1);
  ProductQuantizerConfig config;
  config.num_subspaces = 8;
  config.codebook_size = 16;
  const ProductQuantizer pq = ProductQuantizer::Train(training, config);
  EXPECT_EQ(pq.dim(), 32u);
  EXPECT_EQ(pq.num_subspaces(), 8u);
  EXPECT_EQ(pq.subspace_dim(), 4u);
  EXPECT_EQ(pq.code_bytes(), 8u);

  const PqCode code = pq.Encode(training[0]);
  EXPECT_EQ(code.size(), 8u);
  for (const auto c : code) EXPECT_LT(c, 16);
  EXPECT_EQ(pq.Decode(code).size(), 32u);
}

TEST(ProductQuantizerTest, EncodingIsDeterministic) {
  const auto training = RandomTraining(200, 16, 2);
  ProductQuantizerConfig config;
  config.num_subspaces = 4;
  config.codebook_size = 32;
  const ProductQuantizer pq = ProductQuantizer::Train(training, config);
  EXPECT_EQ(pq.Encode(training[5]), pq.Encode(training[5]));
}

TEST(ProductQuantizerTest, ReconstructionErrorReasonable) {
  const auto training = RandomTraining(2000, 32, 3);
  ProductQuantizerConfig config;
  config.num_subspaces = 8;
  config.codebook_size = 64;
  const ProductQuantizer pq = ProductQuantizer::Train(training, config);
  double total_err = 0.0;
  double total_norm = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto& v = training[i];
    total_err += L2SquaredDistance(v, pq.Decode(pq.Encode(v)));
    total_norm += L2SquaredDistance(v, FeatureVector(32, 0.f));
  }
  // Quantization noise well below the signal energy.
  EXPECT_LT(total_err, 0.5 * total_norm);
}

TEST(ProductQuantizerTest, MoreCentroidsLowerError) {
  const auto training = RandomTraining(2000, 16, 4);
  const auto error_for = [&](std::size_t ks) {
    ProductQuantizerConfig config;
    config.num_subspaces = 4;
    config.codebook_size = ks;
    const ProductQuantizer pq = ProductQuantizer::Train(training, config);
    double err = 0.0;
    for (int i = 0; i < 200; ++i) {
      err += L2SquaredDistance(training[i],
                               pq.Decode(pq.Encode(training[i])));
    }
    return err;
  };
  EXPECT_LT(error_for(64), error_for(4));
}

TEST(ProductQuantizerTest, AdcMatchesDecodedDistance) {
  const auto training = RandomTraining(500, 24, 5);
  ProductQuantizerConfig config;
  config.num_subspaces = 6;
  config.codebook_size = 32;
  const ProductQuantizer pq = ProductQuantizer::Train(training, config);
  Rng rng(6);
  for (int t = 0; t < 20; ++t) {
    FeatureVector query(24);
    for (float& x : query) x = static_cast<float>(rng.NextGaussian());
    const auto table = pq.BuildDistanceTable(query);
    const PqCode code = pq.Encode(training[t]);
    // ADC == exact distance to the reconstruction (up to FP rounding).
    const float adc = pq.DistanceWithTable(table, code.data());
    const float exact = pq.AsymmetricDistance(query, code);
    EXPECT_NEAR(adc, exact, 1e-3f * (1.f + exact));
  }
}

TEST(ProductQuantizerTest, SnapshotRoundTripThroughRawCodebooks) {
  const auto training = RandomTraining(300, 16, 7);
  ProductQuantizerConfig config;
  config.num_subspaces = 4;
  config.codebook_size = 16;
  const ProductQuantizer original = ProductQuantizer::Train(training, config);
  const ProductQuantizer restored(original.dim(), original.num_subspaces(),
                                  original.codebook_size(),
                                  original.codebooks());
  EXPECT_EQ(original.Encode(training[0]), restored.Encode(training[0]));
}

TEST(CodeSetTest, AppendAndReadBack) {
  CodeSet codes(4, /*chunk_codes=*/8);
  for (std::uint8_t i = 0; i < 100; ++i) {
    const PqCode code = {i, static_cast<std::uint8_t>(i + 1),
                         static_cast<std::uint8_t>(i + 2),
                         static_cast<std::uint8_t>(i + 3)};
    EXPECT_EQ(codes.Append(code), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(codes.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const std::uint8_t* code = codes.At(i);
    EXPECT_EQ(code[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(code[3], static_cast<std::uint8_t>(i + 3));
  }
  EXPECT_GT(codes.memory_bytes(), 0u);
}

// ---- IVF-PQ index ----

struct PqFixture {
  PqFixture()
      : embedder({.dim = 32, .num_categories = 8, .seed = 11}) {
    std::vector<FeatureVector> training;
    for (int i = 0; i < 800; ++i) {
      const ProductId pid = 1 + (i % 200);
      training.push_back(embedder.Extract(
          {MakeImageUrl(pid, static_cast<std::uint32_t>(i / 200)), pid,
           static_cast<CategoryId>(pid % 8)}));
    }
    KMeansConfig kc;
    kc.num_clusters = 16;
    quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
    ProductQuantizerConfig pc;
    pc.num_subspaces = 8;
    pc.codebook_size = 64;
    pq = std::make_shared<ProductQuantizer>(
        ProductQuantizer::Train(training, pc));
  }

  std::string MakeUrl(ProductId pid, std::uint32_t k) {
    return MakeImageUrl(pid, k);
  }

  void Fill(IvfPqIndex& index, std::size_t products, std::size_t images) {
    const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 1};
    for (ProductId pid = 1; pid <= products; ++pid) {
      for (std::uint32_t k = 0; k < images; ++k) {
        const std::string url = MakeUrl(pid, k);
        index.AddImage(url, pid, static_cast<CategoryId>(pid % 8), attrs, "",
                       embedder.Extract({url, pid,
                                         static_cast<CategoryId>(pid % 8)}));
      }
    }
  }

  SyntheticEmbedder embedder;
  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::shared_ptr<const ProductQuantizer> pq;
};

TEST(IvfPqIndexTest, FindsSubjectProduct) {
  PqFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 100, 3);
  EXPECT_EQ(index.size(), 300u);

  int hits = 0;
  for (ProductId pid = 1; pid <= 20; ++pid) {
    const auto query =
        fx.embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 8), pid);
    const auto results = index.Search(query, 5);
    ASSERT_FALSE(results.empty());
    if (results[0].product_id == pid) ++hits;
  }
  EXPECT_GE(hits, 18);  // PQ is lossy; near-perfect on separated data
}

TEST(IvfPqIndexTest, ValidityFiltering) {
  PqFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 20, 2);
  const auto query = fx.embedder.ExtractQuery(7, 7 % 8, 3);
  ASSERT_FALSE(index.Search(query, 3).empty());
  EXPECT_EQ(index.SetProductValidity(7, false), 2u);
  for (const auto& hit : index.Search(query, 3)) {
    EXPECT_NE(hit.product_id, 7u);
  }
}

TEST(IvfPqIndexTest, RerankingImprovesOrdering) {
  PqFixture fx;
  IvfPqIndexConfig plain;
  plain.nprobe = 16;
  IvfPqIndexConfig reranked = plain;
  reranked.keep_raw_vectors = true;
  reranked.rerank_candidates = 50;

  IvfPqIndex index_plain(fx.quantizer, fx.pq, plain);
  IvfPqIndex index_rerank(fx.quantizer, fx.pq, reranked);
  fx.Fill(index_plain, 150, 3);
  fx.Fill(index_rerank, 150, 3);

  // Re-ranked distances are exact; plain ADC distances are approximations.
  // Re-ranked top-1 must match exact search at least as often.
  int plain_top1 = 0;
  int rerank_top1 = 0;
  for (ProductId pid = 1; pid <= 40; ++pid) {
    const auto query =
        fx.embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 8), pid);
    const auto p = index_plain.Search(query, 1);
    const auto r = index_rerank.Search(query, 1);
    if (!p.empty() && p[0].product_id == pid) ++plain_top1;
    if (!r.empty() && r[0].product_id == pid) ++rerank_top1;
  }
  EXPECT_GE(rerank_top1, plain_top1);
  EXPECT_GE(rerank_top1, 38);
}

TEST(IvfPqIndexTest, StatsReportCompression) {
  PqFixture fx;
  IvfPqIndex index(fx.quantizer, fx.pq);
  fx.Fill(index, 50, 2);
  const IvfPqStats stats = index.Stats();
  EXPECT_EQ(stats.total_images, 100u);
  EXPECT_EQ(stats.valid_images, 100u);
  EXPECT_EQ(stats.code_bytes_per_vector, 8u);
  EXPECT_GT(stats.code_memory_bytes, 0u);
  EXPECT_EQ(stats.raw_memory_bytes, 0u);  // no refinement store
  // 32-d float vector = 128 B vs 8 B code: 16x compression.
  EXPECT_LT(stats.code_bytes_per_vector * 16,
            fx.quantizer->dim() * sizeof(float) + 1);
}

TEST(IvfPqIndexTest, HasImage) {
  PqFixture fx;
  IvfPqIndex index(fx.quantizer, fx.pq);
  EXPECT_FALSE(index.HasImage("jd://img/1/0"));
  fx.Fill(index, 1, 1);
  EXPECT_TRUE(index.HasImage("jd://img/1/0"));
  EXPECT_TRUE(index.HasProduct(1));
  EXPECT_FALSE(index.HasProduct(2));
}

TEST(IvfPqIndexTest, UpdateProductAttributes) {
  PqFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 5, 2);
  EXPECT_EQ(index.UpdateProductAttributes(
                3, {.sales = 777, .price_cents = 9, .praise = 1}, "new-url"),
            2u);
  const auto query = fx.embedder.ExtractQuery(3, 3 % 8, 1);
  const auto hits = index.Search(query, 2);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) {
    if (hit.product_id == 3) {
      EXPECT_EQ(hit.attributes.sales, 777u);
      EXPECT_EQ(hit.detail_url, "new-url");
    }
  }
}

TEST(IvfPqIndexTest, SetImageValidityTargetsOneImage) {
  PqFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  fx.Fill(index, 3, 2);
  EXPECT_TRUE(index.SetImageValidity("jd://img/2/0", false));
  EXPECT_FALSE(index.SetImageValidity("unknown", false));
  const auto query = fx.embedder.ExtractQuery(2, 2 % 8, 1);
  for (const auto& hit : index.Search(query, 10)) {
    EXPECT_NE(hit.image_url, "jd://img/2/0");
  }
}

// The same RealTimeIndexer drives the compressed index through the
// ImageIndex interface (Figure 6 semantics on IVF-PQ).
TEST(IvfPqIndexTest, RealTimeIndexerDrivesPqIndex) {
  PqFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  IvfPqIndex index(fx.quantizer, fx.pq, config);
  FeatureDb features(fx.embedder, ExtractionCostModel{.mean_micros = 0});
  RealTimeIndexer indexer(index, features);

  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 501;
  add.category_id = 5;
  add.attributes = {.sales = 9, .price_cents = 100, .praise = 2};
  for (std::uint32_t k = 0; k < 3; ++k) {
    add.image_urls.push_back(MakeImageUrl(501, k));
  }
  indexer.Apply(add);
  EXPECT_EQ(index.size(), 3u);
  const auto query = fx.embedder.ExtractQuery(501, 5, 3);
  ASSERT_FALSE(index.Search(query, 3).empty());
  EXPECT_EQ(index.Search(query, 3)[0].product_id, 501u);

  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = 501;
  indexer.Apply(del);
  EXPECT_TRUE(index.Search(query, 3).empty());

  indexer.Apply(add);  // re-list: reuse, no new entries
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(indexer.counters().images_revalidated, 3u);
  EXPECT_FALSE(index.Search(query, 3).empty());
}

}  // namespace
}  // namespace jdvs

// Tests for the synthetic embedder and category detector: the properties the
// systems evaluation relies on (determinism, cluster structure, cost model).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "embedding/category_detector.h"
#include "embedding/extractor.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

EmbedderConfig SmallConfig() {
  EmbedderConfig config;
  config.dim = 32;
  config.num_categories = 10;
  config.seed = 77;
  return config;
}

TEST(EmbedderTest, DeterministicPerImage) {
  const SyntheticEmbedder embedder(SmallConfig());
  const ImageContent content{"jd://img/5/0", 5, 2};
  EXPECT_EQ(embedder.Extract(content), embedder.Extract(content));
}

TEST(EmbedderTest, DifferentImagesDiffer) {
  const SyntheticEmbedder embedder(SmallConfig());
  const auto a = embedder.Extract({"jd://img/5/0", 5, 2});
  const auto b = embedder.Extract({"jd://img/5/1", 5, 2});
  EXPECT_NE(a, b);
  // But they share the product point, so they are close.
  EXPECT_LT(L2SquaredDistance(a, b), 32 * 4 * 0.25f * 0.25f * 4);
}

TEST(EmbedderTest, SameProductCloserThanSameCategory) {
  const SyntheticEmbedder embedder(SmallConfig());
  const auto a = embedder.Extract({"jd://img/5/0", 5, 2});
  const auto same_product = embedder.Extract({"jd://img/5/1", 5, 2});
  const auto same_category = embedder.Extract({"jd://img/6/0", 6, 2});
  EXPECT_LT(L2SquaredDistance(a, same_product),
            L2SquaredDistance(a, same_category));
}

TEST(EmbedderTest, SameCategoryCloserThanOtherCategory) {
  const SyntheticEmbedder embedder(SmallConfig());
  // Average over several products to smooth noise.
  double same_sum = 0.0;
  double other_sum = 0.0;
  int trials = 0;
  for (ProductId p = 1; p <= 10; ++p) {
    const auto a =
        embedder.Extract({"jd://img/a" + std::to_string(p), p, 3});
    const auto same =
        embedder.Extract({"jd://img/b" + std::to_string(p), p + 100, 3});
    const auto other =
        embedder.Extract({"jd://img/c" + std::to_string(p), p + 200, 7});
    same_sum += L2SquaredDistance(a, same);
    other_sum += L2SquaredDistance(a, other);
    ++trials;
  }
  EXPECT_LT(same_sum / trials, other_sum / trials);
}

TEST(EmbedderTest, QueryFeatureNearestToOwnProductImages) {
  const SyntheticEmbedder embedder(SmallConfig());
  const auto query = embedder.ExtractQuery(5, 2, /*query_seed=*/123);
  const auto own = embedder.Extract({"jd://img/5/0", 5, 2});
  const auto foreign = embedder.Extract({"jd://img/9/0", 9, 2});
  EXPECT_LT(L2SquaredDistance(query, own), L2SquaredDistance(query, foreign));
}

TEST(EmbedderTest, NormalizeOptionYieldsUnitVectors) {
  EmbedderConfig config = SmallConfig();
  config.normalize = true;
  const SyntheticEmbedder embedder(config);
  const auto v = embedder.Extract({"jd://img/1/0", 1, 0});
  EXPECT_NEAR(L2Norm(v), 1.f, 1e-5);
}

TEST(EmbedderTest, DifferentSeedsProduceDifferentSpaces) {
  EmbedderConfig a_config = SmallConfig();
  EmbedderConfig b_config = SmallConfig();
  b_config.seed = a_config.seed + 1;
  const SyntheticEmbedder a(a_config);
  const SyntheticEmbedder b(b_config);
  EXPECT_NE(a.Extract({"jd://img/1/0", 1, 0}),
            b.Extract({"jd://img/1/0", 1, 0}));
}

TEST(ExtractionCostModelTest, ZeroMeanDisablesCost) {
  const ExtractionCostModel model{.mean_micros = 0};
  Rng rng(1);
  EXPECT_EQ(model.SampleMicros(rng), 0);
}

TEST(ExtractionCostModelTest, SampleMeanApproximatesConfiguredMean) {
  const ExtractionCostModel model{.mean_micros = 20000, .sigma = 0.4};
  Rng rng(1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(model.SampleMicros(rng));
  EXPECT_NEAR(sum / n, 20000.0, 600.0);
}

class DetectorAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(DetectorAccuracyTest, EmpiricalAccuracyMatchesConfig) {
  const double accuracy = GetParam();
  CategoryDetectorConfig config;
  config.num_categories = 20;
  config.top1_accuracy = accuracy;
  const CategoryDetector detector(config);
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (detector.Detect(7, static_cast<std::uint64_t>(i)) == 7) ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, accuracy, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Accuracies, DetectorAccuracyTest,
                         ::testing::Values(0.5, 0.8, 0.95, 1.0));

TEST(DetectorTest, DeterministicPerQuerySeed) {
  const CategoryDetector detector({.num_categories = 10, .top1_accuracy = 0.5});
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_EQ(detector.Detect(3, seed), detector.Detect(3, seed));
  }
}

TEST(DetectorTest, WrongAnswersAreOtherCategories) {
  const CategoryDetector detector({.num_categories = 5, .top1_accuracy = 0.0});
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const CategoryId detected = detector.Detect(2, seed);
    EXPECT_NE(detected, 2u);
    EXPECT_LT(detected, 5u);
  }
}

TEST(DetectorTest, SingleCategoryAlwaysCorrect) {
  const CategoryDetector detector({.num_categories = 1, .top1_accuracy = 0.0});
  EXPECT_EQ(detector.Detect(0, 9), 0u);
}

}  // namespace
}  // namespace jdvs

// Integration tests for the continuation-passing query pipeline: thread
// counts bound CPU concurrency, not request concurrency. A 1-thread broker
// tier must sustain dozens of in-flight fan-outs, and one slow searcher must
// not stall unrelated queries flowing through the same broker thread.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "index/full_index_builder.h"
#include "search/blender.h"
#include "search/broker.h"
#include "search/cluster_builder.h"
#include "search/searcher.h"
#include "workload/catalog_gen.h"

namespace jdvs {
namespace {

// The issue's acceptance bar: broker_threads = 1, >= 32 queries in flight
// simultaneously. Under the old blocking fan-out a broker thread parked in
// future.get() for the whole searcher round trip, capping concurrent
// fan-outs at the thread count (1); the continuation pipeline dispatches
// and frees the thread, so the broker's in-flight high-water mark must
// reach the full offered load.
TEST(AsyncPipelineTest, OneBrokerThreadSustains32ConcurrentQueries) {
  ClusterConfig config;
  config.num_partitions = 2;
  config.num_brokers = 1;
  config.num_blenders = 1;
  config.broker_threads = 1;
  config.blender_threads = 4;
  config.searcher_threads = 2;
  // Slow bottom tier, instant hops above it: each scan holds its fan-out
  // open for ~20ms while the broker thread keeps dispatching.
  config.searcher_latency = LatencyModel{.base_micros = 10'000};
  config.embedder = {.dim = 8, .num_categories = 2, .seed = 1};
  config.detector = {.num_categories = 2, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 2;
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 60;
  cg.num_categories = 2;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();

  constexpr std::size_t kConcurrent = 32;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(kConcurrent);
  for (std::size_t i = 0; i < kConcurrent; ++i) {
    const auto record = cluster.catalog().Get(1 + (i % 50));
    ASSERT_TRUE(record.has_value());
    futures.push_back(cluster.blender(0).SearchAsync(
        QueryImage{record->id, record->category, i},
        QueryOptions{.k = 5, .nprobe = 0}));
  }
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    EXPECT_FALSE(response.results.empty());
    EXPECT_EQ(response.broker_failures, 0u);
  }
  EXPECT_GE(cluster.broker(0).peak_in_flight(), kConcurrent);
  EXPECT_EQ(cluster.broker(0).in_flight(), 0u);
  EXPECT_EQ(cluster.blender(0).in_flight(), 0u);
}

// One partition 300ms slow, the other instant, one broker thread between
// them. Five concurrent queries each need both partitions; a blocking
// broker would serialize them (>= 1.5s), the async broker overlaps the
// slow scans (~0.3s). The generous < 1.2s bound still proves overlap.
TEST(AsyncPipelineTest, SlowSearcherDoesNotStallUnrelatedQueries) {
  SyntheticEmbedder embedder({.dim = 16, .num_categories = 4, .seed = 3});
  CategoryDetector detector({.num_categories = 4, .top1_accuracy = 1.0});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 40;
  cg.num_categories = 4;
  GenerateCatalog(cg, catalog, images);

  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 4;
  fc.index_config.nprobe = 4;
  FullIndexBuilder builder(catalog, images, features, fc);
  const auto quantizer = builder.TrainQuantizer();
  const auto even = [](std::string_view url) { return Fnv1a64(url) % 2 == 0; };
  const auto odd = [](std::string_view url) { return Fnv1a64(url) % 2 == 1; };

  Searcher::Config slow_config;
  slow_config.threads = 8;  // the tier has capacity; it is just far away
  slow_config.latency = LatencyModel{.base_micros = 150'000};
  Searcher slow("s-slow", slow_config, features, even);
  Searcher::Config fast_config;
  fast_config.threads = 2;
  Searcher fast("s-fast", fast_config, features, odd);
  slow.InstallIndex(builder.Build(quantizer, even));
  fast.InstallIndex(builder.Build(quantizer, odd));

  Broker::Config broker_config;
  broker_config.threads = 1;
  Broker broker("b-thin", broker_config);
  broker.AddPartition({&slow});
  broker.AddPartition({&fast});

  Blender::Config blender_config;
  blender_config.default_k = 5;
  Blender blender("bl-0", blender_config, embedder, detector,
                  std::vector<Broker*>{&broker});

  constexpr std::size_t kQueries = 5;
  const Stopwatch watch(MonotonicClock::Instance());
  std::vector<std::future<QueryResponse>> futures;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto record = catalog.Get(1 + i);
    futures.push_back(
        blender.SearchAsync(QueryImage{record->id, record->category, i},
                            QueryOptions{.k = 5}));
  }
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().results.empty());
  }
  const Micros elapsed = watch.ElapsedMicros();
  // Each query pays ~300ms of slow-partition transit; serialized through
  // the single broker thread that is >= 1.5s. Overlapped, well under 1.2s.
  EXPECT_LT(elapsed, 1'200'000);
  EXPECT_GE(broker.peak_in_flight(), kQueries);
  EXPECT_EQ(broker.in_flight(), 0u);
}

}  // namespace
}  // namespace jdvs

// Unit tests for src/common: rng, hash, clocks, histogram, queue, pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/spinlock.h"
#include "common/thread_pool.h"

namespace jdvs {
namespace {

TEST(HashTest, Fnv1aIsStableAndSpreads) {
  EXPECT_EQ(Fnv1a64("jd://img/1/0"), Fnv1a64("jd://img/1/0"));
  EXPECT_NE(Fnv1a64("jd://img/1/0"), Fnv1a64("jd://img/1/1"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  // Known FNV-1a property: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(HashTest, Mix64ChangesEveryInput) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, UniformCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(3);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(ClockTest, MonotonicClockMovesForward) {
  const auto& clock = MonotonicClock::Instance();
  const Micros a = clock.NowMicros();
  const Micros b = clock.NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, StopwatchMeasuresManualTime) {
  ManualClock clock;
  Stopwatch watch(clock);
  clock.AdvanceMicros(2'000'000);
  EXPECT_EQ(watch.ElapsedMicros(), 2'000'000);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 2.0);
  watch.Restart();
  EXPECT_EQ(watch.ElapsedMicros(), 0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_TRUE(h.CdfPoints().empty());
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (int v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 32u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 31);
  EXPECT_NEAR(h.Mean(), 15.5, 1e-9);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // ~4% relative bucket error plus quantile-definition slack.
  EXPECT_NEAR(static_cast<double>(h.P50()), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.P90()), 9000.0, 9000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9900.0, 9900.0 * 0.07);
  EXPECT_EQ(h.Quantile(0.0), h.Min());
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_GE(a.Max(), 1000);
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    h.Record(static_cast<std::int64_t>(rng.Below(1'000'000)));
  }
  const auto points = h.CdfPoints();
  ASSERT_FALSE(points.empty());
  double prev = 0.0;
  std::int64_t prev_v = -1;
  for (const auto& [v, f] : points) {
    EXPECT_GT(v, prev_v);
    EXPECT_GE(f, prev);
    prev = f;
    prev_v = v;
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t * 1000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(HistogramTest, ClampsNegativeAndHuge) {
  Histogram h;
  h.Record(-5);
  h.Record(Histogram::kMaxValue * 2);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_LE(h.Max(), Histogram::kMaxValue);
}

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(MpmcQueueTest, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueueTest, CloseDrainsThenEnds) {
  MpmcQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, CloseUnblocksWaitingConsumer) {
  MpmcQueue<int> q(8);
  std::thread consumer([&q] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(MpmcQueueTest, ManyProducersManyConsumersDeliverAll) {
  MpmcQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) ASSERT_TRUE(q.Push(i));
    });
  }
  for (auto& p : producers) p.join();
  q.Close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  const long long expected =
      static_cast<long long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4, "test");
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2, "test");
  auto f = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesException) {
  ThreadPool pool(1, "test");
  auto f = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2, "test");
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, SubmitWithResultAfterShutdownRunsInline) {
  ThreadPool pool(1, "test");
  pool.Shutdown();
  auto f = pool.SubmitWithResult([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::lock_guard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8LL * 20000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace jdvs

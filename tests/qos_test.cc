// Tests for the QoS / overload-control subsystem: deadline propagation,
// priority-aware admission, adaptive degradation — unit level against a
// ManualClock, plus end-to-end behavior through the 3-tier cluster (budgets
// cancel downstream work, zero-budget queries never touch a pool, degraded
// responses never enter the result cache).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "obs/registry.h"
#include "qos/admission.h"
#include "qos/deadline.h"
#include "qos/load_controller.h"
#include "search/cluster_builder.h"
#include "search/query_cache.h"
#include "workload/catalog_gen.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultIsUnlimited) {
  ManualClock clock(1'000'000);
  qos::Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.Expired(clock));
  clock.AdvanceMicros(qos::Deadline::kNone / 2);
  EXPECT_FALSE(deadline.Expired(clock));
  EXPECT_EQ(deadline.RemainingMicros(clock), qos::Deadline::kNone);
}

TEST(DeadlineTest, FromBudgetExpiresWhenBudgetSpent) {
  ManualClock clock(500);
  const auto deadline = qos::Deadline::FromBudget(clock, 1'000);
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_FALSE(deadline.Expired(clock));
  EXPECT_EQ(deadline.RemainingMicros(clock), 1'000);
  clock.AdvanceMicros(999);
  EXPECT_FALSE(deadline.Expired(clock));
  clock.AdvanceMicros(1);
  EXPECT_TRUE(deadline.Expired(clock));
  EXPECT_LE(deadline.RemainingMicros(clock), 0);
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  ManualClock clock(42);
  EXPECT_TRUE(qos::Deadline::FromBudget(clock, 0).Expired(clock));
}

TEST(DeadlineTest, ExpiredAtMatchesClockCheck) {
  const auto deadline = qos::Deadline::At(100);
  EXPECT_FALSE(deadline.ExpiredAt(99));
  EXPECT_TRUE(deadline.ExpiredAt(100));
}

TEST(DeadlineTest, IsDeadlineExceededClassifiesErrors) {
  EXPECT_TRUE(qos::IsDeadlineExceeded(
      std::make_exception_ptr(qos::DeadlineExceededError("searcher-3"))));
  EXPECT_FALSE(qos::IsDeadlineExceeded(
      std::make_exception_ptr(std::runtime_error("node failed"))));
  EXPECT_FALSE(qos::IsDeadlineExceeded(nullptr));
}

// --------------------------------------------------------------- Admission

TEST(AdmissionTest, AdmitsExactlyMaxInFlight) {
  ManualClock clock;
  obs::Registry registry;
  qos::AdmissionController admission({.max_in_flight = 2}, clock, &registry);
  auto t1 = admission.TryAdmit(qos::Priority::kInteractive);
  auto t2 = admission.TryAdmit(qos::Priority::kInteractive);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(admission.total_in_flight(), 2u);
  EXPECT_FALSE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_EQ(admission.shed(qos::Priority::kInteractive), 1u);
  // Releasing a slot re-opens admission.
  t1->Release();
  EXPECT_EQ(admission.total_in_flight(), 1u);
  EXPECT_TRUE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_EQ(admission.admitted(qos::Priority::kInteractive), 3u);
}

TEST(AdmissionTest, TicketReleasesOnDestructionAndMove) {
  ManualClock clock;
  obs::Registry registry;
  qos::AdmissionController admission({.max_in_flight = 1}, clock, &registry);
  {
    auto ticket = admission.TryAdmit(qos::Priority::kInteractive);
    ASSERT_TRUE(ticket.has_value());
    // Move transfers ownership: releasing through the new ticket only.
    qos::AdmissionController::Ticket moved = std::move(*ticket);
    EXPECT_FALSE(ticket->held());
    EXPECT_TRUE(moved.held());
    EXPECT_EQ(admission.total_in_flight(), 1u);
    moved.Release();
    moved.Release();  // idempotent
    EXPECT_EQ(admission.total_in_flight(), 0u);
  }
  EXPECT_EQ(admission.total_in_flight(), 0u);
}

TEST(AdmissionTest, BackgroundClassHasItsOwnCap) {
  ManualClock clock;
  obs::Registry registry;
  qos::AdmissionController admission(
      {.max_in_flight = 4, .max_background_in_flight = 1}, clock, &registry);
  auto bg = admission.TryAdmit(qos::Priority::kBackground);
  ASSERT_TRUE(bg.has_value());
  // A second background query is shed even though total slots remain.
  EXPECT_FALSE(admission.TryAdmit(qos::Priority::kBackground).has_value());
  EXPECT_EQ(admission.shed(qos::Priority::kBackground), 1u);
  // Interactive traffic still gets the remaining shared slots.
  auto i1 = admission.TryAdmit(qos::Priority::kInteractive);
  auto i2 = admission.TryAdmit(qos::Priority::kInteractive);
  auto i3 = admission.TryAdmit(qos::Priority::kInteractive);
  EXPECT_TRUE(i1.has_value() && i2.has_value() && i3.has_value());
  EXPECT_FALSE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_EQ(admission.in_flight(qos::Priority::kBackground), 1u);
  EXPECT_EQ(admission.in_flight(qos::Priority::kInteractive), 3u);
}

TEST(AdmissionTest, TokenBucketBoundsAdmissionRate) {
  ManualClock clock(1'000'000);
  obs::Registry registry;
  // 2 tokens/sec, burst of 2, unlimited concurrency: rate is the only gate.
  qos::AdmissionController admission(
      {.tokens_per_sec = 2.0, .token_burst = 2.0}, clock, &registry);
  EXPECT_TRUE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_TRUE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  // Bucket drained; concurrency slots are free but the rate gate sheds.
  EXPECT_FALSE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  clock.AdvanceMicros(500'000);  // refills one token
  EXPECT_TRUE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_FALSE(admission.TryAdmit(qos::Priority::kInteractive).has_value());
  EXPECT_EQ(admission.shed(qos::Priority::kInteractive), 2u);
}

TEST(AdmissionTest, ExportsPerClassCounters) {
  ManualClock clock;
  obs::Registry registry;
  qos::AdmissionController admission({.max_in_flight = 1}, clock, &registry);
  auto ticket = admission.TryAdmit(qos::Priority::kInteractive);
  ASSERT_TRUE(ticket.has_value());
  admission.TryAdmit(qos::Priority::kInteractive);  // shed
  const auto* admitted = registry.FindCounter(
      obs::Labeled("jdvs_qos_admitted_total", "class", "interactive"));
  const auto* shed = registry.FindCounter(
      obs::Labeled("jdvs_qos_shed_total", "class", "interactive"));
  ASSERT_NE(admitted, nullptr);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(admitted->Value(), 1u);
  EXPECT_EQ(shed->Value(), 1u);
}

// ---------------------------------------------------------- LoadController

qos::LoadControlConfig FastLoadConfig() {
  qos::LoadControlConfig config;
  config.p99_degrade_micros = 1'000;
  config.window_micros = 1'000;
  config.min_window_samples = 1;
  config.upgrade_after_windows = 1;
  config.downgrade_after_windows = 2;
  config.calm_fraction = 0.5;
  return config;
}

TEST(LoadControllerTest, StepsUpUnderSlowWindowsAndDownAfterCalm) {
  ManualClock clock;
  obs::Registry registry;
  qos::LoadController controller(FastLoadConfig(), clock, &registry);
  EXPECT_EQ(controller.level(), 0);

  // Two overloaded windows climb the ladder to the top.
  for (int expected : {1, 2}) {
    controller.Observe(5'000, 1);
    clock.AdvanceMicros(1'001);
    controller.Poll();
    EXPECT_EQ(controller.level(), expected);
  }
  // Further overload holds at max_level.
  controller.Observe(5'000, 1);
  clock.AdvanceMicros(1'001);
  controller.Poll();
  EXPECT_EQ(controller.level(), 2);
  EXPECT_EQ(controller.steps_up(), 2u);

  // Each step down needs downgrade_after_windows consecutive calm windows.
  int expected_level = 2;
  for (int window = 0; window < 4; ++window) {
    controller.Observe(100, 0);  // well below calm_fraction * threshold
    clock.AdvanceMicros(1'001);
    controller.Poll();
    if (window % 2 == 1) --expected_level;
    EXPECT_EQ(controller.level(), expected_level);
  }
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.steps_down(), 2u);
  const auto* gauge = registry.FindGauge("jdvs_qos_degradation_level");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(LoadControllerTest, HysteresisBandHoldsLevel) {
  ManualClock clock;
  obs::Registry registry;
  qos::LoadController controller(FastLoadConfig(), clock, &registry);
  controller.Observe(5'000, 1);
  clock.AdvanceMicros(1'001);
  controller.Poll();
  ASSERT_EQ(controller.level(), 1);
  // p99 in (calm_fraction * threshold, threshold): neither overloaded nor
  // calm — the level must not flap in either direction.
  for (int window = 0; window < 6; ++window) {
    controller.Observe(700, 1);
    clock.AdvanceMicros(1'001);
    controller.Poll();
    EXPECT_EQ(controller.level(), 1);
  }
}

TEST(LoadControllerTest, QueueDepthAloneTriggersDegradation) {
  ManualClock clock;
  obs::Registry registry;
  qos::LoadControlConfig config;
  config.queue_degrade_depth = 4;
  config.window_micros = 1'000;
  config.min_window_samples = 1;
  qos::LoadController controller(config, clock, &registry);
  controller.Observe(10, 5);  // fast but deeply queued
  clock.AdvanceMicros(1'001);
  controller.Poll();
  EXPECT_EQ(controller.level(), 1);
}

TEST(LoadControllerTest, SparseWindowDoesNotEvaluateP99) {
  ManualClock clock;
  obs::Registry registry;
  qos::LoadControlConfig config = FastLoadConfig();
  config.min_window_samples = 8;
  qos::LoadController controller(config, clock, &registry);
  // Three slow stragglers are not an overload signal.
  controller.Observe(50'000, 1);
  controller.Observe(50'000, 1);
  controller.Observe(50'000, 1);
  clock.AdvanceMicros(1'001);
  controller.Poll();
  EXPECT_EQ(controller.level(), 0);
}

TEST(LoadControllerTest, PollStepsDownWhenTrafficVanishes) {
  ManualClock clock;
  obs::Registry registry;
  qos::LoadController controller(FastLoadConfig(), clock, &registry);
  controller.Observe(5'000, 1);
  clock.AdvanceMicros(1'001);
  controller.Poll();
  ASSERT_EQ(controller.level(), 1);
  // No queries complete anymore; Poll alone must rotate the (empty = calm)
  // windows so readers like the recovery backoff loop see the level drop.
  for (int window = 0; window < 2; ++window) {
    clock.AdvanceMicros(1'001);
    controller.Poll();
  }
  EXPECT_EQ(controller.level(), 0);
}

// -------------------------------------------------- QueryCache gating

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian()) * 4.f;
  return v;
}

TEST(QosQueryCacheTest, DegradedResponsesAreNeverCached) {
  ManualClock clock;
  QueryCache cache(16, {}, clock);
  Rng rng(11);
  const auto q = RandomVector(rng, 16);
  const auto key = cache.KeyFor(q, 10, 0);

  QueryResponse degraded_effort;
  degraded_effort.results.push_back(RankedResult{});
  degraded_effort.degradation_level = 1;
  cache.Insert(key, 0, degraded_effort);
  EXPECT_FALSE(cache.Lookup(key, 0).has_value());

  QueryResponse partial_coverage;
  partial_coverage.results.push_back(RankedResult{});
  partial_coverage.degraded = true;  // broker slots failed
  cache.Insert(key, 0, partial_coverage);
  EXPECT_FALSE(cache.Lookup(key, 0).has_value());
  EXPECT_EQ(cache.stats().rejected_degraded, 2u);

  // A full-effort, full-coverage response still caches.
  QueryResponse full;
  full.results.push_back(RankedResult{});
  cache.Insert(key, 0, full);
  EXPECT_TRUE(cache.Lookup(key, 0).has_value());
}

// ------------------------------------------------------ cluster end-to-end

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_partitions = 4;
  config.replicas_per_partition = 1;
  config.num_brokers = 2;
  config.num_blenders = 2;
  config.searcher_threads = 1;
  config.broker_threads = 2;
  config.blender_threads = 2;
  config.embedder = {.dim = 16, .num_categories = 8, .seed = 5};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.training_sample = 512;
  config.ivf.nprobe = 8;
  config.build_threads = 4;
  return config;
}

std::unique_ptr<VisualSearchCluster> MakeCluster(
    ClusterConfig config = SmallConfig(), std::size_t products = 200) {
  auto cluster = std::make_unique<VisualSearchCluster>(config);
  CatalogGenConfig cg;
  cg.num_products = products;
  cg.num_categories = config.embedder.num_categories;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

QueryImage QueryFor(VisualSearchCluster& cluster, ProductId id,
                    std::uint64_t seed = 1) {
  const auto record = cluster.catalog().Get(id);
  EXPECT_TRUE(record.has_value());
  return QueryImage{id, record->category, seed};
}

std::uint64_t TierDeadlines(VisualSearchCluster& cluster, const char* tier) {
  const auto* counter = cluster.registry().FindCounter(
      obs::Labeled("jdvs_qos_deadline_exceeded_total", "tier", tier));
  return counter != nullptr ? counter->Value() : 0;
}

TEST(QosClusterTest, ZeroBudgetShedsAtAdmissionWithoutTouchingPool) {
  auto cluster = MakeCluster();
  Blender& blender = cluster->blender(0);
  QueryOptions options{.k = 10, .nprobe = 0};
  options.budget_micros = 0;  // no time left before the query even starts
  EXPECT_THROW(blender.Search(QueryFor(*cluster, 5, 1), options),
               qos::DeadlineExceededError);
  // Shed before admission: no slot was ever taken, no pool thread ran.
  EXPECT_EQ(blender.admission().admitted(qos::Priority::kInteractive), 0u);
  EXPECT_EQ(blender.in_flight(), 0u);
  EXPECT_EQ(blender.queries_shed(), 1u);
  const auto* extract = cluster->registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "extract"));
  ASSERT_NE(extract, nullptr);
  EXPECT_EQ(extract->Count(), 0u);
  EXPECT_EQ(TierDeadlines(*cluster, "blender"), 1u);
  EXPECT_EQ(TierDeadlines(*cluster, "searcher"), 0u);
}

TEST(QosClusterTest, SearcherShedsExpiredWorkBeforeScanning) {
  auto cluster = MakeCluster();
  const auto* scans = cluster->registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "searcher_scan"));
  ASSERT_NE(scans, nullptr);
  // Sanity: a live deadline scans normally.
  Searcher& searcher = cluster->searcher(0);
  auto live = searcher.SearchAsync(
      FeatureVector(16, 0.f), 5, 0, kNoCategoryFilter, FilterExpression{},
      qos::Deadline::FromBudget(MonotonicClock::Instance(), 10'000'000));
  EXPECT_NO_THROW(live.get());
  const auto scans_before = scans->Count();
  EXPECT_EQ(scans_before, 1u);
  // An expired deadline is re-checked on the searcher's pool thread and
  // fails fast without running the scan.
  auto dead = searcher.SearchAsync(
      FeatureVector(16, 0.f), 5, 0, kNoCategoryFilter, FilterExpression{},
      qos::Deadline::FromBudget(MonotonicClock::Instance(), 0));
  EXPECT_THROW(dead.get(), qos::DeadlineExceededError);
  EXPECT_EQ(scans->Count(), scans_before);
  EXPECT_EQ(TierDeadlines(*cluster, "searcher"), 1u);
}

TEST(QosClusterTest, BrokerShedsExpiredFanOutBeforeDispatch) {
  auto cluster = MakeCluster();
  const auto* scans = cluster->registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "searcher_scan"));
  ASSERT_NE(scans, nullptr);
  auto dead = cluster->broker(0).SearchAsync(
      FeatureVector(16, 0.f), 5, 0, kNoCategoryFilter, FilterExpression{},
      qos::Deadline::FromBudget(MonotonicClock::Instance(), 0));
  EXPECT_THROW(dead.get(), qos::DeadlineExceededError);
  // The fan-out never dispatched: no searcher scanned, no searcher raised.
  EXPECT_EQ(scans->Count(), 0u);
  EXPECT_EQ(TierDeadlines(*cluster, "broker"), 1u);
  EXPECT_EQ(TierDeadlines(*cluster, "searcher"), 0u);
  EXPECT_EQ(cluster->broker(0).in_flight(), 0u);
}

TEST(QosClusterTest, MidPipelineExpiryCancelsDownstreamWork) {
  // Slow bottom tier: the 50 ms searcher request hop devours a 10 ms budget
  // mid-pipeline, after the blender and broker checks already passed.
  ClusterConfig config = SmallConfig();
  config.searcher_latency = LatencyModel{.base_micros = 50'000};
  auto cluster = MakeCluster(config);

  // Baseline: an unbudgeted query completes (slowly) and scans partitions.
  const auto ok = cluster->Query(QueryFor(*cluster, 7, 1));
  EXPECT_FALSE(ok.results.empty());
  const auto* scans = cluster->registry().FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "searcher_scan"));
  ASSERT_NE(scans, nullptr);
  const auto scans_before = scans->Count();
  EXPECT_GT(scans_before, 0u);

  QueryOptions options{.k = 10, .nprobe = 0};
  options.budget_micros = 10'000;
  EXPECT_THROW(cluster->blender(0).Search(QueryFor(*cluster, 7, 2), options),
               qos::DeadlineExceededError);
  // The budget died inside the searcher hop: every queued scan was shed on
  // arrival, counter-verified at the searcher tier, and no broker burned a
  // failover retrying a timed-out replica.
  EXPECT_EQ(scans->Count(), scans_before);
  EXPECT_GE(TierDeadlines(*cluster, "searcher"), 1u);
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    EXPECT_EQ(cluster->broker(b).failovers(), 0u);
  }
  EXPECT_EQ(cluster->blender(0).in_flight(), 0u);
}

TEST(QosClusterTest, DegradationStepsDownEffortAndSkipsCache) {
  ClusterConfig config = SmallConfig();
  config.num_blenders = 1;
  config.blender_result_cache = true;
  config.blender_cache.ttl_micros = 60'000'000;
  // Degrade on any completed query: p99 threshold of 1 us over 1 ms windows
  // makes every window overloaded, and the calm band (p99 < 0.7 us) is
  // unreachable, so the level ratchets to 2 and stays — deterministic.
  config.load_control.p99_degrade_micros = 1;
  config.load_control.window_micros = 1'000;
  config.load_control.min_window_samples = 1;
  auto cluster = MakeCluster(config);
  ASSERT_NE(cluster->load_controller(), nullptr);

  int reached = 0;
  for (int i = 0; i < 50 && reached < 2; ++i) {
    const auto response =
        cluster->Query(QueryFor(*cluster, 1 + (i % 100), i));
    reached = response.degradation_level;
    std::this_thread::sleep_for(std::chrono::microseconds(1'500));
  }
  ASSERT_EQ(reached, 2) << "load controller never reached full degradation";
  EXPECT_EQ(cluster->load_controller()->level(), 2);
  EXPECT_GE(cluster->load_controller()->steps_up(), 2u);

  // Degraded responses still answer (shrunk nprobe, no rerank) but are
  // never inserted into the result cache.
  const QueryImage repeat = QueryFor(*cluster, 9, 3);
  const auto first = cluster->Query(repeat);
  EXPECT_EQ(first.degradation_level, 2);
  EXPECT_FALSE(first.results.empty());
  EXPECT_FALSE(first.from_cache);
  const auto second = cluster->Query(repeat);
  EXPECT_FALSE(second.from_cache);
  ASSERT_NE(cluster->blender(0).result_cache(), nullptr);
  EXPECT_GE(cluster->blender(0).result_cache()->stats().rejected_degraded, 2u);

  const auto* degraded_l2 = cluster->registry().FindCounter(
      obs::Labeled("jdvs_qos_degraded_queries_total", "level", "2"));
  ASSERT_NE(degraded_l2, nullptr);
  EXPECT_GE(degraded_l2->Value(), 1u);
}

TEST(QosClusterTest, DrainNotificationCompletesPromptly) {
  auto cluster = MakeCluster();
  // Nothing published: the predicate holds at entry.
  EXPECT_TRUE(cluster->WaitForUpdatesDrained(1'000));
  for (int i = 0; i < 50; ++i) {
    ProductUpdateMessage m;
    m.type = UpdateType::kAddProduct;
    m.product_id = 9000 + i;
    m.category_id = i % 8;
    m.image_urls.push_back(MakeImageUrl(9000 + i, 0));
    cluster->PublishUpdate(m);
  }
  // The consumer's progress listener wakes the waiter; no sleep-polling.
  EXPECT_TRUE(cluster->WaitForUpdatesDrained());
  // Updates are broadcast: every searcher's consumer sees all 50 messages.
  std::uint64_t consumed = 0;
  for (std::size_t s = 0; s < cluster->num_searchers(); ++s) {
    consumed += cluster->searcher_flat(s).messages_consumed();
  }
  EXPECT_EQ(consumed, 50u * cluster->num_searchers());
}

// --------------------------------------------------------- workload client

TEST(QosWorkloadTest, ClosedLoopRetriesBackOffOnOverload) {
  ClusterConfig config = SmallConfig();
  config.num_blenders = 1;
  config.blender_max_in_flight = 1;  // one slot: collisions shed
  config.query_extraction_micros = 500;
  auto cluster = MakeCluster(config);
  QueryWorkloadConfig qc;
  qc.num_threads = 8;
  qc.queries_per_thread = 15;
  qc.max_retries = 8;
  qc.retry_backoff_micros = 50;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  EXPECT_EQ(result.queries + result.errors, 120u);
  // 8 closed-loop users against one admission slot must collide.
  EXPECT_GT(result.retries, 0u);
  EXPECT_GT(result.retry_backoff_micros, 0u);
}

TEST(QosWorkloadTest, OpenLoopOverloadAccountingBalances) {
  ClusterConfig config = SmallConfig();
  config.num_blenders = 1;
  config.num_brokers = 1;
  config.blender_max_in_flight = 2;
  config.query_extraction_micros = 2'000;
  auto cluster = MakeCluster(config);
  QueryWorkloadConfig qc;
  qc.arrival_qps = 2'000.0;       // far past the ~1k QPS the 2-thread
  qc.duration_micros = 200'000;   // blender with 2 ms extraction can serve
  qc.slo_micros = 100'000;
  QueryClient client(*cluster, qc);
  const OpenLoopResult result = client.RunOpenLoop();
  EXPECT_GT(result.offered, 100u);
  // Every offered query is accounted for exactly once.
  EXPECT_EQ(result.offered,
            result.completed + result.overload_errors +
                result.deadline_errors + result.other_errors +
                result.timed_out_in_flight);
  // Open-loop arrivals past saturation must shed at admission.
  EXPECT_GT(result.overload_errors, 0u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.latency_micros->Count(), result.completed);
  EXPECT_GT(result.offered_qps, 0.0);
  EXPECT_LE(result.goodput_qps, result.completed_qps + 1e-9);
}

}  // namespace
}  // namespace jdvs

// Hybrid filtered search: FilterExpression semantics and wire format, the
// AttributeFilterIndex bitmap/column state, predicate pushdown into the IVF
// and IVF-PQ scans (exactness vs brute-force filtered ground truth across
// selectivity regimes), strategy selection, cache-key isolation, concurrent
// attribute updates during filtered scans, and cluster-level edge cases
// (zero-match filters, degradation, partition failover).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/quantizer.h"
#include "common/rng.h"
#include "filter/attribute_filter_index.h"
#include "filter/filter_expression.h"
#include "index/ivf_index.h"
#include "pq/codebook.h"
#include "pq/ivfpq_index.h"
#include "search/cluster_builder.h"
#include "search/query_cache.h"
#include "store/catalog.h"
#include "vecmath/distance.h"
#include "workload/catalog_gen.h"
#include "workload/query_client.h"

namespace jdvs {
namespace {

// ---------------------------------------------------------------------------
// FilterExpression
// ---------------------------------------------------------------------------

TEST(FilterExpressionTest, BuildersAndMatches) {
  FilterExpression expr;
  expr.WithCategory(7)
      .WithMin(FilterField::kSales, 100)
      .WithMax(FilterField::kPriceCents, 5000);
  EXPECT_EQ(expr.size(), 3u);
  EXPECT_FALSE(expr.empty());

  const ProductAttributes good{.sales = 100, .price_cents = 5000, .praise = 0};
  EXPECT_TRUE(expr.Matches(7, good));
  EXPECT_FALSE(expr.Matches(8, good));  // wrong category
  EXPECT_FALSE(expr.Matches(
      7, ProductAttributes{.sales = 99, .price_cents = 100, .praise = 0}));
  EXPECT_FALSE(expr.Matches(
      7, ProductAttributes{.sales = 500, .price_cents = 5001, .praise = 0}));
}

TEST(FilterExpressionTest, EmptyExpressionMatchesEverything) {
  const FilterExpression expr;
  EXPECT_TRUE(expr.empty());
  EXPECT_TRUE(expr.Matches(0, {}));
  EXPECT_TRUE(expr.Matches(999, {.sales = ~std::uint64_t{0},
                                 .price_cents = 1,
                                 .praise = 3}));
}

TEST(FilterExpressionTest, CategoryRangeIsClosed) {
  FilterExpression expr;
  expr.WithCategoryRange(3, 5);
  EXPECT_FALSE(expr.Matches(2, {}));
  EXPECT_TRUE(expr.Matches(3, {}));
  EXPECT_TRUE(expr.Matches(5, {}));
  EXPECT_FALSE(expr.Matches(6, {}));
}

TEST(FilterExpressionTest, WithRangeThrowsOnInvertedBounds) {
  FilterExpression expr;
  EXPECT_THROW(expr.WithRange(FilterField::kSales, 10, 9),
               std::invalid_argument);
}

TEST(FilterExpressionTest, SerializeRoundTrip) {
  FilterExpression expr;
  expr.WithCategory(42)
      .WithRange(FilterField::kSales, 5, 500)
      .WithMax(FilterField::kPraise, 9);
  const FilterExpression decoded = FilterExpression::Deserialize(
      expr.Serialize());
  EXPECT_EQ(decoded, expr);
  EXPECT_EQ(decoded.Hash(), expr.Hash());

  const FilterExpression empty_decoded =
      FilterExpression::Deserialize(FilterExpression{}.Serialize());
  EXPECT_TRUE(empty_decoded.empty());
}

TEST(FilterExpressionTest, DeserializeRejectsMalformedBytes) {
  FilterExpression expr;
  expr.WithCategory(1);
  std::string wire = expr.Serialize();
  EXPECT_THROW(FilterExpression::Deserialize(
                   std::string_view(wire).substr(0, wire.size() - 1)),
               std::invalid_argument);  // truncated
  EXPECT_THROW(FilterExpression::Deserialize(""), std::invalid_argument);
  std::string bad_version = wire;
  bad_version[0] = 99;
  EXPECT_THROW(FilterExpression::Deserialize(bad_version),
               std::invalid_argument);
  std::string bad_field = wire;
  bad_field[3] = 17;  // field byte of the first predicate
  EXPECT_THROW(FilterExpression::Deserialize(bad_field),
               std::invalid_argument);
}

TEST(FilterExpressionTest, HashDistinguishesPredicates) {
  FilterExpression a;
  a.WithMax(FilterField::kPriceCents, 5000);
  FilterExpression b;
  b.WithMax(FilterField::kPriceCents, 4999);
  FilterExpression c;
  c.WithMax(FilterField::kPraise, 5000);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), FilterExpression{}.Hash());
  // Same predicates, same hash — and the empty hash is a stable seed.
  FilterExpression a2;
  a2.WithMax(FilterField::kPriceCents, 5000);
  EXPECT_EQ(a.Hash(), a2.Hash());
  EXPECT_EQ(FilterExpression{}.Hash(), FilterExpression{}.Hash());
}

TEST(FilterExpressionTest, ToStringNamesFieldsAndBounds) {
  FilterExpression expr;
  expr.WithCategory(7).WithMin(FilterField::kSales, 100);
  const std::string s = expr.ToString();
  EXPECT_NE(s.find("category"), std::string::npos);
  EXPECT_NE(s.find("sales"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AttributeFilterIndex
// ---------------------------------------------------------------------------

TEST(AttributeFilterIndexTest, AppendPopulatesBitmapsAndColumns) {
  AttributeFilterIndex filters;
  for (std::uint64_t i = 0; i < 100; ++i) {
    filters.Append(static_cast<CategoryId>(i % 4),
                   {.sales = i, .price_cents = i * 10, .praise = i % 7});
  }
  EXPECT_EQ(filters.size(), 100u);
  EXPECT_EQ(filters.num_categories(), 4u);
  const ValidityBitmap* cat0 = filters.CategoryBitmap(0);
  ASSERT_NE(cat0, nullptr);
  EXPECT_EQ(cat0->CountValid(), 25u);
  EXPECT_TRUE(cat0->Get(0));
  EXPECT_FALSE(cat0->Get(1));
  EXPECT_EQ(filters.CategoryBitmap(9), nullptr);
  EXPECT_EQ(filters.NumericAt(FilterField::kSales, 42), 42u);
  EXPECT_EQ(filters.NumericAt(FilterField::kPriceCents, 42), 420u);
  EXPECT_EQ(filters.NumericAt(FilterField::kPraise, 42), 0u);
}

TEST(AttributeFilterIndexTest, UpdateNumericIsVisibleAndChangesChecksum) {
  AttributeFilterIndex filters;
  filters.Append(1, {.sales = 5, .price_cents = 100, .praise = 0});
  const std::uint64_t before = filters.ColumnChecksum();
  filters.UpdateNumeric(0, {.sales = 77, .price_cents = 200, .praise = 3});
  EXPECT_EQ(filters.NumericAt(FilterField::kSales, 0), 77u);
  EXPECT_NE(filters.ColumnChecksum(), before);
  // Out-of-range update is a no-op, not a crash.
  filters.UpdateNumeric(999, {.sales = 1, .price_cents = 1, .praise = 1});
}

TEST(AttributeFilterIndexTest, MaterializeFoldsCategoryAndRanges) {
  AttributeFilterIndex filters;
  for (std::uint64_t i = 0; i < 200; ++i) {
    filters.Append(static_cast<CategoryId>(i % 2),
                   {.sales = i, .price_cents = 0, .praise = 0});
  }
  FilterExpression expr;
  expr.WithCategory(0).WithMin(FilterField::kSales, 100);
  const MaterializedFilter m =
      filters.Materialize(expr, kNoCategoryFilter, nullptr);
  EXPECT_EQ(m.universe, 200u);
  EXPECT_EQ(m.matches, 50u);  // even locals >= 100
  for (LocalId local = 0; local < 200; ++local) {
    EXPECT_EQ(m.Test(local), local % 2 == 0 && local >= 100) << local;
  }
  EXPECT_NEAR(m.selectivity(), 0.25, 1e-9);
}

TEST(AttributeFilterIndexTest, MaterializeZeroMatches) {
  AttributeFilterIndex filters;
  for (std::uint64_t i = 0; i < 64; ++i) {
    filters.Append(3, {.sales = i, .price_cents = 0, .praise = 0});
  }
  FilterExpression expr;
  expr.WithCategory(9);  // never appended
  const MaterializedFilter m =
      filters.Materialize(expr, kNoCategoryFilter, nullptr);
  EXPECT_EQ(m.matches, 0u);
  EXPECT_FALSE(m.Test(0));
}

TEST(AttributeFilterIndexTest, MaterializeFoldsValidityAndLegacyCategory) {
  AttributeFilterIndex filters;
  ValidityBitmap validity;
  for (std::uint64_t i = 0; i < 100; ++i) {
    filters.Append(static_cast<CategoryId>(i % 4),
                   {.sales = i, .price_cents = 0, .praise = 0});
    validity.Set(i, i % 5 != 0);  // every 5th image invalid
  }
  FilterExpression expr;
  expr.WithMin(FilterField::kSales, 0);
  const MaterializedFilter m = filters.Materialize(expr, /*category=*/1,
                                                   &validity);
  for (LocalId local = 0; local < 100; ++local) {
    EXPECT_EQ(m.Test(local), local % 4 == 1 && local % 5 != 0) << local;
  }
}

TEST(AttributeFilterIndexTest, CategoryRangePredicateSweepsSlots) {
  AttributeFilterIndex filters;
  for (std::uint64_t i = 0; i < 90; ++i) {
    filters.Append(static_cast<CategoryId>(i % 9), {});
  }
  FilterExpression expr;
  expr.WithCategoryRange(2, 4);
  const MaterializedFilter m =
      filters.Materialize(expr, kNoCategoryFilter, nullptr);
  EXPECT_EQ(m.matches, 30u);
  for (LocalId local = 0; local < 90; ++local) {
    EXPECT_EQ(m.Test(local), local % 9 >= 2 && local % 9 <= 4) << local;
  }
}

// ---------------------------------------------------------------------------
// IVF pushdown: exactness, strategy selection, batching, concurrency
// ---------------------------------------------------------------------------

constexpr std::size_t kDim = 16;

struct FlatFixture {
  struct Entry {
    std::string url;
    ProductId product;
    CategoryId category;
    ProductAttributes attributes;
    FeatureVector feature;
  };

  explicit FlatFixture(std::size_t images = 2000, std::size_t clusters = 16,
                       IvfIndexConfig config = {}) {
    Rng rng(123);
    std::vector<FeatureVector> training;
    for (std::size_t i = 0; i < 512; ++i) {
      FeatureVector v(kDim);
      for (float& x : v) x = static_cast<float>(rng.NextGaussian());
      training.push_back(std::move(v));
    }
    KMeansConfig kc;
    kc.num_clusters = clusters;
    quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
    index = std::make_unique<IvfIndex>(quantizer, config);
    for (std::size_t i = 0; i < images; ++i) {
      Entry e;
      e.url = MakeImageUrl(static_cast<ProductId>(i + 1), 0);
      e.product = static_cast<ProductId>(i + 1);
      e.category = static_cast<CategoryId>(i % 8);
      // Unique sales = insertion order gives exact selectivity control:
      // sales >= S matches exactly (images - S) entries.
      e.attributes = {.sales = i, .price_cents = (i * 7) % 10000,
                      .praise = i % 100};
      e.feature.resize(kDim);
      for (float& x : e.feature) x = static_cast<float>(rng.NextGaussian());
      index->AddImage(e.url, e.product, e.category, e.attributes, "",
                      e.feature);
      entries.push_back(std::move(e));
    }
  }

  FeatureVector Query(std::uint64_t seed) const {
    Rng rng(seed);
    FeatureVector q(kDim);
    for (float& x : q) x = static_cast<float>(rng.NextGaussian());
    return q;
  }

  // Independent brute-force oracle (does not go through the index at all).
  std::vector<std::string> BruteForceTopK(FeatureView query, std::size_t k,
                                          const FilterExpression& filter) const {
    std::vector<std::pair<float, const Entry*>> scored;
    for (const Entry& e : entries) {
      if (!filter.Matches(e.category, e.attributes)) continue;
      scored.emplace_back(
          static_cast<float>(L2SquaredDistance(query, e.feature)), &e);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::string> urls;
    for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
      urls.push_back(scored[i].second->url);
    }
    return urls;
  }

  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::unique_ptr<IvfIndex> index;
  std::vector<Entry> entries;
};

std::set<std::string> UrlSet(const std::vector<SearchHit>& hits) {
  std::set<std::string> urls;
  for (const auto& h : hits) urls.insert(h.image_url);
  return urls;
}

// The acceptance property: with every list probed, pushdown results are
// exactly the brute-force filtered top-k, at ~50%, ~5% and ~0.1%
// selectivity. Also cross-checks the index's own filtered exhaustive oracle.
TEST(IvfFilterTest, PushdownExactAcrossSelectivityRegimes) {
  FlatFixture fx;
  const std::size_t n = fx.entries.size();
  const std::size_t all_lists = fx.quantizer->num_clusters();
  const struct {
    std::uint64_t min_sales;
    FilterScanStats::Strategy expect;
  } regimes[] = {
      {n / 2, FilterScanStats::Strategy::kPost},        // ~50%
      {n - n / 20, FilterScanStats::Strategy::kPre},    // ~5%
      {n - 2, FilterScanStats::Strategy::kPre},         // ~0.1%
  };
  for (const auto& regime : regimes) {
    FilterExpression filter;
    filter.WithMin(FilterField::kSales, regime.min_sales);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const FeatureVector q = fx.Query(seed);
      FilterScanStats stats;
      const auto hits = fx.index->Search(q, 10, all_lists, kNoCategoryFilter,
                                         filter, &stats);
      EXPECT_EQ(stats.strategy, regime.expect)
          << "min_sales=" << regime.min_sales;
      const auto oracle = fx.BruteForceTopK(q, 10, filter);
      EXPECT_EQ(UrlSet(hits),
                std::set<std::string>(oracle.begin(), oracle.end()))
          << "min_sales=" << regime.min_sales << " seed=" << seed;
      // The index's own filtered exhaustive scan is the same ground truth.
      const auto exhaustive = fx.index->SearchExhaustive(q, 10, filter);
      EXPECT_EQ(UrlSet(hits), UrlSet(exhaustive));
      // Every hit satisfies the predicates.
      for (const auto& h : hits) {
        EXPECT_TRUE(filter.Matches(h.category, h.attributes)) << h.image_url;
      }
    }
  }
}

TEST(IvfFilterTest, DefaultNprobeHitsSatisfyPredicates) {
  IvfIndexConfig config;
  config.nprobe = 4;
  FlatFixture fx(2000, 16, config);
  FilterExpression filter;
  filter.WithCategory(3).WithMax(FilterField::kPriceCents, 7000);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto hits = fx.index->Search(fx.Query(seed), 10, 0,
                                       kNoCategoryFilter, filter);
    for (const auto& h : hits) {
      EXPECT_TRUE(filter.Matches(h.category, h.attributes)) << h.image_url;
    }
  }
}

TEST(IvfFilterTest, ExtremeSelectivityWidensNprobeAndSkipsBlocks) {
  IvfIndexConfig config;
  config.nprobe = 2;
  FlatFixture fx(2000, 16, config);
  FilterExpression filter;
  filter.WithMin(FilterField::kSales, fx.entries.size() - 2);  // 2 of 2000
  FilterScanStats stats;
  const auto hits =
      fx.index->Search(fx.Query(9), 10, 0, kNoCategoryFilter, filter, &stats);
  EXPECT_TRUE(stats.widened_nprobe);
  EXPECT_EQ(stats.matches, 2u);
  EXPECT_EQ(stats.selectivity_bp, 10u);  // 0.1% = 10 basis points
  EXPECT_GT(stats.blocks_skipped, 0u);   // most sub-blocks wholly dead
  for (const auto& h : hits) {
    EXPECT_TRUE(filter.Matches(h.category, h.attributes));
  }
}

TEST(IvfFilterTest, ZeroMatchFilterIsEmptyButSuccessful) {
  FlatFixture fx(500, 8);
  FilterExpression filter;
  filter.WithMin(FilterField::kSales, 1u << 30);  // matches nothing
  FilterScanStats stats;
  const auto hits =
      fx.index->Search(fx.Query(1), 10, 0, kNoCategoryFilter, filter, &stats);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.matches, 0u);
  EXPECT_EQ(stats.blocks_scanned, 0u);  // scan skipped entirely
}

TEST(IvfFilterTest, EmptyFilterFallsBackToLegacySearch) {
  FlatFixture fx(500, 8);
  const FeatureVector q = fx.Query(4);
  const auto filtered = fx.index->Search(q, 10, 0, kNoCategoryFilter,
                                         FilterExpression{});
  const auto legacy = fx.index->Search(q, 10);
  EXPECT_EQ(UrlSet(filtered), UrlSet(legacy));
}

TEST(IvfFilterTest, FilterConjoinsWithLegacyCategoryFilter) {
  FlatFixture fx(1000, 8);
  FilterExpression filter;
  filter.WithMin(FilterField::kSales, 100);
  const auto hits =
      fx.index->Search(fx.Query(2), 10, fx.quantizer->num_clusters(),
                       /*category_filter=*/5, filter);
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits) {
    EXPECT_EQ(h.category, 5u);
    EXPECT_GE(h.attributes.sales, 100u);
  }
}

TEST(IvfFilterTest, SearchBatchMatchesPerQueryFilteredSearch) {
  FlatFixture fx(1500, 16);
  FilterExpression narrow;
  narrow.WithMin(FilterField::kSales, 1400);
  FilterExpression broad;
  broad.WithMax(FilterField::kPriceCents, 5000);

  std::vector<IvfBatchQuery> batch;
  std::vector<FeatureVector> queries;
  std::vector<FilterScanStats> stats(4);
  for (std::uint64_t i = 0; i < 4; ++i) queries.push_back(fx.Query(30 + i));
  batch.push_back({queries[0], 10, 0, kNoCategoryFilter, &narrow, &stats[0]});
  batch.push_back({queries[1], 10, 0, kNoCategoryFilter, nullptr, &stats[1]});
  batch.push_back({queries[2], 10, 0, kNoCategoryFilter, &broad, &stats[2]});
  batch.push_back({queries[3], 10, 0, /*category_filter=*/2, nullptr,
                   &stats[3]});
  const auto results = fx.index->SearchBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(UrlSet(results[0]),
            UrlSet(fx.index->Search(queries[0], 10, 0, kNoCategoryFilter,
                                    narrow)));
  EXPECT_EQ(UrlSet(results[1]), UrlSet(fx.index->Search(queries[1], 10)));
  EXPECT_EQ(UrlSet(results[2]),
            UrlSet(fx.index->Search(queries[2], 10, 0, kNoCategoryFilter,
                                    broad)));
  EXPECT_EQ(UrlSet(results[3]),
            UrlSet(fx.index->Search(queries[3], 10, 0, 2)));
  EXPECT_NE(stats[0].strategy, FilterScanStats::Strategy::kNone);
  EXPECT_NE(stats[2].strategy, FilterScanStats::Strategy::kNone);
}

// The generic base-class fallback (over-fetch + post-filter) that non-IVF
// index types inherit, exercised via a qualified call on the IVF instance.
TEST(IvfFilterTest, BaseClassFallbackFiltersCorrectly) {
  FlatFixture fx(800, 8);
  FilterExpression filter;
  filter.WithCategory(1);
  FilterScanStats stats;
  const auto hits = fx.index->ImageIndex::Search(
      fx.Query(5), 10, fx.quantizer->num_clusters(), kNoCategoryFilter,
      filter, &stats);
  EXPECT_EQ(stats.strategy, FilterScanStats::Strategy::kFallback);
  ASSERT_EQ(hits.size(), 10u);
  const auto oracle = fx.BruteForceTopK(fx.Query(5), 10, filter);
  EXPECT_EQ(UrlSet(hits), std::set<std::string>(oracle.begin(), oracle.end()));
}

TEST(IvfFilterTest, NumericUpdatesMoveImagesAcrossTheFilterBoundary) {
  FlatFixture fx(500, 8);
  FilterExpression filter;
  filter.WithMin(FilterField::kSales, 1u << 20);
  const FeatureVector q(fx.entries[7].feature);
  EXPECT_TRUE(fx.index
                  ->Search(q, 5, fx.quantizer->num_clusters(),
                           kNoCategoryFilter, filter)
                  .empty());
  // Promote product 8 (entry 7) above the threshold: it must now be found.
  fx.index->UpdateProductAttributes(
      8, {.sales = 1u << 21, .price_cents = 1, .praise = 1});
  const auto hits = fx.index->Search(q, 5, fx.quantizer->num_clusters(),
                                     kNoCategoryFilter, filter);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].product_id, 8u);
}

// TSan target: one writer mutating numeric attributes and validity while
// readers run filtered searches. Correctness bar during the race: no data
// race, k respected, and categories (immutable) always honored.
TEST(IvfFilterTest, ConcurrentAttributeUpdatesDuringFilteredSearch) {
  FlatFixture fx(1000, 8);
  FilterExpression filter;
  filter.WithCategory(2).WithMin(FilterField::kSales, 100);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(77);
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto pid = static_cast<ProductId>(1 + rng.Below(1000));
      fx.index->UpdateProductAttributes(
          pid, {.sales = rng.Below(2000), .price_cents = rng.Below(10000),
                .praise = rng.Below(50)});
      fx.index->SetProductValidity(pid, ++round % 3 != 0);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const auto hits = fx.index->Search(fx.Query(t * 1000 + i), 5, 0,
                                           kNoCategoryFilter, filter);
        EXPECT_LE(hits.size(), 5u);
        for (const auto& h : hits) EXPECT_EQ(h.category, 2u);
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---------------------------------------------------------------------------
// IVF-PQ pushdown
// ---------------------------------------------------------------------------

struct PqFilterFixture {
  PqFilterFixture() {
    Rng rng(321);
    std::vector<FeatureVector> training;
    for (std::size_t i = 0; i < 1024; ++i) {
      FeatureVector v(kDim);
      for (float& x : v) x = static_cast<float>(rng.NextGaussian());
      training.push_back(std::move(v));
    }
    KMeansConfig kc;
    kc.num_clusters = 16;
    quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
    ProductQuantizerConfig pc;
    pc.num_subspaces = 8;
    pc.codebook_size = 64;
    pq = std::make_shared<ProductQuantizer>(
        ProductQuantizer::Train(training, pc));
  }

  std::unique_ptr<IvfPqIndex> Build(std::size_t images,
                                    IvfPqIndexConfig config = {}) {
    auto index = std::make_unique<IvfPqIndex>(quantizer, pq, config);
    Rng rng(55);
    features.clear();
    for (std::size_t i = 0; i < images; ++i) {
      FeatureVector v(kDim);
      for (float& x : v) x = static_cast<float>(rng.NextGaussian());
      index->AddImage(MakeImageUrl(static_cast<ProductId>(i + 1), 0),
                      static_cast<ProductId>(i + 1),
                      static_cast<CategoryId>(i % 8),
                      {.sales = i, .price_cents = (i * 7) % 10000,
                       .praise = i % 100},
                      "", v);
      features.push_back(std::move(v));
    }
    return index;
  }

  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::shared_ptr<const ProductQuantizer> pq;
  std::vector<FeatureVector> features;
};

TEST(IvfPqFilterTest, HitsSatisfyPredicatesAcrossSelectivities) {
  PqFilterFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  const auto index = fx.Build(2000, config);
  const std::uint64_t thresholds[] = {1000, 1900, 1998};  // 50% / 5% / 0.1%
  Rng rng(9);
  for (const std::uint64_t min_sales : thresholds) {
    FilterExpression filter;
    filter.WithMin(FilterField::kSales, min_sales);
    for (int qi = 0; qi < 10; ++qi) {
      FeatureVector q(kDim);
      for (float& x : q) x = static_cast<float>(rng.NextGaussian());
      FilterScanStats stats;
      const auto hits = index->Search(q, 10, 0, kNoCategoryFilter, filter,
                                      &stats);
      EXPECT_NE(stats.strategy, FilterScanStats::Strategy::kNone);
      for (const auto& h : hits) {
        EXPECT_GE(h.attributes.sales, min_sales) << h.image_url;
      }
      // With every list probed the candidate set is complete, so the hit
      // count must reach min(k, matching population).
      const auto full = index->Search(q, 10, 16, kNoCategoryFilter, filter);
      EXPECT_EQ(full.size(), std::min<std::size_t>(10, 2000 - min_sales));
      for (const auto& h : full) {
        EXPECT_GE(h.attributes.sales, min_sales);
      }
    }
  }
}

TEST(IvfPqFilterTest, RerankPreservesPredicates) {
  PqFilterFixture fx;
  IvfPqIndexConfig config;
  config.nprobe = 16;
  config.rerank_candidates = 50;  // IVFADC+R: exact re-rank of the shortlist
  config.keep_raw_vectors = true;
  const auto index = fx.Build(1000, config);
  FilterExpression filter;
  filter.WithCategory(4).WithMin(FilterField::kSales, 200);
  Rng rng(13);
  for (int qi = 0; qi < 10; ++qi) {
    FeatureVector q(kDim);
    for (float& x : q) x = static_cast<float>(rng.NextGaussian());
    for (const auto& h : index->Search(q, 10, 0, kNoCategoryFilter, filter)) {
      EXPECT_EQ(h.category, 4u);
      EXPECT_GE(h.attributes.sales, 200u);
    }
  }
}

TEST(IvfPqFilterTest, ZeroMatchIsEmptyButSuccessful) {
  PqFilterFixture fx;
  const auto index = fx.Build(500);
  FilterExpression filter;
  filter.WithMin(FilterField::kPraise, 1u << 20);
  FilterScanStats stats;
  FeatureVector q(kDim, 0.5f);
  EXPECT_TRUE(
      index->Search(q, 10, 0, kNoCategoryFilter, filter, &stats).empty());
  EXPECT_EQ(stats.matches, 0u);
}

// ---------------------------------------------------------------------------
// Query cache: the filter is part of the key
// ---------------------------------------------------------------------------

TEST(QueryCacheFilterTest, QueriesDifferingOnlyInPredicateNeverShareEntries) {
  QueryCache cache(kDim);
  const FeatureVector feature(kDim, 0.25f);
  const FeatureView view(feature.data(), feature.size());
  FilterExpression cheap;
  cheap.WithMax(FilterField::kPriceCents, 5000);
  FilterExpression cheaper;
  cheaper.WithMax(FilterField::kPriceCents, 4999);

  const auto key_cheap = cache.KeyFor(view, 10, 4, kNoCategoryFilter, cheap);
  const auto key_cheaper =
      cache.KeyFor(view, 10, 4, kNoCategoryFilter, cheaper);
  const auto key_unfiltered = cache.KeyFor(view, 10, 4);
  EXPECT_NE(key_cheap, key_cheaper);
  EXPECT_NE(key_cheap, key_unfiltered);

  QueryResponse response;
  SearchHit hit;
  hit.product_id = 42;
  response.results.push_back({hit, 1.0});
  cache.Insert(key_cheap, 0, response);
  EXPECT_TRUE(cache.Lookup(key_cheap, 0).has_value());
  EXPECT_FALSE(cache.Lookup(key_cheaper, 0).has_value());
  EXPECT_FALSE(cache.Lookup(key_unfiltered, 0).has_value());
}

TEST(QueryCacheFilterTest, KeyIsDeterministicForEqualFilters) {
  QueryCache cache(kDim);
  const FeatureVector feature(kDim, 0.5f);
  const FeatureView view(feature.data(), feature.size());
  FilterExpression a;
  a.WithCategory(3).WithMin(FilterField::kSales, 10);
  FilterExpression b;
  b.WithCategory(3).WithMin(FilterField::kSales, 10);
  EXPECT_EQ(cache.KeyFor(view, 10, 4, kNoCategoryFilter, a),
            cache.KeyFor(view, 10, 4, kNoCategoryFilter, b));
}

// ---------------------------------------------------------------------------
// Cluster mode: hybrid queries end to end
// ---------------------------------------------------------------------------

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_partitions = 4;
  config.replicas_per_partition = 1;
  config.num_brokers = 2;
  config.num_blenders = 1;
  config.searcher_threads = 1;
  config.broker_threads = 2;
  config.blender_threads = 2;
  config.embedder = {.dim = 16, .num_categories = 8, .seed = 5};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.training_sample = 512;
  config.ivf.nprobe = 8;
  config.build_threads = 4;
  return config;
}

std::unique_ptr<VisualSearchCluster> MakeCluster(
    ClusterConfig config = SmallConfig(), std::size_t products = 200) {
  auto cluster = std::make_unique<VisualSearchCluster>(config);
  CatalogGenConfig cg;
  cg.num_products = products;
  cg.num_categories = config.embedder.num_categories;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

QueryImage QueryFor(VisualSearchCluster& cluster, ProductId id,
                    std::uint64_t seed = 1) {
  const auto record = cluster.catalog().Get(id);
  EXPECT_TRUE(record.has_value());
  return QueryImage{id, record->category, seed};
}

TEST(ClusterFilterTest, HybridQueryReturnsOnlyMatchingResults) {
  auto cluster = MakeCluster();
  QueryOptions options;
  options.filter.WithMax(FilterField::kPriceCents, 8000);
  int answered = 0;
  for (int q = 0; q < 10; ++q) {
    const ProductId target = 1 + (q * 13) % 200;
    const auto response =
        cluster->Query(QueryFor(*cluster, target, q), options);
    for (const auto& r : response.results) {
      EXPECT_TRUE(options.filter.Matches(r.hit.category, r.hit.attributes))
          << r.hit.image_url;
    }
    if (!response.results.empty()) ++answered;
  }
  EXPECT_GT(answered, 0);
  // Observability landed: the searcher recorded filter stage time, a
  // selectivity sample and a strategy decision for the hybrid queries.
  const auto& registry = cluster->registry();
  const auto* stage = registry.FindHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "searcher_filter"));
  ASSERT_NE(stage, nullptr);
  EXPECT_GT(stage->Count(), 0u);
  const auto* selectivity =
      registry.FindHistogram("jdvs_filter_selectivity_bp");
  ASSERT_NE(selectivity, nullptr);
  EXPECT_GT(selectivity->Count(), 0u);
  const auto* pre = registry.FindCounter(
      obs::Labeled("jdvs_filter_strategy_total", "strategy", "pre"));
  const auto* post = registry.FindCounter(
      obs::Labeled("jdvs_filter_strategy_total", "strategy", "post"));
  const std::uint64_t strategies =
      (pre != nullptr ? pre->Value() : 0) +
      (post != nullptr ? post->Value() : 0);
  EXPECT_GT(strategies, 0u);
}

TEST(ClusterFilterTest, ZeroMatchFilterIsEmptyButSuccessful) {
  auto cluster = MakeCluster();
  QueryOptions options;
  options.filter.WithMin(FilterField::kSales, ~std::uint64_t{0} - 1);
  const auto response = cluster->Query(QueryFor(*cluster, 1, 1), options);
  EXPECT_TRUE(response.results.empty());
  EXPECT_FALSE(response.degraded);  // every partition answered, none failed
  EXPECT_EQ(response.broker_failures, 0u);
}

TEST(ClusterFilterTest, FilterEliminatingProbedListsIsEmptyButSuccessful) {
  auto cluster = MakeCluster();
  // A filter that keeps a handful of images alive cluster-wide: with tight
  // nprobe the probed lists of most queries contain none of them. The query
  // must still succeed (possibly empty), never error or report degradation.
  QueryOptions options;
  options.nprobe = 1;
  options.filter.WithCategoryRange(2, 2).WithMin(FilterField::kSales, 1);
  for (int q = 0; q < 10; ++q) {
    const auto response =
        cluster->Query(QueryFor(*cluster, 1 + q * 17, q), options);
    EXPECT_FALSE(response.degraded);
    for (const auto& r : response.results) {
      EXPECT_TRUE(options.filter.Matches(r.hit.category, r.hit.attributes));
    }
  }
}

TEST(ClusterFilterTest, DegradedEffortNeverViolatesTheFilter) {
  ClusterConfig config = SmallConfig();
  // Every window overloaded (p99 threshold 1us): the controller ratchets to
  // full degradation and stays, so hybrid queries run with shrunk nprobe
  // and no re-ranking — the filter contract must survive both.
  config.load_control.p99_degrade_micros = 1;
  config.load_control.window_micros = 1'000;
  config.load_control.min_window_samples = 1;
  auto cluster = MakeCluster(config);
  QueryOptions options;
  options.filter.WithMax(FilterField::kPriceCents, 8000);
  int degraded_answers = 0;
  for (int q = 0; q < 50; ++q) {
    const auto response =
        cluster->Query(QueryFor(*cluster, 1 + (q % 200), q), options);
    for (const auto& r : response.results) {
      EXPECT_TRUE(options.filter.Matches(r.hit.category, r.hit.attributes))
          << "degradation level " << response.degradation_level;
    }
    if (response.degradation_level > 0 && !response.results.empty()) {
      ++degraded_answers;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(1'500));
  }
  EXPECT_GT(degraded_answers, 0) << "ladder never engaged under load";
}

TEST(ClusterFilterTest, PartitionFailoverReturnsFilteredPartialResults) {
  auto cluster = MakeCluster();
  // Single replica per partition: failing partition 0's searcher leaves the
  // broker nothing to fail over to, so answers are partial — and every hit
  // that does come back must still satisfy the predicates.
  cluster->searcher(0).node().set_failed(true);
  QueryOptions options;
  options.filter.WithMax(FilterField::kPriceCents, 20000);
  bool saw_degraded = false;
  bool saw_results = false;
  for (int q = 0; q < 10; ++q) {
    const auto response =
        cluster->Query(QueryFor(*cluster, 1 + q * 19, q), options);
    saw_degraded = saw_degraded || response.degraded;
    saw_results = saw_results || !response.results.empty();
    for (const auto& r : response.results) {
      EXPECT_TRUE(options.filter.Matches(r.hit.category, r.hit.attributes));
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_results);
  cluster->searcher(0).node().set_failed(false);
}

}  // namespace
}  // namespace jdvs

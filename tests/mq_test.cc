// Tests for the message queue substrate: topic fan-out and the day log.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mq/message.h"
#include "mq/message_log.h"
#include "mq/topic_queue.h"

namespace jdvs {
namespace {

ProductUpdateMessage MakeMessage(UpdateType type, ProductId id) {
  ProductUpdateMessage m;
  m.type = type;
  m.product_id = id;
  return m;
}

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(UpdateTypeName(UpdateType::kAttributeUpdate),
               "attribute_update");
  EXPECT_STREQ(UpdateTypeName(UpdateType::kAddProduct), "add_product");
  EXPECT_STREQ(UpdateTypeName(UpdateType::kRemoveProduct), "remove_product");
}

TEST(MessageTest, ToStringContainsFields) {
  ProductUpdateMessage m = MakeMessage(UpdateType::kAddProduct, 42);
  m.image_urls = {"u1", "u2"};
  const std::string s = ToString(m);
  EXPECT_NE(s.find("add_product"), std::string::npos);
  EXPECT_NE(s.find("product=42"), std::string::npos);
  EXPECT_NE(s.find("images=2"), std::string::npos);
}

TEST(TopicQueueTest, DeliversToSubscriber) {
  TopicQueue queue;
  auto sub = queue.Subscribe("t");
  EXPECT_EQ(queue.Publish("t", MakeMessage(UpdateType::kAddProduct, 1)), 1u);
  const auto received = sub->Receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->product_id, 1u);
}

TEST(TopicQueueTest, FanOutToAllSubscribers) {
  TopicQueue queue;
  auto a = queue.Subscribe("t");
  auto b = queue.Subscribe("t");
  auto c = queue.Subscribe("t");
  EXPECT_EQ(queue.Publish("t", MakeMessage(UpdateType::kRemoveProduct, 5)),
            3u);
  for (auto& sub : {a, b, c}) {
    EXPECT_EQ(sub->Receive()->product_id, 5u);
  }
}

TEST(TopicQueueTest, PublishToUnknownTopicReachesNobody) {
  TopicQueue queue;
  EXPECT_EQ(queue.Publish("nope", MakeMessage(UpdateType::kAddProduct, 1)),
            0u);
}

TEST(TopicQueueTest, TopicsAreIsolated) {
  TopicQueue queue;
  auto a = queue.Subscribe("a");
  auto b = queue.Subscribe("b");
  queue.Publish("a", MakeMessage(UpdateType::kAddProduct, 1));
  EXPECT_EQ(a->pending(), 1u);
  EXPECT_EQ(b->pending(), 0u);
}

TEST(TopicQueueTest, CloseTopicDrainsSubscribers) {
  TopicQueue queue;
  auto sub = queue.Subscribe("t");
  queue.Publish("t", MakeMessage(UpdateType::kAddProduct, 1));
  queue.CloseTopic("t");
  EXPECT_TRUE(sub->Receive().has_value());   // drains buffered message
  EXPECT_FALSE(sub->Receive().has_value());  // then end-of-stream
  // Publishing after close is dropped.
  EXPECT_EQ(queue.Publish("t", MakeMessage(UpdateType::kAddProduct, 2)), 0u);
}

TEST(TopicQueueTest, SubscribeAfterCloseSeesEndOfStream) {
  TopicQueue queue;
  queue.Subscribe("t");
  queue.CloseTopic("t");
  auto late = queue.Subscribe("t");
  EXPECT_FALSE(late->Receive().has_value());
}

TEST(TopicQueueTest, ConcurrentPublishersAllDelivered) {
  TopicQueue queue;
  auto sub = queue.Subscribe("t");
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 2000;
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    while (sub->Receive()) consumed.fetch_add(1);
  });
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        queue.Publish("t", MakeMessage(UpdateType::kAddProduct,
                                       static_cast<ProductId>(p * 10000 + i)));
      }
    });
  }
  for (auto& p : publishers) p.join();
  queue.CloseAll();
  consumer.join();
  EXPECT_EQ(consumed.load(), kPublishers * kPerPublisher);
}

TEST(MessageLogTest, AppendAssignsMonotoneSequence) {
  MessageLog log;
  EXPECT_EQ(log.last_sequence(), 0u);  // 0 = nothing appended yet
  EXPECT_EQ(log.Append(MakeMessage(UpdateType::kAddProduct, 1)), 1u);
  EXPECT_EQ(log.Append(MakeMessage(UpdateType::kAddProduct, 2)), 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last_sequence(), 2u);
}

TEST(MessageLogTest, ReplayVisitsInOrder) {
  MessageLog log;
  for (ProductId i = 0; i < 100; ++i) {
    log.Append(MakeMessage(UpdateType::kAttributeUpdate, i));
  }
  ProductId expected = 0;
  log.Replay([&](const ProductUpdateMessage& m) {
    EXPECT_EQ(m.product_id, expected);
    EXPECT_EQ(m.sequence, expected + 1);
    ++expected;
  });
  EXPECT_EQ(expected, 100u);
}

TEST(MessageLogTest, ClearTruncates) {
  MessageLog log;
  log.Append(MakeMessage(UpdateType::kAddProduct, 1));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  int visited = 0;
  log.Replay([&](const ProductUpdateMessage&) { ++visited; });
  EXPECT_EQ(visited, 0);
}

TEST(MessageLogTest, SequenceContinuesAfterClear) {
  MessageLog log;
  log.Append(MakeMessage(UpdateType::kAddProduct, 1));
  log.Clear();
  // A fresh day still gets globally increasing sequence numbers.
  EXPECT_EQ(log.Append(MakeMessage(UpdateType::kAddProduct, 2)), 2u);
}

TEST(MessageLogTest, TruncateThroughDropsCoveredPrefix) {
  MessageLog log;
  for (ProductId i = 0; i < 10; ++i) {
    log.Append(MakeMessage(UpdateType::kAttributeUpdate, i));
  }
  log.TruncateThrough(4);
  EXPECT_EQ(log.size(), 6u);
  std::uint64_t first = 0;
  log.Replay([&](const ProductUpdateMessage& m) {
    if (first == 0) first = m.sequence;
  });
  EXPECT_EQ(first, 5u);
  // Sequences keep counting from where they were.
  EXPECT_EQ(log.Append(MakeMessage(UpdateType::kAddProduct, 99)), 11u);
  // Truncating past the end empties the log without disturbing the counter.
  log.TruncateThrough(1000);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.last_sequence(), 11u);
}

TEST(MessageLogTest, ConcurrentAppendsAllRecorded) {
  MessageLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(MakeMessage(UpdateType::kAttributeUpdate, 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Sequences are unique and dense.
  std::vector<bool> seen(kThreads * kPerThread, false);
  log.Replay([&](const ProductUpdateMessage& m) {
    ASSERT_GE(m.sequence, 1u);
    ASSERT_LE(m.sequence, seen.size());
    EXPECT_FALSE(seen[m.sequence - 1]);
    seen[m.sequence - 1] = true;
  });
}

}  // namespace
}  // namespace jdvs

// Ablation — lock-free inverted-list expansion (Section 2.3, Figure 9).
//
// Paper claim: pre-allocated lists with background-copied doubling "ensure a
// lock-free and fast index update" — readers are never blocked by growth and
// the writer never pays the O(n) copy inline.
//
// Harness: a single writer appends ids while reader threads continuously
// scan, comparing the paper's lock-free list against a mutex-guarded vector
// baseline. Reports writer throughput, aggregate reader scan throughput, and
// the worst single append stall (the inline-reallocation spike the
// background copy is designed to remove).
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_common.h"

namespace {

using namespace jdvs;

struct RunResult {
  double writer_appends_per_sec;
  double reader_scans_per_sec;
  Micros worst_append_micros;
};

template <typename List>
RunResult Run(List& list, std::size_t num_appends, int num_readers) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::size_t n = 0;
        list.Scan([&n](LocalId) { ++n; });
        ++local;
      }
      scans.fetch_add(local);
    });
  }
  const auto& clock = MonotonicClock::Instance();
  Micros worst = 0;
  const Stopwatch watch(clock);
  for (std::size_t i = 0; i < num_appends; ++i) {
    const Micros start = clock.NowMicros();
    list.Append(static_cast<LocalId>(i));
    worst = std::max(worst, clock.NowMicros() - start);
  }
  const double elapsed = watch.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  return RunResult{static_cast<double>(num_appends) / elapsed,
                   static_cast<double>(scans.load()) / elapsed, worst};
}

}  // namespace

int main() {
  using namespace jdvs::bench;
  PrintHeader("Ablation: lock-free list expansion vs mutex-guarded list",
              "background-copied doubling 'ensures a lock-free and fast "
              "index update'");

  constexpr std::size_t kAppends = 2'000'000;
  constexpr int kReaders = 4;
  std::printf("%zu appends by one writer, %d concurrent scanning readers:\n\n",
              kAppends, kReaders);

  ThreadPool copier(2, "copier");
  InvertedList lock_free(1024, PoolCopyExecutor(copier));
  const RunResult lf = Run(lock_free, kAppends, kReaders);

  LockedInvertedList locked(1024);
  const RunResult lk = Run(locked, kAppends, kReaders);

  std::printf("%-22s %18s %18s %18s\n", "variant", "appends/s", "scans/s",
              "worst append");
  std::printf("%-22s %18.0f %18.1f %18s\n", "lock-free (paper)",
              lf.writer_appends_per_sec, lf.reader_scans_per_sec,
              FormatMicros(lf.worst_append_micros).c_str());
  std::printf("%-22s %18.0f %18.1f %18s\n", "mutex-guarded",
              lk.writer_appends_per_sec, lk.reader_scans_per_sec,
              FormatMicros(lk.worst_append_micros).c_str());
  std::printf("\nwriter speedup %.1fx, reader throughput ratio %.1fx "
              "(readers never block on the lock-free list)\n",
              lf.writer_appends_per_sec / lk.writer_appends_per_sec,
              lf.reader_scans_per_sec / lk.reader_scans_per_sec);
  return 0;
}

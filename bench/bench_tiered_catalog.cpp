// Tiered memory/disk serving: big catalog, small residency budget.
//
// The tiered subsystem keeps the IVF head (quantizer, directory, filters)
// in RAM and leaves posting-list payloads in the mmap'd v4 snapshot,
// demand-paged through the hot-list residency cache (clock eviction, pins).
// This harness builds a catalog whose posting bytes are ~10x the residency
// budget, serves it from the v4 snapshot under a Zipfian query mix, and
// answers the three questions that decide whether tiering is shippable:
//
//   1. Correctness: recall@10 against the RAM-resident index (must be 1.0 —
//      eviction is advisory page release, never data loss).
//   2. Hot-path cost: warmed Zipfian QPS and p99 vs the RAM-resident
//      baseline (target: within 1.5x).
//   3. Cold-start: per-window latency + cache hit rate as the cache fills
//      from a genuinely cold mapping (drop_pages_on_load).
//
// Flags: --quick (smaller corpus + fewer queries, CI smoke), --seed=N,
// --json (also write BENCH_tiered_catalog.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

struct Corpus {
  std::unique_ptr<IvfIndex> ram;           // RAM-resident baseline
  std::vector<FeatureVector> pool;         // distinct query vectors
  std::vector<std::vector<ImageId>> truth; // RAM top-k ids per pool entry
};

constexpr std::size_t kTopK = 10;
constexpr std::size_t kCategories = 50;
// The Zipf head of the pool queries a few hot categories, so hot traffic
// concentrates on the posting lists holding those categories' images — the
// "hot catalog slice" shape tiering is built for. Category-structured
// features (SyntheticEmbedder) matter here: on structureless gaussian data
// kmeans produces a handful of huge near-origin lists that every probe set
// shares, a single nprobe fan-out exceeds the 1/10 budget, and the cache
// thrashes regardless of query skew (recorded as a negative result in
// EXPERIMENTS.md).
constexpr std::size_t kHotCategories = 3;
constexpr std::size_t kHotPoolEntries = 24;

Corpus BuildCorpus(std::size_t images, std::size_t pool_size,
                   std::uint64_t seed) {
  constexpr std::size_t kDim = 64;
  Corpus corpus;
  Rng rng(seed);
  SyntheticEmbedder embedder(
      {.dim = kDim, .num_categories = kCategories, .seed = seed});

  IvfIndexConfig fc;
  fc.nprobe = 8;
  std::vector<FeatureVector> training;
  std::vector<FeatureVector> features;
  features.reserve(images);
  for (std::size_t i = 0; i < images; ++i) {
    const auto product = static_cast<ProductId>(i + 1);
    const auto category = static_cast<CategoryId>(i % kCategories);
    features.push_back(
        embedder.Extract({MakeImageUrl(product, 0), product, category}));
    if (training.size() < 2048) training.push_back(features.back());
  }
  KMeansConfig kc;
  kc.num_clusters = 512;  // fine list granularity: hot set ≪ budget lists
  const auto quantizer =
      std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
  corpus.ram = std::make_unique<IvfIndex>(quantizer, fc);
  for (std::size_t i = 0; i < images; ++i) {
    const auto product = static_cast<ProductId>(i + 1);
    corpus.ram->AddImage(MakeImageUrl(product, 0), product,
                         static_cast<CategoryId>(i % kCategories),
                         SampleProductAttributes(rng), "", features[i]);
  }

  corpus.pool.reserve(pool_size);
  corpus.truth.reserve(pool_size);
  for (std::size_t q = 0; q < pool_size; ++q) {
    ProductId pid;
    CategoryId category;
    if (q < kHotPoolEntries) {
      // Hot head: queries for products in a few hot categories.
      category = static_cast<CategoryId>(q % kHotCategories);
      pid = static_cast<ProductId>(category + 1 +
                                   kCategories * (q / kHotCategories));
    } else {
      pid = static_cast<ProductId>(rng.Below(images) + 1);
      category = static_cast<CategoryId>((pid - 1) % kCategories);
    }
    FeatureVector v = embedder.ExtractQuery(pid, category, q);
    std::vector<ImageId> ids;
    for (const SearchHit& hit : corpus.ram->Search(v, kTopK)) {
      ids.push_back(hit.image_id);
    }
    corpus.pool.push_back(std::move(v));
    corpus.truth.push_back(std::move(ids));
  }
  return corpus;
}

// Zipf-ranked pick over the query pool: popular queries repeat, so their
// nprobe'd lists are the hot set the residency cache should retain.
struct ZipfPicker {
  std::vector<double> cdf;
  ZipfPicker(std::size_t n, double exponent) {
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cdf[r] = total;
    }
    for (double& c : cdf) c /= total;
  }
  std::size_t Pick(Rng& rng) const {
    const auto it =
        std::lower_bound(cdf.begin(), cdf.end(), rng.NextDouble());
    return static_cast<std::size_t>(it - cdf.begin());
  }
};

struct MeasureResult {
  double qps = 0.0;
  double mean_us = 0.0;
  std::int64_t p99_us = 0;
  double recall = 0.0;
};

MeasureResult Measure(IvfIndex& index, const Corpus& corpus,
                      const std::vector<std::size_t>& sequence) {
  MeasureResult out;
  const auto& clock = MonotonicClock::Instance();
  Histogram latency;
  std::size_t overlap = 0;
  std::size_t truth_total = 0;
  const Stopwatch wall(clock);
  for (const std::size_t q : sequence) {
    const Micros start = clock.NowMicros();
    const auto hits = index.Search(corpus.pool[q], kTopK);
    latency.Record(clock.NowMicros() - start);
    const auto& want = corpus.truth[q];
    truth_total += want.size();
    for (const SearchHit& hit : hits) {
      if (std::find(want.begin(), want.end(), hit.image_id) != want.end()) {
        ++overlap;
      }
    }
  }
  const double seconds = wall.ElapsedSeconds();
  out.qps =
      seconds > 0 ? static_cast<double>(sequence.size()) / seconds : 0.0;
  out.mean_us = latency.Mean();
  out.p99_us = latency.P99();
  out.recall = truth_total > 0 ? static_cast<double>(overlap) /
                                     static_cast<double>(truth_total)
                               : 0.0;
  return out;
}

Json TierStatsJson(const TieredStoreStats& s) {
  Json j = Json::Object();
  j.Set("num_lists", s.num_lists);
  j.Set("resident_lists", s.resident_lists);
  j.Set("resident_bytes", s.resident_bytes);
  j.Set("budget_bytes", s.budget_bytes);
  j.Set("payload_bytes", s.payload_bytes);
  j.Set("jdvs_tier_hits_total", s.hits);
  j.Set("jdvs_tier_misses_total", s.misses);
  j.Set("jdvs_tier_evictions_total", s.evictions);
  j.Set("jdvs_tier_probes_dropped_total", s.probes_dropped);
  j.Set("hit_rate", (s.hits + s.misses) > 0
                        ? static_cast<double>(s.hits) /
                              static_cast<double>(s.hits + s.misses)
                        : 0.0);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jdvs;
  using namespace jdvs::bench;

  bool quick = false;
  std::uint64_t seed = 2018;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.data() + 7, nullptr, 10);
    }
  }

  PrintHeader("Tiered catalog: head in RAM, postings on disk",
              "full catalog served from a v4 snapshot with ~1/10 of the "
              "posting bytes resident; Zipfian mix, cold-start curve");

  const std::size_t images = quick ? 20'000 : 100'000;
  const std::size_t pool_size = quick ? 64 : 256;
  const std::size_t warm_queries = quick ? 400 : 2'000;
  const std::size_t measured_queries = quick ? 400 : 4'000;
  const std::size_t warmup_window = quick ? 50 : 200;
  const std::size_t warmup_windows = 10;
  constexpr double kZipfExponent = 1.3;

  std::printf("corpus: %zu images, dim 64, 512 lists, nprobe 8; query pool "
              "%zu, zipf s=%.1f, k=%zu\n\n",
              images, pool_size, kZipfExponent, kTopK);

  Corpus corpus = BuildCorpus(images, pool_size, seed);
  const std::string snap =
      (std::filesystem::temp_directory_path() /
       ("jdvs_bench_tiered_" + std::to_string(::getpid()) + ".v4"))
          .string();
  SaveTieredSnapshot(*corpus.ram, snap);

  // Budget: ~1/10 of the catalog's posting bytes.
  std::size_t payload_bytes = 0;
  {
    const auto probe = LoadTieredSnapshot(snap, TieredStoreConfig{});
    payload_bytes = probe->tiered_store()->Stats().payload_bytes;
  }
  TieredStoreConfig tier_config;
  tier_config.resident_bytes_budget =
      std::max<std::size_t>(1, payload_bytes / 10);
  std::printf("snapshot: %.1f MB payload on disk, residency budget %.1f MB "
              "(1/10)\n\n",
              static_cast<double>(payload_bytes) / 1e6,
              static_cast<double>(tier_config.resident_bytes_budget) / 1e6);

  // One shared Zipfian sequence so every condition sees identical traffic.
  Rng traffic(seed + 1);
  const ZipfPicker zipf(pool_size, kZipfExponent);
  std::vector<std::size_t> warm_seq(warm_queries);
  for (auto& q : warm_seq) q = zipf.Pick(traffic);
  std::vector<std::size_t> measure_seq(measured_queries);
  for (auto& q : measure_seq) q = zipf.Pick(traffic);

  // Condition 1: RAM-resident baseline.
  Measure(*corpus.ram, corpus, warm_seq);  // same cache warmth treatment
  const MeasureResult ram = Measure(*corpus.ram, corpus, measure_seq);
  std::printf("%-22s %9.0f QPS  mean %7.1f us  p99 %6lld us  recall@10 %.4f\n",
              "ram-resident", ram.qps, ram.mean_us,
              static_cast<long long>(ram.p99_us), ram.recall);

  // Condition 2: cold-start warmup curve on a fresh mapping.
  const auto cold = LoadTieredSnapshot(snap, tier_config);
  Rng cold_traffic(seed + 2);
  Json curve = Json::Array();
  std::printf("\ncold-start warmup (window = %zu queries):\n", warmup_window);
  std::printf("  %6s %10s %9s %9s\n", "window", "mean us", "hit rate",
              "resident");
  for (std::size_t w = 0; w < warmup_windows; ++w) {
    std::vector<std::size_t> window_seq(warmup_window);
    for (auto& q : window_seq) q = zipf.Pick(cold_traffic);
    const MeasureResult r = Measure(*cold, corpus, window_seq);
    const TieredStoreStats s = cold->tiered_store()->Stats();
    const double hit_rate =
        (s.hits + s.misses) > 0 ? static_cast<double>(s.hits) /
                                      static_cast<double>(s.hits + s.misses)
                                : 0.0;
    std::printf("  %6zu %10.1f %9.3f %7zu/%zu\n", w, r.mean_us, hit_rate,
                s.resident_lists, s.num_lists);
    Json row = Json::Object();
    row.Set("window", w);
    row.Set("mean_us", r.mean_us);
    row.Set("p99_us", r.p99_us);
    row.Set("recall_at_10", r.recall);
    row.Set("cumulative_hit_rate", hit_rate);
    row.Set("resident_lists", s.resident_lists);
    curve.Push(std::move(row));
  }

  // Condition 3: warmed tiered serving under the same measured traffic.
  const auto tiered = LoadTieredSnapshot(snap, tier_config);
  Measure(*tiered, corpus, warm_seq);
  const MeasureResult warm = Measure(*tiered, corpus, measure_seq);
  const TieredStoreStats tier_stats = tiered->tiered_store()->Stats();
  std::printf("\n%-22s %9.0f QPS  mean %7.1f us  p99 %6lld us  recall@10 "
              "%.4f\n",
              "tiered (warmed, 1/10)", warm.qps, warm.mean_us,
              static_cast<long long>(warm.p99_us), warm.recall);
  const double slowdown = warm.qps > 0 ? ram.qps / warm.qps : 0.0;
  const double hit_rate =
      (tier_stats.hits + tier_stats.misses) > 0
          ? static_cast<double>(tier_stats.hits) /
                static_cast<double>(tier_stats.hits + tier_stats.misses)
          : 0.0;
  std::printf("\nhot path: %.2fx of RAM-resident QPS (target <= 1.5x), tier "
              "hit rate %.3f, %llu evictions, recall delta %+.4f\n",
              slowdown, hit_rate,
              static_cast<unsigned long long>(tier_stats.evictions),
              warm.recall - ram.recall);

  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "tiered_catalog");
    root.Set("images", images);
    root.Set("query_pool", pool_size);
    root.Set("zipf_exponent", kZipfExponent);
    root.Set("k", kTopK);
    root.Set("seed", seed);
    root.Set("quick", quick);
    root.Set("payload_bytes", payload_bytes);
    root.Set("residency_budget_bytes", tier_config.resident_bytes_budget);
    Json ram_j = Json::Object();
    ram_j.Set("qps", ram.qps);
    ram_j.Set("mean_us", ram.mean_us);
    ram_j.Set("p99_us", ram.p99_us);
    ram_j.Set("recall_at_10", ram.recall);
    root.Set("ram_resident", std::move(ram_j));
    Json warm_j = Json::Object();
    warm_j.Set("qps", warm.qps);
    warm_j.Set("mean_us", warm.mean_us);
    warm_j.Set("p99_us", warm.p99_us);
    warm_j.Set("recall_at_10", warm.recall);
    warm_j.Set("qps_slowdown_vs_ram", slowdown);
    root.Set("tiered_warmed", std::move(warm_j));
    root.Set("tier_stats", TierStatsJson(tier_stats));
    root.Set("cold_start_curve", std::move(curve));
    WriteBenchJson("tiered_catalog", root);
  }

  std::filesystem::remove(snap);
  return 0;
}

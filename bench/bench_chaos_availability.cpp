// Availability under searcher failures (Section 2.4).
//
// Paper claim: "Each partition can have multiple copies for availability"
// and brokers/blenders have "multiple identical instances for load balancing
// and fault tolerance."
//
// Harness: a sustained closed-loop query load while searcher nodes are
// killed and revived mid-run. With one replica per partition, killing a
// searcher loses that partition's results (partial answers, subject-hit rate
// drops); with two replicas, brokers fail over and quality holds.
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

struct ChaosResult {
  double qps;
  double hit_rate;
  std::uint64_t errors;
  std::uint64_t failovers;
  std::uint64_t partition_failures;
};

ChaosResult Run(std::size_t replicas) {
  TestbedOptions options;
  options.num_products = 5000;
  options.num_partitions = 8;
  options.query_extraction_micros = 2000;
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = replicas;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  // Chaos thread: every cycle, kill the primary searchers of two random
  // partitions for 400ms, then revive them.
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      Searcher& a = cluster->searcher(rng.Below(8), 0);
      Searcher& b = cluster->searcher(rng.Below(8), 0);
      a.node().set_failed(true);
      b.node().set_failed(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      a.node().set_failed(false);
      b.node().set_failed(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = 6'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  stop.store(true, std::memory_order_release);
  chaos.join();

  std::uint64_t failovers = 0;
  std::uint64_t partition_failures = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failovers += cluster->broker(b).failovers();
    partition_failures += cluster->broker(b).partition_failures();
  }
  cluster->Stop();
  return ChaosResult{result.qps, result.subject_hit_rate, result.errors,
                     failovers, partition_failures};
}

}  // namespace

int main() {
  // Broker failover warnings are the expected condition here; keep the
  // report readable.
  SetLogLevel(LogLevel::kError);
  PrintHeader("Chaos: availability with searcher replicas under failures",
              "'Each partition can have multiple copies for availability'");

  std::printf("8 partitions, two random primary searchers down 50%% of the "
              "time, 16 client threads for 6s:\n\n");
  std::printf("%10s %10s %10s %9s %11s %20s\n", "replicas", "QPS",
              "hit rate", "errors", "failovers", "partial answers");
  for (const std::size_t replicas : {1u, 2u}) {
    const ChaosResult result = Run(replicas);
    std::printf("%10zu %10.0f %10.2f %9llu %11llu %20llu\n", replicas,
                result.qps, result.hit_rate,
                (unsigned long long)result.errors,
                (unsigned long long)result.failovers,
                (unsigned long long)result.partition_failures);
  }
  std::printf("\n(the availability win is coverage: with one replica, every "
              "query issued while a searcher is down silently loses that "
              "partition's candidates — 'partial answers' counts those; with "
              "two replicas the broker fails over and coverage stays "
              "complete. The subject-hit rate stays high either way because "
              "a product's images hash across several partitions — exactly "
              "the graceful degradation the partitioning scheme buys.)\n");
  return 0;
}

// Availability under searcher failures (Section 2.4).
//
// Paper claim: "Each partition can have multiple copies for availability"
// and brokers/blenders have "multiple identical instances for load balancing
// and fault tolerance."
//
// Harness, three escalating modes under a sustained closed-loop query load:
//
//   replicas=1            searchers killed/revived by the chaos thread; every
//                         query issued during an outage silently loses that
//                         partition's candidates.
//   replicas=2            same chaos; brokers fail over to the sibling
//                         replica, coverage holds.
//   replicas=2 + ctrl     chaos *crashes* searchers (index and high-water
//                         mark wiped, never revived by hand); the control
//                         plane detects the outage over heartbeats, restores
//                         the index from the partition's base snapshot,
//                         replays the day-log backlog, and re-admits the
//                         replica — recoveries and mean MTTR are reported.
//
// A final section runs a rolling full-index deployment (DeployFullIndex)
// under the same live load: every replica swaps to a freshly built index one
// at a time, and the >=1-serving-replica invariant keeps the partial-answer
// counter flat.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

constexpr std::size_t kPartitions = 8;

struct ChaosResult {
  double qps;
  double hit_rate;
  std::uint64_t errors;
  std::uint64_t failovers;
  std::uint64_t partition_failures;
  std::uint64_t degraded;
  std::uint64_t recoveries;
  double mttr_ms;
};

TestbedOptions ChaosOptions() {
  TestbedOptions options;
  options.num_products = 5000;
  options.num_partitions = kPartitions;
  options.query_extraction_micros = 2000;
  return options;
}

std::uint64_t SumDegraded(VisualSearchCluster& cluster) {
  std::uint64_t degraded = 0;
  for (std::size_t b = 0; b < cluster.num_blenders(); ++b) {
    const obs::Counter* c = cluster.registry().FindCounter(
        obs::Labeled("jdvs_blender_degraded_total", "blender",
                     cluster.blender(b).node().name()));
    if (c != nullptr) degraded += c->Value();
  }
  return degraded;
}

ChaosResult Run(std::size_t replicas, bool control_plane,
                const std::string& snapshot_dir) {
  const TestbedOptions options = ChaosOptions();
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = replicas;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  std::unique_ptr<ctrl::ClusterController> controller;
  if (control_plane) {
    ctrl::ControllerConfig cc;
    // Detection budget ~60ms: on the single-core bench host the probe shares
    // the searcher pool with 16 threads of scans, so a tighter budget reads
    // scheduler noise as outages and recovers healthy replicas.
    cc.detector.heartbeat_period_micros = 10'000;
    cc.detector.suspect_after_misses = 2;
    cc.detector.down_after_misses = 6;
    cc.recovery_poll_micros = 2'000;
    cc.snapshot_dir = snapshot_dir;
    controller = std::make_unique<ctrl::ClusterController>(*cluster, cc);
    controller->SnapshotAllPartitions();  // warm base images for recovery
    controller->Start();
  }

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      if (control_plane) {
        // Hard crash, no manual revive: only the controller brings the
        // replica back. Crash only an UP replica so we never yank one the
        // controller is mid-way through restoring.
        const std::size_t p = rng.Below(kPartitions);
        if (cluster->replica_states().Get(cluster->replica_slot(p, 0)) ==
            ctrl::ReplicaState::kUp) {
          cluster->searcher(p, 0).Crash();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
      } else {
        // Kill/revive by hand (the pre-control-plane harness): two random
        // primary searchers down 400ms out of every 800ms.
        Searcher& a = cluster->searcher(rng.Below(kPartitions), 0);
        Searcher& b = cluster->searcher(rng.Below(kPartitions), 0);
        a.node().set_failed(true);
        b.node().set_failed(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        a.node().set_failed(false);
        b.node().set_failed(false);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      }
    }
  });

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = 6'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  stop.store(true, std::memory_order_release);
  chaos.join();

  std::uint64_t failovers = 0;
  std::uint64_t partition_failures = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failovers += cluster->broker(b).failovers();
    partition_failures += cluster->broker(b).partition_failures();
  }
  ChaosResult out{result.qps,
                  result.subject_hit_rate,
                  result.errors,
                  failovers,
                  partition_failures,
                  SumDegraded(*cluster),
                  0,
                  0.0};
  if (controller) {
    out.recoveries = controller->recoveries();
    out.mttr_ms = controller->MeanRecoveryMicros() / 1000.0;
    controller->Stop();
  }
  cluster->Stop();
  return out;
}

struct RollingDeployResult {
  double qps;
  std::uint64_t errors;
  std::size_t replicas_updated;
  std::size_t replicas_skipped;
  std::size_t partitions;
  double elapsed_seconds;
  std::size_t catchup_replayed;
  std::size_t invariant_waits;
  std::uint64_t partial_during;
};

RollingDeployResult RunRollingDeployment(const std::string& snapshot_dir) {
  std::printf("\nRolling full-index deployment under live load "
              "(2 replicas/partition):\n");
  const TestbedOptions options = ChaosOptions();
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = 2;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  ctrl::ControllerConfig cc;
  cc.snapshot_dir = snapshot_dir;
  ctrl::ClusterController controller(*cluster, cc);
  controller.Start();

  std::uint64_t failures_before = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failures_before += cluster->broker(b).partition_failures();
  }

  // Query load for the whole rollout, plus a trickle of real-time updates
  // the swapped replicas must catch up over before rejoining. The rollout
  // runs in the background while the closed-loop client hammers the front
  // end for a fixed window sized to cover it.
  std::atomic<bool> stop{false};
  std::thread updates([&] {
    std::uint64_t next_id = 900'000;
    Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      ProductUpdateMessage add;
      add.type = UpdateType::kAddProduct;
      add.product_id = next_id;
      add.category_id = static_cast<CategoryId>(rng.Below(50));
      add.attributes = {.sales = 5, .price_cents = 1000, .praise = 2};
      add.image_urls.push_back(MakeImageUrl(next_id, 0));
      ++next_id;
      cluster->PublishUpdate(std::move(add));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  ctrl::RolloutReport report;
  std::thread rollout([&] { report = controller.DeployFullIndex(); });

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = 8'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult load = client.Run();

  rollout.join();
  stop.store(true, std::memory_order_release);
  updates.join();
  controller.Stop();

  std::uint64_t failures_after = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failures_after += cluster->broker(b).partition_failures();
  }
  std::printf("  load during rollout:    %.0f QPS, hit rate %.2f, %llu "
              "errors\n",
              load.qps, load.subject_hit_rate,
              (unsigned long long)load.errors);
  std::printf("  replicas swapped:       %zu (%zu skipped) across %zu "
              "partitions\n",
              report.replicas_updated, report.replicas_skipped,
              report.partitions);
  std::printf("  rollout elapsed:        %.2f s\n",
              static_cast<double>(report.elapsed_micros) / 1e6);
  std::printf("  base sequence:          %llu (delta replayed: %zu "
              "messages)\n",
              (unsigned long long)report.base_sequence,
              report.catchup_replayed);
  std::printf("  invariant waits:        %zu\n", report.invariant_waits);
  std::printf("  partial answers during: %llu (the >=1-serving-replica "
              "invariant held)\n",
              (unsigned long long)(failures_after - failures_before));
  cluster->Stop();
  return RollingDeployResult{load.qps,
                             load.errors,
                             report.replicas_updated,
                             report.replicas_skipped,
                             report.partitions,
                             static_cast<double>(report.elapsed_micros) / 1e6,
                             report.catchup_replayed,
                             report.invariant_waits,
                             failures_after - failures_before};
}

}  // namespace

int main(int argc, char** argv) {
  // Broker failover / recovery warnings are the expected condition here;
  // keep the report readable.
  SetLogLevel(LogLevel::kError);
  PrintHeader("Chaos: availability with searcher replicas under failures",
              "'Each partition can have multiple copies for availability'");

  const std::filesystem::path snapshot_dir =
      std::filesystem::temp_directory_path() / "jdvs_chaos_snapshots";
  std::filesystem::create_directories(snapshot_dir);

  std::printf("8 partitions, chaos thread killing primary searchers, 16 "
              "client threads for 6s per row:\n\n");
  std::printf("%10s %6s %8s %9s %7s %10s %9s %9s %11s %9s\n", "replicas",
              "ctrl", "QPS", "hit rate", "errors", "failovers", "partial",
              "degraded", "recoveries", "MTTR ms");
  struct Row {
    std::size_t replicas;
    bool control_plane;
  };
  Json chaos_rows = Json::Array();
  for (const Row row : {Row{1, false}, Row{2, false}, Row{2, true}}) {
    const ChaosResult result =
        Run(row.replicas, row.control_plane, snapshot_dir.string());
    std::printf("%10zu %6s %8.0f %9.2f %7llu %10llu %9llu %9llu %11llu "
                "%9.1f\n",
                row.replicas, row.control_plane ? "on" : "off", result.qps,
                result.hit_rate, (unsigned long long)result.errors,
                (unsigned long long)result.failovers,
                (unsigned long long)result.partition_failures,
                (unsigned long long)result.degraded,
                (unsigned long long)result.recoveries, result.mttr_ms);
    Json json_row = Json::Object();
    json_row.Set("replicas", row.replicas);
    json_row.Set("control_plane", row.control_plane);
    json_row.Set("qps", result.qps);
    json_row.Set("hit_rate", result.hit_rate);
    json_row.Set("errors", result.errors);
    json_row.Set("failovers", result.failovers);
    json_row.Set("partition_failures", result.partition_failures);
    json_row.Set("degraded", result.degraded);
    json_row.Set("recoveries", result.recoveries);
    json_row.Set("mttr_ms", result.mttr_ms);
    chaos_rows.Push(std::move(json_row));
  }
  std::printf("\n(replicas=1: every query issued while a searcher is down "
              "loses that partition's candidates — 'partial' counts those "
              "and 'degraded' the queries that answered from reduced "
              "coverage. replicas=2: the broker fails over and coverage "
              "holds. With the control plane, crashed searchers — index and "
              "catch-up state wiped, never revived by hand — come back "
              "automatically: heartbeat detection, snapshot restore, day-log "
              "catch-up, re-admission; MTTR is the mean DOWN-to-UP time.)\n");

  const RollingDeployResult rollout =
      RunRollingDeployment(snapshot_dir.string());
  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "chaos_availability");
    root.Set("rows", std::move(chaos_rows));
    Json rollout_json = Json::Object();
    rollout_json.Set("qps", rollout.qps);
    rollout_json.Set("errors", rollout.errors);
    rollout_json.Set("replicas_updated", rollout.replicas_updated);
    rollout_json.Set("replicas_skipped", rollout.replicas_skipped);
    rollout_json.Set("partitions", rollout.partitions);
    rollout_json.Set("elapsed_seconds", rollout.elapsed_seconds);
    rollout_json.Set("catchup_replayed", rollout.catchup_replayed);
    rollout_json.Set("invariant_waits", rollout.invariant_waits);
    rollout_json.Set("partial_during", rollout.partial_during);
    root.Set("rolling_deployment", std::move(rollout_json));
    WriteBenchJson("chaos_availability", root);
  }
  std::filesystem::remove_all(snapshot_dir);
  return 0;
}

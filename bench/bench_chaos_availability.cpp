// Availability under searcher failures (Section 2.4).
//
// Paper claim: "Each partition can have multiple copies for availability"
// and brokers/blenders have "multiple identical instances for load balancing
// and fault tolerance."
//
// Harness, three escalating modes under a sustained closed-loop query load:
//
//   replicas=1            searchers killed/revived by the chaos thread; every
//                         query issued during an outage silently loses that
//                         partition's candidates.
//   replicas=2            same chaos; brokers fail over to the sibling
//                         replica, coverage holds.
//   replicas=2 + ctrl     chaos *crashes* searchers (index and high-water
//                         mark wiped, never revived by hand); the control
//                         plane detects the outage over heartbeats, restores
//                         the index from the partition's base snapshot,
//                         replays the day-log backlog, and re-admits the
//                         replica — recoveries and mean MTTR are reported.
//
// A final section runs a rolling full-index deployment (DeployFullIndex)
// under the same live load: every replica swaps to a freshly built index one
// at a time, and the >=1-serving-replica invariant keeps the partial-answer
// counter flat.
//
// Gray-failure section (network faults the heartbeat detector cannot see):
//
//   limping replica       replica 0 of every partition answers with 50x hop
//                         latency but stays alive and acking. Undefended,
//                         half of each partition's dispatches land on the
//                         limper and the latency distribution collapses;
//                         defended (latency-aware selection + adaptive
//                         hedging + per-RPC timeouts), the broker routes
//                         around it and hedges the exploration traffic, so
//                         p99 stays within 2x the fault-free baseline.
//   lossy network         every searcher link silently drops a few percent
//                         of requests/replies. Undefended a dropped message
//                         hangs its query forever (open-loop: counted as
//                         timed_out_in_flight); defended the per-RPC timeout
//                         fires and the slot fails over, so success rate
//                         returns to ~100%.
//
// Disk-fault section (tiered snapshots + integrity layer, --disk-only to
// run it alone):
//
//   bit-flip corruption    every replica-0 tiered file gets one payload bit
//                          flipped on disk. Scrubbers and first fault-ins
//                          catch the checksum mismatch, quarantine the list,
//                          and queries complete degraded — never a wrong
//                          pair, never a crash. The control plane re-images
//                          each sick replica from its healthy sibling
//                          (quarantine repair) and the cluster returns to
//                          full health; repair MTTR is reported.
//
// Flags: --seed=N (fault schedule + workload seed), --quick (short windows
// for CI smoke), --disk-only (only the disk-fault section), --json (write
// BENCH_chaos_availability.json).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/fault_injector.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

constexpr std::size_t kPartitions = 8;

struct ChaosResult {
  double qps;
  double hit_rate;
  std::uint64_t errors;
  std::uint64_t failovers;
  std::uint64_t partition_failures;
  std::uint64_t degraded;
  std::uint64_t recoveries;
  double mttr_ms;
};

TestbedOptions ChaosOptions() {
  TestbedOptions options;
  options.num_products = 5000;
  options.num_partitions = kPartitions;
  options.query_extraction_micros = 2000;
  return options;
}

std::uint64_t SumDegraded(VisualSearchCluster& cluster) {
  std::uint64_t degraded = 0;
  for (std::size_t b = 0; b < cluster.num_blenders(); ++b) {
    const obs::Counter* c = cluster.registry().FindCounter(
        obs::Labeled("jdvs_blender_degraded_total", "blender",
                     cluster.blender(b).node().name()));
    if (c != nullptr) degraded += c->Value();
  }
  return degraded;
}

ChaosResult Run(std::size_t replicas, bool control_plane,
                const std::string& snapshot_dir) {
  const TestbedOptions options = ChaosOptions();
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = replicas;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  std::unique_ptr<ctrl::ClusterController> controller;
  if (control_plane) {
    ctrl::ControllerConfig cc;
    // Detection budget ~60ms: on the single-core bench host the probe shares
    // the searcher pool with 16 threads of scans, so a tighter budget reads
    // scheduler noise as outages and recovers healthy replicas.
    cc.detector.heartbeat_period_micros = 10'000;
    cc.detector.suspect_after_misses = 2;
    cc.detector.down_after_misses = 6;
    cc.recovery_poll_micros = 2'000;
    cc.snapshot_dir = snapshot_dir;
    controller = std::make_unique<ctrl::ClusterController>(*cluster, cc);
    controller->SnapshotAllPartitions();  // warm base images for recovery
    controller->Start();
  }

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      if (control_plane) {
        // Hard crash, no manual revive: only the controller brings the
        // replica back. Crash only an UP replica so we never yank one the
        // controller is mid-way through restoring.
        const std::size_t p = rng.Below(kPartitions);
        if (cluster->replica_states().Get(cluster->replica_slot(p, 0)) ==
            ctrl::ReplicaState::kUp) {
          cluster->searcher(p, 0).Crash();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
      } else {
        // Kill/revive by hand (the pre-control-plane harness): two random
        // primary searchers down 400ms out of every 800ms.
        Searcher& a = cluster->searcher(rng.Below(kPartitions), 0);
        Searcher& b = cluster->searcher(rng.Below(kPartitions), 0);
        a.node().set_failed(true);
        b.node().set_failed(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        a.node().set_failed(false);
        b.node().set_failed(false);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      }
    }
  });

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = 6'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  stop.store(true, std::memory_order_release);
  chaos.join();

  std::uint64_t failovers = 0;
  std::uint64_t partition_failures = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failovers += cluster->broker(b).failovers();
    partition_failures += cluster->broker(b).partition_failures();
  }
  ChaosResult out{result.qps,
                  result.subject_hit_rate,
                  result.errors,
                  failovers,
                  partition_failures,
                  SumDegraded(*cluster),
                  0,
                  0.0};
  if (controller) {
    out.recoveries = controller->recoveries();
    out.mttr_ms = controller->MeanRecoveryMicros() / 1000.0;
    controller->Stop();
  }
  cluster->Stop();
  return out;
}

struct RollingDeployResult {
  double qps;
  std::uint64_t errors;
  std::size_t replicas_updated;
  std::size_t replicas_skipped;
  std::size_t partitions;
  double elapsed_seconds;
  std::size_t catchup_replayed;
  std::size_t invariant_waits;
  std::uint64_t partial_during;
};

RollingDeployResult RunRollingDeployment(const std::string& snapshot_dir) {
  std::printf("\nRolling full-index deployment under live load "
              "(2 replicas/partition):\n");
  const TestbedOptions options = ChaosOptions();
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = 2;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  ctrl::ControllerConfig cc;
  cc.snapshot_dir = snapshot_dir;
  ctrl::ClusterController controller(*cluster, cc);
  controller.Start();

  std::uint64_t failures_before = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failures_before += cluster->broker(b).partition_failures();
  }

  // Query load for the whole rollout, plus a trickle of real-time updates
  // the swapped replicas must catch up over before rejoining. The rollout
  // runs in the background while the closed-loop client hammers the front
  // end for a fixed window sized to cover it.
  std::atomic<bool> stop{false};
  std::thread updates([&] {
    std::uint64_t next_id = 900'000;
    Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      ProductUpdateMessage add;
      add.type = UpdateType::kAddProduct;
      add.product_id = next_id;
      add.category_id = static_cast<CategoryId>(rng.Below(50));
      add.attributes = {.sales = 5, .price_cents = 1000, .praise = 2};
      add.image_urls.push_back(MakeImageUrl(next_id, 0));
      ++next_id;
      cluster->PublishUpdate(std::move(add));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  ctrl::RolloutReport report;
  std::thread rollout([&] { report = controller.DeployFullIndex(); });

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = 8'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult load = client.Run();

  rollout.join();
  stop.store(true, std::memory_order_release);
  updates.join();
  controller.Stop();

  std::uint64_t failures_after = 0;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    failures_after += cluster->broker(b).partition_failures();
  }
  std::printf("  load during rollout:    %.0f QPS, hit rate %.2f, %llu "
              "errors\n",
              load.qps, load.subject_hit_rate,
              (unsigned long long)load.errors);
  std::printf("  replicas swapped:       %zu (%zu skipped) across %zu "
              "partitions\n",
              report.replicas_updated, report.replicas_skipped,
              report.partitions);
  std::printf("  rollout elapsed:        %.2f s\n",
              static_cast<double>(report.elapsed_micros) / 1e6);
  std::printf("  base sequence:          %llu (delta replayed: %zu "
              "messages)\n",
              (unsigned long long)report.base_sequence,
              report.catchup_replayed);
  std::printf("  invariant waits:        %zu\n", report.invariant_waits);
  std::printf("  partial answers during: %llu (the >=1-serving-replica "
              "invariant held)\n",
              (unsigned long long)(failures_after - failures_before));
  cluster->Stop();
  return RollingDeployResult{load.qps,
                             load.errors,
                             report.replicas_updated,
                             report.replicas_skipped,
                             report.partitions,
                             static_cast<double>(report.elapsed_micros) / 1e6,
                             report.catchup_replayed,
                             report.invariant_waits,
                             failures_after - failures_before};
}

// ---- Gray failures: limping replica and lossy network ----

// Defense bundle the "defended" rows turn on; everything defaults off so the
// undefended rows reproduce the pre-defense behavior exactly.
void EnableGrayDefenses(ClusterConfig& config) {
  config.searcher_rpc_timeout_micros = 60'000;
  config.broker_rpc_timeout_micros = 250'000;
  config.enable_hedging = true;  // hedge_delay 0 = adaptive (3x best EWMA)
  config.latency_aware_selection = true;
}

struct LimpingRow {
  const char* label;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t errors = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t ejections = 0;  // latency outliers marked SUSPECT by ctrl
};

// Closed-loop load against a cluster where replica 0 of every partition is
// 50x slow on the wire (heartbeats still ack — a pure gray failure).
LimpingRow RunLimping(const char* label, std::uint64_t seed, Micros window,
                      bool inject, bool defended) {
  FaultInjector injector(seed);
  TestbedOptions options = ChaosOptions();
  options.seed = seed;
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = 2;
    if (inject) config.fault_injector = &injector;
    if (defended) EnableGrayDefenses(config);
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.seed = seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  // Defended also runs the failure detector with latency-outlier ejection:
  // the limpers' EWMAs (fed by the brokers through the shared replica state
  // table) blow past 3x the healthy median and get marked SUSPECT even
  // though every heartbeat acks — the gray-failure gap the heartbeat-only
  // detector can't close.
  std::unique_ptr<ctrl::ClusterController> controller;
  if (defended) {
    ctrl::ControllerConfig cc;
    cc.detector.heartbeat_period_micros = 10'000;
    cc.detector.suspect_after_misses = 2;
    cc.detector.down_after_misses = 6;
    cc.detector.latency_outlier_factor = 3.0;
    cc.detector.latency_outlier_min_micros = 5'000;
    controller = std::make_unique<ctrl::ClusterController>(*cluster, cc);
    controller->Start();
  }
  if (inject) {
    for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
      for (std::size_t p = 0; p < kPartitions; ++p) {
        injector.SetLink(cluster->broker(b).name(),
                         cluster->searcher(p, 0).name(),
                         LinkFaults{.latency_multiplier = 50.0});
      }
    }
  }

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = window;
  qc.seed = seed;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();

  LimpingRow row{label};
  row.qps = result.qps;
  row.p50_ms = result.latency_micros->P50() / 1000.0;
  row.p99_ms = result.latency_micros->P99() / 1000.0;
  row.errors = result.errors;
  for (std::size_t b = 0; b < cluster->num_brokers(); ++b) {
    row.hedges += cluster->broker(b).hedges();
    row.hedge_wins += cluster->broker(b).hedge_wins();
    row.rpc_timeouts += cluster->broker(b).rpc_timeouts();
  }
  if (const obs::Counter* c = cluster->registry().FindCounter(
          "jdvs_ctrl_latency_ejections_total")) {
    row.ejections = c->Value();
  }
  if (controller) controller->Stop();
  cluster->Stop();
  return row;
}

struct LossyRow {
  const char* label;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  double success_rate = 0.0;
  std::uint64_t timeout_errors = 0;
  std::uint64_t hung = 0;  // timed_out_in_flight: never answered at all
  std::uint64_t degraded = 0;
  double p99_ms = 0.0;
};

// Open-loop load (arrivals don't wait on completions — a hung query can't
// throttle the client into hiding the outage) against a fabric that
// silently drops a few percent of searcher-bound messages.
LossyRow RunLossy(const char* label, std::uint64_t seed, Micros window,
                  double arrival_qps, bool inject, bool defended) {
  FaultInjector injector(seed ^ 0x5a5a);
  TestbedOptions options = ChaosOptions();
  options.seed = seed;
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = 2;
    if (inject) config.fault_injector = &injector;
    if (defended) EnableGrayDefenses(config);
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.seed = seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  if (inject) {
    // Wildcard rule per searcher node: every link into it is lossy, both
    // request and reply directions.
    for (std::size_t p = 0; p < kPartitions; ++p) {
      for (std::size_t r = 0; r < 2; ++r) {
        injector.SetNode(cluster->searcher(p, r).name(),
                         LinkFaults{.drop_probability = 0.02,
                                    .reply_drop_probability = 0.01});
      }
    }
  }

  QueryWorkloadConfig qc;
  qc.duration_micros = window;
  qc.seed = seed;
  qc.arrival_qps = arrival_qps;
  qc.drain_timeout_micros = 3'000'000;
  QueryClient client(*cluster, qc);
  const OpenLoopResult result = client.RunOpenLoop();

  LossyRow row{label};
  row.offered = result.offered;
  row.completed = result.completed;
  row.success_rate =
      result.offered > 0
          ? static_cast<double>(result.completed) /
                static_cast<double>(result.offered)
          : 0.0;
  row.timeout_errors = result.timeout_errors;
  row.hung = result.timed_out_in_flight;
  row.degraded = result.degraded;
  row.p99_ms = result.latency_micros->P99() / 1000.0;
  cluster->Stop();
  return row;
}

// ---- Disk faults: on-disk corruption under the tiered index ----

struct DiskFaultResult {
  std::size_t corrupted_replicas = 0;
  std::uint64_t verify_queries = 0;
  std::uint64_t probe_errors = 0;      // probes that failed outright (goal: 0)
  std::uint64_t degraded_verify = 0;   // degraded responses while quarantined
  std::uint64_t wrong_pairs = 0;       // returned pairs deviating from truth
  std::uint64_t quarantined_lists = 0; // across corrupt replicas, pre-repair
  std::uint64_t scrub_lists = 0;
  std::uint64_t scrub_corrupt = 0;
  double load_qps = 0.0;
  std::uint64_t load_errors = 0;
  double load_hit_rate = 0.0;
  std::uint64_t repairs = 0;
  std::uint64_t recoveries = 0;  // sick replicas the detector re-imaged instead
  double repair_mttr_ms = 0.0;
  std::uint64_t degraded_after = 0;    // degraded responses post-repair
  std::uint64_t wrong_pairs_after = 0;
  std::uint64_t quarantined_after = 0;
  std::uint64_t blender_degraded = 0;  // jdvs_blender_degraded_total
};

// One verification probe: a fixed (product, seed) query plus the feature the
// blender will deterministically extract for it. Every returned hit is then
// checked against first principles — the true squared-L2 distance between
// that feature and the hit image's stored feature — so a corrupt payload
// that survived into an answer shows up as a wrong pair no matter how the
// candidate pool or ranking shifts.
struct VerifyProbe {
  QueryImage query;
  FeatureVector feature;
};

float SquaredL2(const FeatureVector& a, const FeatureVector& b) {
  float sum = 0.f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

DiskFaultResult RunDiskFaults(std::uint64_t seed, bool quick,
                              const std::string& snapshot_dir) {
  FaultInjector injector(seed ^ 0xD15C);
  TestbedOptions options = ChaosOptions();
  options.seed = seed;
  auto cluster = std::make_unique<VisualSearchCluster>([&] {
    ClusterConfig config = MakeTestbedConfig(options);
    config.replicas_per_partition = 2;
    config.fault_injector = &injector;
    return config;
  }());
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.seed = seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  // Re-serve every replica through its own private tiered (mmap) file, with
  // a background scrubber walking the checksums. Private files so one
  // replica's corruption cannot leak into its sibling.
  std::vector<std::string> files(kPartitions * 2);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    for (std::size_t r = 0; r < 2; ++r) {
      const std::string path = snapshot_dir + "/disk-partition-" +
                               std::to_string(p) + "-replica-" +
                               std::to_string(r) + "-g0.jdvsidx";
      Searcher& searcher = cluster->searcher(p, r);
      searcher.SaveTieredSnapshot(path);
      searcher.InstallFromTieredSnapshot(path, /*resident_budget_bytes=*/0);
      TierScrubConfig sc;
      sc.poll_micros = 2'000;
      sc.lists_per_slice = 16;
      searcher.StartTierScrub(sc);
      files[cluster->replica_slot(p, r)] = path;
    }
  }

  // Fixed probe set. Extraction is deterministic in (product, category,
  // seed), so the feature computed here is exactly the one the blender will
  // extract each time the probe is re-issued.
  const std::size_t num_probes = quick ? 24 : 64;
  std::vector<VerifyProbe> probes;
  Rng rng(seed ^ 0x7EE7);
  while (probes.size() < num_probes) {
    const ProductId pid =
        static_cast<ProductId>(1 + rng.Below(options.num_products));
    const auto record = cluster->catalog().Get(pid);
    if (!record) continue;
    VerifyProbe probe;
    probe.query.subject_product = pid;
    probe.query.true_category = record->category;
    probe.query.query_seed = rng.Next64();
    probe.feature = cluster->embedder().ExtractQuery(pid, record->category,
                                                     probe.query.query_seed);
    probes.push_back(std::move(probe));
  }

  // Corrupt: flip one bit inside the first non-empty payload segment of
  // replica 0's file in every partition, then drop residency so the next
  // fault-in re-reads the poisoned bytes from disk.
  DiskFaultResult out;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    const std::string& path = files[cluster->replica_slot(p, 0)];
    const TieredDirectoryInfo dir = ReadTieredDirectory(path);
    for (const TieredSegmentInfo& seg : dir.segments) {
      if (seg.bytes == 0) continue;
      if (FaultInjector::FlipBit(path, seg.offset, seg.bytes, seed ^ p)) {
        ++out.corrupted_replicas;
      }
      break;
    }
    cluster->searcher(p, 0).DropTierResidency();
  }

  // Degraded window (no repair yet): every probe must complete, and every
  // returned pair must match first principles — the quarantine may shrink
  // coverage (degraded) but never distort an answer.
  auto run_probes = [&](std::uint64_t* degraded, std::uint64_t* wrong) {
    for (const VerifyProbe& probe : probes) {
      ++out.verify_queries;
      try {
        const QueryResponse response = cluster->front_end().Next().Search(
            probe.query, QueryOptions{.k = 10, .nprobe = 0});
        if (response.degraded) ++*degraded;
        for (const RankedResult& r : response.results) {
          const auto content = cluster->image_store().Fetch(r.hit.image_url);
          if (!content || content->product_id != r.hit.product_id) {
            ++*wrong;
            continue;
          }
          const FeatureVector stored = cluster->embedder().Extract(*content);
          const float truth = SquaredL2(probe.feature, stored);
          // The serving kernels accumulate the same value in dot-product
          // form; a corrupt payload is off by whole units, not ulps.
          if (std::abs(r.hit.distance - truth) >
              0.01f * (1.0f + std::abs(truth))) {
            ++*wrong;
          }
        }
      } catch (const std::exception&) {
        ++out.probe_errors;
      }
    }
  };
  run_probes(&out.degraded_verify, &out.wrong_pairs);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    out.quarantined_lists += cluster->searcher(p, 0).tier_quarantined_lists();
  }

  // Control plane with quarantine repair: every sick replica is re-imaged
  // from its healthy sibling while the closed-loop load runs.
  ctrl::ControllerConfig cc;
  cc.detector.heartbeat_period_micros = 10'000;
  cc.detector.suspect_after_misses = 2;
  cc.detector.down_after_misses = 6;
  cc.recovery_poll_micros = 2'000;
  cc.snapshot_dir = snapshot_dir;
  cc.quarantine_repair_threshold = 1;
  cc.tiered_snapshots = true;
  cc.tiered_resident_budget = 0;
  ctrl::ClusterController controller(*cluster, cc);
  controller.Start();

  QueryWorkloadConfig qc;
  qc.num_threads = 16;
  qc.duration_micros = quick ? 1'500'000 : 4'000'000;
  qc.seed = seed;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult load = client.Run();
  out.load_qps = load.qps;
  out.load_errors = load.errors;
  out.load_hit_rate = load.subject_hit_rate;

  // Wait (bounded) until every corrupt replica has been re-imaged, no
  // quarantined list remains anywhere, and every replica is serving again.
  const Clock& clock = MonotonicClock::Instance();
  const Micros wait_deadline = clock.NowMicros() + 20'000'000;
  while (clock.NowMicros() < wait_deadline) {
    std::uint64_t quarantined = 0;
    bool all_up = true;
    for (std::size_t p = 0; p < kPartitions; ++p) {
      for (std::size_t r = 0; r < 2; ++r) {
        quarantined += cluster->searcher(p, r).tier_quarantined_lists();
        if (cluster->replica_states().Get(cluster->replica_slot(p, r)) !=
            ctrl::ReplicaState::kUp) {
          all_up = false;
        }
      }
    }
    if (quarantined == 0 && all_up &&
        controller.quarantine_repairs() + controller.recoveries() >=
            out.corrupted_replicas) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  out.repairs = controller.quarantine_repairs();
  out.recoveries = controller.recoveries();
  out.repair_mttr_ms = controller.MeanRecoveryMicros() / 1000.0;
  // Freeze the control plane before the clean-state pass so a detector
  // flap mid-probe can't re-mark a healthy replica and muddy the report.
  controller.Stop();

  // Post-repair: the same probes answer clean again.
  run_probes(&out.degraded_after, &out.wrong_pairs_after);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    for (std::size_t r = 0; r < 2; ++r) {
      out.quarantined_after +=
          cluster->searcher(p, r).tier_quarantined_lists();
      if (const TierScrubber* scrubber =
              cluster->searcher(p, r).tier_scrubber()) {
        out.scrub_lists += scrubber->lists_scrubbed();
        out.scrub_corrupt += scrubber->corrupt_found();
      }
    }
  }
  out.blender_degraded = SumDegraded(*cluster);
  cluster->Stop();
  return out;
}

DiskFaultResult RunDiskFaultSection(std::uint64_t seed, bool quick,
                                    const std::string& snapshot_dir) {
  std::printf("\nDisk faults: one payload bit flipped on disk in replica 0's "
              "tiered file,\nevery partition; scrub + checksum-at-fault-in "
              "quarantine, then control-plane\nre-image from the healthy "
              "sibling (seed %llu):\n\n",
              (unsigned long long)seed);
  const DiskFaultResult r = RunDiskFaults(seed, quick, snapshot_dir);
  std::printf("  corrupted replicas:   %zu of %zu (1 bit each)\n",
              r.corrupted_replicas, (std::size_t)kPartitions * 2);
  std::printf("  degraded window:      %llu probes, %llu failed, %llu "
              "degraded, %llu wrong pairs\n",
              (unsigned long long)(r.verify_queries / 2),
              (unsigned long long)r.probe_errors,
              (unsigned long long)r.degraded_verify,
              (unsigned long long)r.wrong_pairs);
  std::printf("  quarantined lists:    %llu (scrub checked %llu, flagged "
              "%llu corrupt)\n",
              (unsigned long long)r.quarantined_lists,
              (unsigned long long)r.scrub_lists,
              (unsigned long long)r.scrub_corrupt);
  std::printf("  load during repair:   %.0f QPS, %llu errors, hit rate "
              "%.2f\n",
              r.load_qps, (unsigned long long)r.load_errors, r.load_hit_rate);
  std::printf("  quarantine repairs:   %llu replicas re-imaged (+%llu via "
              "detector recovery), MTTR %.1f ms\n",
              (unsigned long long)r.repairs,
              (unsigned long long)r.recoveries, r.repair_mttr_ms);
  std::printf("  after repair:         %llu degraded, %llu wrong pairs, "
              "%llu lists still quarantined\n",
              (unsigned long long)r.degraded_after,
              (unsigned long long)r.wrong_pairs_after,
              (unsigned long long)r.quarantined_after);
  std::printf("\n(a corrupt payload list is quarantined the first time its "
              "checksum fails —\nat fault-in or by the scrubber — and "
              "skipped by every later probe: queries\ncomplete from the "
              "surviving lists and are marked degraded, never wrong and\n"
              "never crashed. The controller treats quarantine >= threshold "
              "as storage\nfailure and re-images the replica from its "
              "healthy sibling's bytes.)\n");
  return r;
}

Json DiskFaultJson(const DiskFaultResult& r) {
  Json j = Json::Object();
  j.Set("corrupted_replicas", r.corrupted_replicas);
  j.Set("verify_queries", r.verify_queries);
  j.Set("probe_errors", r.probe_errors);
  j.Set("degraded_verify", r.degraded_verify);
  j.Set("wrong_pairs", r.wrong_pairs);
  j.Set("quarantined_lists", r.quarantined_lists);
  j.Set("scrub_lists", r.scrub_lists);
  j.Set("scrub_corrupt", r.scrub_corrupt);
  j.Set("load_qps", r.load_qps);
  j.Set("load_errors", r.load_errors);
  j.Set("load_hit_rate", r.load_hit_rate);
  j.Set("quarantine_repairs", r.repairs);
  j.Set("detector_recoveries", r.recoveries);
  j.Set("repair_mttr_ms", r.repair_mttr_ms);
  j.Set("degraded_after", r.degraded_after);
  j.Set("wrong_pairs_after", r.wrong_pairs_after);
  j.Set("quarantined_after", r.quarantined_after);
  j.Set("blender_degraded", r.blender_degraded);
  return j;
}

Json LimpingJson(const LimpingRow& row) {
  Json j = Json::Object();
  j.Set("label", std::string(row.label));
  j.Set("qps", row.qps);
  j.Set("p50_ms", row.p50_ms);
  j.Set("p99_ms", row.p99_ms);
  j.Set("errors", row.errors);
  j.Set("hedges", row.hedges);
  j.Set("hedge_wins", row.hedge_wins);
  j.Set("rpc_timeouts", row.rpc_timeouts);
  j.Set("latency_ejections", row.ejections);
  return j;
}

Json LossyJson(const LossyRow& row) {
  Json j = Json::Object();
  j.Set("label", std::string(row.label));
  j.Set("offered", row.offered);
  j.Set("completed", row.completed);
  j.Set("success_rate", row.success_rate);
  j.Set("timeout_errors", row.timeout_errors);
  j.Set("timed_out_in_flight", row.hung);
  j.Set("degraded", row.degraded);
  j.Set("p99_ms", row.p99_ms);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  // Broker failover / recovery warnings are the expected condition here;
  // keep the report readable.
  SetLogLevel(LogLevel::kError);
  std::uint64_t seed = 2018;
  bool quick = false;
  bool disk_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--disk-only") {
      disk_only = true;
    }
  }
  PrintHeader("Chaos: availability with searcher replicas under failures",
              "'Each partition can have multiple copies for availability'");

  const std::filesystem::path snapshot_dir =
      std::filesystem::temp_directory_path() / "jdvs_chaos_snapshots";
  std::filesystem::create_directories(snapshot_dir);

  if (disk_only) {
    const DiskFaultResult disk =
        RunDiskFaultSection(seed, quick, snapshot_dir.string());
    if (WantJson(argc, argv)) {
      Json root = Json::Object();
      root.Set("bench", "chaos_availability");
      root.Set("seed", seed);
      root.Set("disk_fault", DiskFaultJson(disk));
      WriteBenchJson("chaos_availability", root);
    }
    std::filesystem::remove_all(snapshot_dir);
    const bool ok = disk.probe_errors == 0 && disk.wrong_pairs == 0 &&
                    disk.wrong_pairs_after == 0 && disk.load_errors == 0 &&
                    disk.quarantined_after == 0 && disk.repairs >= 1;
    if (!ok) std::printf("\nDISK-FAULT INVARIANT VIOLATED\n");
    return ok ? 0 : 1;
  }

  std::printf("8 partitions, chaos thread killing primary searchers, 16 "
              "client threads for 6s per row:\n\n");
  std::printf("%10s %6s %8s %9s %7s %10s %9s %9s %11s %9s\n", "replicas",
              "ctrl", "QPS", "hit rate", "errors", "failovers", "partial",
              "degraded", "recoveries", "MTTR ms");
  struct Row {
    std::size_t replicas;
    bool control_plane;
  };
  Json chaos_rows = Json::Array();
  for (const Row row : {Row{1, false}, Row{2, false}, Row{2, true}}) {
    const ChaosResult result =
        Run(row.replicas, row.control_plane, snapshot_dir.string());
    std::printf("%10zu %6s %8.0f %9.2f %7llu %10llu %9llu %9llu %11llu "
                "%9.1f\n",
                row.replicas, row.control_plane ? "on" : "off", result.qps,
                result.hit_rate, (unsigned long long)result.errors,
                (unsigned long long)result.failovers,
                (unsigned long long)result.partition_failures,
                (unsigned long long)result.degraded,
                (unsigned long long)result.recoveries, result.mttr_ms);
    Json json_row = Json::Object();
    json_row.Set("replicas", row.replicas);
    json_row.Set("control_plane", row.control_plane);
    json_row.Set("qps", result.qps);
    json_row.Set("hit_rate", result.hit_rate);
    json_row.Set("errors", result.errors);
    json_row.Set("failovers", result.failovers);
    json_row.Set("partition_failures", result.partition_failures);
    json_row.Set("degraded", result.degraded);
    json_row.Set("recoveries", result.recoveries);
    json_row.Set("mttr_ms", result.mttr_ms);
    chaos_rows.Push(std::move(json_row));
  }
  std::printf("\n(replicas=1: every query issued while a searcher is down "
              "loses that partition's candidates — 'partial' counts those "
              "and 'degraded' the queries that answered from reduced "
              "coverage. replicas=2: the broker fails over and coverage "
              "holds. With the control plane, crashed searchers — index and "
              "catch-up state wiped, never revived by hand — come back "
              "automatically: heartbeat detection, snapshot restore, day-log "
              "catch-up, re-admission; MTTR is the mean DOWN-to-UP time.)\n");

  // ---- Gray failures the heartbeat detector cannot see ----
  const Micros gray_window = quick ? 1'500'000 : 5'000'000;
  std::printf("\nGray failure: replica 0 of every partition limping at 50x "
              "hop latency,\nheartbeats healthy (closed loop, %llu ms per "
              "row, seed %llu):\n\n",
              (unsigned long long)(gray_window / 1000),
              (unsigned long long)seed);
  std::printf("%12s %8s %9s %9s %7s %8s %10s %9s %10s\n", "mode", "QPS",
              "p50 ms", "p99 ms", "errors", "hedges", "hedge wins",
              "timeouts", "ejections");
  LimpingRow limping_rows[3];
  limping_rows[0] = RunLimping("fault-free", seed, gray_window,
                               /*inject=*/false, /*defended=*/false);
  limping_rows[1] = RunLimping("undefended", seed, gray_window,
                               /*inject=*/true, /*defended=*/false);
  limping_rows[2] = RunLimping("defended", seed, gray_window,
                               /*inject=*/true, /*defended=*/true);
  for (const LimpingRow& row : limping_rows) {
    std::printf("%12s %8.0f %9.2f %9.2f %7llu %8llu %10llu %9llu %10llu\n",
                row.label, row.qps, row.p50_ms, row.p99_ms,
                (unsigned long long)row.errors,
                (unsigned long long)row.hedges,
                (unsigned long long)row.hedge_wins,
                (unsigned long long)row.rpc_timeouts,
                (unsigned long long)row.ejections);
  }
  std::printf("\n(defended = latency-aware replica selection + adaptive "
              "hedging + per-RPC timeouts + latency-outlier ejection; the "
              "broker's latency EWMA routes primaries around the limper, a "
              "hedge covers the exploration traffic that still samples it, "
              "and the control plane marks the limpers SUSPECT even though "
              "their heartbeats stay healthy.)\n");

  const double lossy_qps = quick ? 150.0 : 300.0;
  std::printf("\nGray failure: every searcher link dropping 2%% of requests "
              "+ 1%% of replies\n(open loop at %.0f QPS, %llu ms window, 3 s "
              "drain):\n\n",
              lossy_qps, (unsigned long long)(gray_window / 1000));
  std::printf("%12s %8s %10s %9s %9s %6s %9s %9s\n", "mode", "offered",
              "completed", "success", "timeouts", "hung", "degraded",
              "p99 ms");
  LossyRow lossy_rows[3];
  lossy_rows[0] = RunLossy("fault-free", seed, gray_window, lossy_qps,
                           /*inject=*/false, /*defended=*/false);
  lossy_rows[1] = RunLossy("undefended", seed, gray_window, lossy_qps,
                           /*inject=*/true, /*defended=*/false);
  lossy_rows[2] = RunLossy("defended", seed, gray_window, lossy_qps,
                           /*inject=*/true, /*defended=*/true);
  for (const LossyRow& row : lossy_rows) {
    std::printf("%12s %8llu %10llu %8.1f%% %9llu %6llu %9llu %9.2f\n",
                row.label, (unsigned long long)row.offered,
                (unsigned long long)row.completed, row.success_rate * 100.0,
                (unsigned long long)row.timeout_errors,
                (unsigned long long)row.hung,
                (unsigned long long)row.degraded, row.p99_ms);
  }
  std::printf("\n(undefended, a silently dropped message hangs its query "
              "forever — 'hung' counts arrivals that never answered. "
              "Defended, the per-RPC timeout turns the drop into a typed "
              "error and the slot fails over to the sibling replica.)\n");

  const DiskFaultResult disk =
      RunDiskFaultSection(seed, quick, snapshot_dir.string());

  const RollingDeployResult rollout =
      RunRollingDeployment(snapshot_dir.string());
  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "chaos_availability");
    root.Set("seed", seed);
    root.Set("rows", std::move(chaos_rows));
    Json limping_json = Json::Array();
    for (const LimpingRow& row : limping_rows) {
      limping_json.Push(LimpingJson(row));
    }
    Json lossy_json = Json::Array();
    for (const LossyRow& row : lossy_rows) lossy_json.Push(LossyJson(row));
    Json gray = Json::Object();
    gray.Set("limping_replica", std::move(limping_json));
    gray.Set("lossy_network", std::move(lossy_json));
    root.Set("gray_failure", std::move(gray));
    root.Set("disk_fault", DiskFaultJson(disk));
    Json rollout_json = Json::Object();
    rollout_json.Set("qps", rollout.qps);
    rollout_json.Set("errors", rollout.errors);
    rollout_json.Set("replicas_updated", rollout.replicas_updated);
    rollout_json.Set("replicas_skipped", rollout.replicas_skipped);
    rollout_json.Set("partitions", rollout.partitions);
    rollout_json.Set("elapsed_seconds", rollout.elapsed_seconds);
    rollout_json.Set("catchup_replayed", rollout.catchup_replayed);
    rollout_json.Set("invariant_waits", rollout.invariant_waits);
    rollout_json.Set("partial_during", rollout.partial_during);
    root.Set("rolling_deployment", std::move(rollout_json));
    WriteBenchJson("chaos_availability", root);
  }
  std::filesystem::remove_all(snapshot_dir);
  return 0;
}

// Figure 12 — "Performance W/ and W/O Real Time Index".
//
// Paper (testbed: 100k images, 20 searchers, 6 blender/broker servers, 1
// Nginx, 1 client): at 50/100/200 concurrent client threads, (a) query
// throughput with real-time indexing enabled is within 10% of the baseline
// without it, and (b) query response times are similar, averaging <100ms.
//
// Reproduction: two identical simulated testbeds — one consuming a live
// update stream through the real-time indexing path, one with real-time
// indexing disabled (updates only buffered for the next full build). A
// closed-loop client sweeps 50/100/200 threads against each; the harness
// prints normalized throughput and mean response time per cell.
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

// Publishes trace messages in a loop at a steady rate until stopped.
class UpdatePump {
 public:
  UpdatePump(VisualSearchCluster& cluster, double rate_per_sec)
      : cluster_(cluster), interval_micros_(static_cast<Micros>(
                               1e6 / rate_per_sec)) {
    DayTraceConfig tc;
    tc.total_messages = 200000;
    tc.num_categories = 50;
    tc.hourly_weights.fill(1.0);  // steady stream during measurement
    DayTraceGenerator generator(tc, cluster.catalog());
    generator.Generate([this](const TraceEvent& event) {
      messages_.push_back(event.message);
    });
  }

  void Start() {
    thread_ = std::thread([this] {
      const auto& clock = MonotonicClock::Instance();
      Micros next = clock.NowMicros();
      std::size_t i = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        cluster_.PublishUpdate(messages_[i++ % messages_.size()]);
        next += interval_micros_;
        const Micros now = clock.NowMicros();
        if (next > now) {
          std::this_thread::sleep_for(std::chrono::microseconds(next - now));
        }
      }
    });
  }

  void Stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  VisualSearchCluster& cluster_;
  Micros interval_micros_;
  std::vector<ProductUpdateMessage> messages_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

QueryWorkloadResult Measure(VisualSearchCluster& cluster, std::size_t threads,
                            Micros duration) {
  QueryWorkloadConfig qc;
  qc.num_threads = threads;
  qc.duration_micros = duration;
  qc.k = 10;
  QueryClient client(cluster, qc);
  return client.Run();
}

}  // namespace

int main() {
  PrintHeader("Figure 12: throughput & response time W/ vs W/O real-time index",
              "real-time indexing overhead <10% on QPS; response times "
              "similar, average <100ms");

  TestbedOptions with_rt;
  with_rt.realtime = true;
  with_rt.trace_sample_every = 16;  // per-stage breakdown incl. rt_apply
  TestbedOptions without_rt = with_rt;
  without_rt.realtime = false;

  std::printf("building W/ real-time testbed (100k images, 20 searchers)...\n");
  auto cluster_rt = BuildTestbed(with_rt);
  std::printf("building W/O real-time testbed...\n");
  auto cluster_base = BuildTestbed(without_rt);

  constexpr Micros kDuration = 4'000'000;
  const std::size_t kThreadCounts[] = {50, 100, 200};

  struct Cell {
    double qps;
    double mean_s;
    double p99_s;
  };
  Cell rt[3];
  Cell base[3];

  for (int i = 0; i < 3; ++i) {
    const std::size_t threads = kThreadCounts[i];
    // Update rate: in production the real-time stream consumes a small
    // fraction of each searcher's cores (one consumer thread out of 24).
    // This simulation time-shares every node on the host CPU, so the rate is
    // scaled to a comparable fraction of the testbed's update capacity
    // rather than replaying the raw production message rate.
    constexpr double kUpdateRate = 250.0;
    // Baseline first (no update traffic is consumed there even though the
    // pump publishes, because real-time indexing is disabled).
    {
      UpdatePump pump(*cluster_base, kUpdateRate);
      pump.Start();
      const auto result = Measure(*cluster_base, threads, kDuration);
      pump.Stop();
      base[i] = {result.qps, result.latency_micros->Mean() * 1e-6,
                 static_cast<double>(result.latency_micros->P99()) * 1e-6};
    }
    {
      UpdatePump pump(*cluster_rt, kUpdateRate);
      pump.Start();
      const auto result = Measure(*cluster_rt, threads, kDuration);
      pump.Stop();
      rt[i] = {result.qps, result.latency_micros->Mean() * 1e-6,
               static_cast<double>(result.latency_micros->P99()) * 1e-6};
    }
    std::printf("  measured %zu threads\n", threads);
  }

  std::printf("\n(a) throughput, normalized to W/O real-time at each thread "
              "count (paper: W/ >= 0.9):\n");
  std::printf("%10s %18s %18s %12s\n", "threads", "W/O RT (norm)",
              "With RT (norm)", "overhead");
  for (int i = 0; i < 3; ++i) {
    const double norm = rt[i].qps / base[i].qps;
    std::printf("%10zu %18.3f %18.3f %11.1f%%\n", kThreadCounts[i], 1.0, norm,
                100.0 * (1.0 - norm));
  }

  std::printf("\n(b) query response time, seconds (paper: similar curves, "
              "average <0.1s):\n");
  std::printf("%10s %14s %14s %14s %14s\n", "threads", "W/O RT mean",
              "With RT mean", "W/O RT p99", "With RT p99");
  for (int i = 0; i < 3; ++i) {
    std::printf("%10zu %14.4f %14.4f %14.4f %14.4f\n", kThreadCounts[i],
                base[i].mean_s, rt[i].mean_s, base[i].p99_s, rt[i].p99_s);
  }

  const auto counters = cluster_rt->TotalUpdateCounters();
  std::printf("\nreal-time path processed %llu messages during the W/ runs\n",
              (unsigned long long)counters.TotalMessages());

  // Each cluster owns a private registry, so the two breakdowns don't mix.
  std::printf("\nW/ real-time:");
  PrintStageBreakdown(cluster_rt->registry());
  std::printf("\nW/O real-time:");
  PrintStageBreakdown(cluster_base->registry());
  cluster_rt->Stop();
  cluster_base->Stop();
  return 0;
}

// Figure 13(b) — "Query Response Time Distribution" (CDF).
//
// Paper: the CDF of query response times at maximum throughput; the 99th
// percentile is 0.3s and the maximum observed response time is 2.1s.
//
// Reproduction: run the testbed at the saturating offered load (35 closed-
// loop client threads, past the Figure 13(a) knee) and dump the response
// time CDF plus the headline percentiles.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 13(b): response-time CDF at max throughput",
              "p99 = 0.3s, max = 2.1s");

  TestbedOptions options;
  options.trace_sample_every = 16;  // feed the per-stage breakdown below
  std::printf("building testbed (100k images, 20 searchers)...\n");
  auto cluster = BuildTestbed(options);

  QueryWorkloadConfig qc;
  qc.num_threads = 35;  // past the saturation knee of Figure 13(a)
  qc.duration_micros = 8'000'000;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();

  std::printf("\nran %llu queries at %.0f QPS with 35 threads\n",
              (unsigned long long)result.queries, result.qps);
  std::printf("%s\n",
              SummarizeLatency(*result.latency_micros, "response time").c_str());
  std::printf("paper: p99 0.3s, max 2.1s\n");

  std::printf("\nCDF (response_time_seconds  cumulative_fraction):\n");
  PrintCdfSeconds(std::cout, *result.latency_micros, 30);

  // Where the time goes: per-stage attribution from the metrics registry,
  // plus the worst traced queries' full span trees.
  PrintStageBreakdown(cluster->registry());

  // Critical-path attribution: unlike the raw stage histograms (which
  // overlap — the fan-out runs scans concurrently), these only count time a
  // stage actually gated end-to-end latency, so the shares sum to ~100%.
  std::printf("\ncritical-path attribution (sampled queries):\n%s",
              obs::RenderCriticalPathTable(cluster->registry()).c_str());
  const auto slow = cluster->slow_log().Worst();
  if (!slow.empty()) {
    std::printf("\nslowest traced query (of %zu over %lld us):\n", slow.size(),
                (long long)cluster->slow_log().threshold_micros());
    std::printf("%s", slow.front().rendered.c_str());
  }
  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "fig13b_latency_cdf");
    root.Set("threads", qc.num_threads);
    root.Set("qps", result.qps);
    root.Set("queries", result.queries);
    root.Set("latency", LatencyJson(*result.latency_micros));
    Json cdf = Json::Array();
    for (const auto& [upper_us, fraction] :
         result.latency_micros->CdfPoints()) {
      Json point = Json::Object();
      point.Set("upper_us", upper_us);
      point.Set("fraction", fraction);
      cdf.Push(std::move(point));
    }
    root.Set("cdf", std::move(cdf));
    WriteBenchJson("fig13b_latency_cdf", root);
  }
  cluster->Stop();
  return 0;
}

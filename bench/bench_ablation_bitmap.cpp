// Ablation — validity bitmap (Sections 2.1-2.3).
//
// Paper claims: (1) marking removed products invalid in a bitmap and
// filtering during search "can significantly improve the indexing and
// search's performance" versus carrying dead entries to the ranking stage;
// (2) deletion itself is O(1) bit flips instead of index surgery or a
// rebuild.
//
// Harness: one index, a sweep of invalid fractions. For each fraction it
// measures (a) search latency with scan-time bitmap filtering vs late
// filtering (invalid candidates survive the scan, waste distance
// computations and top-k slots, and get dropped only at materialization),
// and (b) the cost of deleting a product via the bitmap vs rebuilding the
// index without it.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Ablation: validity-bitmap filtering & O(1) deletion",
              "bitmap filtering 'can significantly improve the indexing and "
              "search's performance'");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 20,
                                    .seed = 13});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 10000;
  cg.num_categories = 20;
  GenerateCatalog(cg, catalog, images, &features);

  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 64;
  fc.training_sample = 2048;
  FullIndexBuilder builder(catalog, images, features, fc);
  auto quantizer = builder.TrainQuantizer();

  IvfIndexConfig scan_filter_config;
  scan_filter_config.nprobe = 8;
  scan_filter_config.filter_invalid_during_scan = true;
  IvfIndexConfig late_filter_config = scan_filter_config;
  late_filter_config.filter_invalid_during_scan = false;

  fc.index_config = scan_filter_config;
  FullIndexBuilder b1(catalog, images, features, fc);
  auto index_scan = b1.Build(quantizer);
  fc.index_config = late_filter_config;
  FullIndexBuilder b2(catalog, images, features, fc);
  auto index_late = b2.Build(quantizer);

  const auto measure = [&](const IvfIndex& index) {
    const auto& clock = MonotonicClock::Instance();
    Histogram latency;
    std::size_t results = 0;
    Rng rng(5);
    for (int q = 0; q < 2000; ++q) {
      const ProductId pid = 1 + rng.Below(10000);
      const auto record = catalog.Get(pid);
      const auto query = embedder.ExtractQuery(pid, record->category, q);
      const Micros start = clock.NowMicros();
      const auto hits = index.Search(query, 10);
      latency.Record(clock.NowMicros() - start);
      results += hits.size();
    }
    return std::pair<double, double>{latency.Mean(),
                                     static_cast<double>(results) / 2000.0};
  };

  std::printf("(a) search latency, scan-time vs late filtering, 2000 queries "
              "each:\n");
  std::printf("%10s %16s %16s %14s %14s\n", "invalid%", "scan-filter us",
              "late-filter us", "scan results", "late results");
  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 0.9};
  Rng rng(77);
  std::vector<ProductId> invalidated;
  for (const double target : fractions) {
    // Raise the invalid fraction to `target` on both indexes.
    const auto ids = catalog.AllIds();
    const std::size_t want =
        static_cast<std::size_t>(target * static_cast<double>(ids.size()));
    while (invalidated.size() < want) {
      const ProductId pid = ids[rng.Below(ids.size())];
      if (index_scan->SetProductValidity(pid, false) > 0) {
        index_late->SetProductValidity(pid, false);
        invalidated.push_back(pid);
      }
    }
    const auto [scan_us, scan_results] = measure(*index_scan);
    const auto [late_us, late_results] = measure(*index_late);
    std::printf("%9.0f%% %16.1f %16.1f %14.1f %14.1f\n", target * 100.0,
                scan_us, late_us, scan_results, late_results);
  }
  std::printf("(late filtering also returns fewer than k results once "
              "invalid candidates crowd the top-k)\n");

  // (b) deletion cost: bitmap flip vs full rebuild.
  const auto& clock = MonotonicClock::Instance();
  Histogram delete_latency;
  for (int i = 0; i < 1000; ++i) {
    const ProductId pid = 1 + rng.Below(10000);
    const Micros start = clock.NowMicros();
    index_scan->SetProductValidity(pid, false);
    delete_latency.Record(clock.NowMicros() - start);
  }
  const Stopwatch rebuild_watch(clock);
  fc.index_config = scan_filter_config;
  FullIndexBuilder b3(catalog, images, features, fc);
  auto rebuilt = b3.Build(quantizer);
  const double rebuild_s = rebuild_watch.ElapsedSeconds();

  std::printf("\n(b) deletion cost:\n");
  std::printf("  bitmap flip:   %s mean per product (O(1) per image)\n",
              FormatMicros(static_cast<Micros>(delete_latency.Mean())).c_str());
  std::printf("  index rebuild: %.2fs for %zu images (the alternative "
              "without a validity bitmap)\n",
              rebuild_s, rebuilt->size());
  return 0;
}

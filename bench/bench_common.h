// Shared setup helpers for the benchmark harnesses.
//
// Every harness prints a self-describing report: the paper reference, the
// workload parameters, and the regenerated rows/series. Absolute numbers
// differ from the paper's production testbed (this is an in-process
// simulation); the *shapes* are the reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <memory>

#include "jdvs/jdvs.h"

namespace jdvs::bench {

// The paper's performance testbed (Section 3.2): 100,000 images over 20
// searchers, 6 blender/broker servers. ~20k products x ~5 images = 100k.
struct TestbedOptions {
  std::size_t num_products = 20000;
  std::size_t num_partitions = 20;
  std::size_t num_brokers = 3;
  std::size_t num_blenders = 3;
  bool realtime = true;
  // Query-side CNN cost; the dominant per-query service time, sized so the
  // simulated testbed saturates near the paper's ~1800 QPS.
  std::int64_t query_extraction_micros = 10'000;
  std::int64_t searcher_threads = 2;
  std::int64_t blender_threads = 6;
  std::int64_t broker_threads = 6;
  double initial_off_market_fraction = 0.0;
  // End-to-end tracing: sample 1 in N queries/updates (0 = off). Sampled
  // traces feed the per-stage breakdown printed at the end of a run.
  std::uint64_t trace_sample_every = 0;
  std::uint64_t seed = 2018;
};

inline ClusterConfig MakeTestbedConfig(const TestbedOptions& options) {
  ClusterConfig config;
  config.num_partitions = options.num_partitions;
  config.num_brokers = options.num_brokers;
  config.num_blenders = options.num_blenders;
  config.searcher_threads = static_cast<std::size_t>(options.searcher_threads);
  config.broker_threads = static_cast<std::size_t>(options.broker_threads);
  config.blender_threads = static_cast<std::size_t>(options.blender_threads);
  config.hop_latency = {.base_micros = 150, .jitter_median_micros = 100,
                        .sigma = 0.6};
  config.embedder = {.dim = 64, .num_categories = 50, .seed = options.seed};
  config.detector = {.num_categories = 50, .top1_accuracy = 0.95};
  config.extraction = {.mean_micros = 0};  // latency benches override
  config.query_extraction_micros = options.query_extraction_micros;
  config.kmeans.num_clusters = 64;
  config.training_sample = 4096;
  config.ivf.nprobe = 8;
  config.realtime_enabled = options.realtime;
  config.trace_sample_every = options.trace_sample_every;
  config.seed = options.seed;
  return config;
}

// Builds the testbed: generates the catalog (features prewarmed — the
// production steady state), builds and installs full indexes, starts
// real-time consumers.
inline std::unique_ptr<VisualSearchCluster> BuildTestbed(
    const TestbedOptions& options) {
  auto cluster = std::make_unique<VisualSearchCluster>(
      MakeTestbedConfig(options));
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.min_images_per_product = 3;
  cg.max_images_per_product = 7;
  cg.initial_off_market_fraction = options.initial_off_market_fraction;
  cg.seed = options.seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

inline void PrintHeader(const char* id, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

// Per-stage latency breakdown from the cluster's metrics registry: every
// stage histogram the pipeline records (jdvs_stage_micros{stage=...}),
// blender to searcher to real-time apply. Stages with no samples (e.g.
// rt_apply in a W/O-realtime run) are skipped.
inline void PrintStageBreakdown(const obs::Registry& registry) {
  static constexpr const char* kStages[] = {
      "query_total", "extract", "broker_fanout", "searcher_scan", "rank",
      "rt_apply"};
  std::printf("\nper-stage latency breakdown (us):\n");
  std::printf("  %-14s %10s %10s %10s %10s\n", "stage", "count", "mean",
              "p90", "p99");
  for (const char* stage : kStages) {
    const Histogram* h = registry.FindHistogram(
        obs::Labeled("jdvs_stage_micros", "stage", stage));
    if (h == nullptr || h->Count() == 0) continue;
    std::printf("  %-14s %10llu %10.0f %10lld %10lld\n", stage,
                (unsigned long long)h->Count(), h->Mean(),
                (long long)h->P90(), (long long)h->P99());
  }
}

// Pool-saturation table: busy workers and queue depth (current + peak) per
// tier, from the jdvs_pool_* gauges. With the continuation-passing pipeline
// peak busy stays near the work actually executing; a blocking pipeline
// instead pins busy == threads while requests wait on lower tiers.
inline void PrintPoolSaturation(VisualSearchCluster& cluster) {
  cluster.SamplePoolGauges();
  const obs::Registry& registry = cluster.registry();
  std::printf("\npool saturation (threads busy / queued tasks):\n");
  std::printf("  %-16s %8s %10s %10s %12s\n", "node", "busy", "busy_peak",
              "queued", "queued_peak");
  auto row = [&](const std::string& node) {
    auto value = [&](const char* family) {
      const obs::Gauge* g =
          registry.FindGauge(obs::Labeled(family, "node", node));
      return g == nullptr ? 0ll : (long long)g->Value();
    };
    std::printf("  %-16s %8lld %10lld %10lld %12lld\n", node.c_str(),
                value("jdvs_pool_busy_threads"),
                value("jdvs_pool_busy_threads_peak"),
                value("jdvs_pool_queue_depth"),
                value("jdvs_pool_queue_depth_peak"));
  };
  for (std::size_t i = 0; i < cluster.num_blenders(); ++i) {
    row(cluster.blender(i).name());
  }
  for (std::size_t i = 0; i < cluster.num_brokers(); ++i) {
    row(cluster.broker(i).name());
  }
  // One representative searcher row per partition would be noise at 20
  // partitions; aggregate the tier instead.
  long long busy = 0, busy_peak = 0, queued = 0, queued_peak = 0;
  for (std::size_t i = 0; i < cluster.num_searchers(); ++i) {
    const ThreadPool& pool = cluster.searcher_flat(i).node().pool();
    busy += (long long)pool.busy_threads();
    busy_peak += (long long)pool.peak_busy_threads();
    queued += (long long)pool.queue_depth();
    queued_peak += (long long)pool.peak_queue_depth();
  }
  std::printf("  %-16s %8lld %10lld %10lld %12lld\n", "searchers(sum)", busy,
              busy_peak, queued, queued_peak);
}

}  // namespace jdvs::bench

// Shared setup helpers for the benchmark harnesses.
//
// Every harness prints a self-describing report: the paper reference, the
// workload parameters, and the regenerated rows/series. Absolute numbers
// differ from the paper's production testbed (this is an in-process
// simulation); the *shapes* are the reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "jdvs/jdvs.h"

namespace jdvs::bench {

// Minimal JSON value tree for the benches' --json output. Insertion order is
// preserved so the emitted files diff cleanly run to run. Only what the
// harnesses need: objects, arrays, numbers, strings, bools.
class Json {
 public:
  Json() = default;
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kInt), int_(static_cast<long long>(v)) {}
  Json(unsigned long v) : kind_(Kind::kInt), int_(static_cast<long long>(v)) {}
  Json(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<long long>(v)) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}

  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Json& Set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Json& Push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::ostringstream os;
    Write(os, indent);
    return os.str();
  }

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  static void WriteString(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  void Write(std::ostream& os, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNull: os << "null"; break;
      case Kind::kBool: os << (bool_ ? "true" : "false"); break;
      case Kind::kInt: os << int_; break;
      case Kind::kDouble: {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", double_);
        os << buf;
        break;
      }
      case Kind::kString: WriteString(os, string_); break;
      case Kind::kObject: {
        if (members_.empty()) {
          os << "{}";
          break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          os << inner;
          WriteString(os, members_[i].first);
          os << ": ";
          members_[i].second.Write(os, indent + 1);
          if (i + 1 < members_.size()) os << ",";
          os << "\n";
        }
        os << pad << "}";
        break;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          os << "[]";
          break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          os << inner;
          items_[i].Write(os, indent + 1);
          if (i + 1 < items_.size()) os << ",";
          os << "\n";
        }
        os << pad << "]";
        break;
      }
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

// True when --json was passed: the bench then also writes its result rows to
// BENCH_<name>.json via WriteBenchJson.
inline bool WantJson(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return true;
  }
  return false;
}

inline void WriteBenchJson(const std::string& bench_name, const Json& root) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  out << root.Dump() << "\n";
  std::printf("\nwrote %s\n", path.c_str());
}

// Histogram summary as a JSON object (microsecond units, like the text
// reports).
inline Json LatencyJson(const Histogram& h) {
  Json j = Json::Object();
  j.Set("count", h.Count());
  j.Set("mean_us", h.Mean());
  j.Set("p50_us", h.P50());
  j.Set("p90_us", h.P90());
  j.Set("p99_us", h.P99());
  j.Set("max_us", h.Max());
  return j;
}

// The paper's performance testbed (Section 3.2): 100,000 images over 20
// searchers, 6 blender/broker servers. ~20k products x ~5 images = 100k.
struct TestbedOptions {
  std::size_t num_products = 20000;
  std::size_t num_partitions = 20;
  std::size_t num_brokers = 3;
  std::size_t num_blenders = 3;
  bool realtime = true;
  // Query-side CNN cost; the dominant per-query service time, sized so the
  // simulated testbed saturates near the paper's ~1800 QPS.
  std::int64_t query_extraction_micros = 10'000;
  std::int64_t searcher_threads = 2;
  std::int64_t blender_threads = 6;
  std::int64_t broker_threads = 6;
  double initial_off_market_fraction = 0.0;
  // End-to-end tracing: sample 1 in N queries/updates (0 = off). Sampled
  // traces feed the per-stage breakdown printed at the end of a run.
  std::uint64_t trace_sample_every = 0;
  std::uint64_t seed = 2018;
};

inline ClusterConfig MakeTestbedConfig(const TestbedOptions& options) {
  ClusterConfig config;
  config.num_partitions = options.num_partitions;
  config.num_brokers = options.num_brokers;
  config.num_blenders = options.num_blenders;
  config.searcher_threads = static_cast<std::size_t>(options.searcher_threads);
  config.broker_threads = static_cast<std::size_t>(options.broker_threads);
  config.blender_threads = static_cast<std::size_t>(options.blender_threads);
  config.hop_latency = {.base_micros = 150, .jitter_median_micros = 100,
                        .sigma = 0.6};
  config.embedder = {.dim = 64, .num_categories = 50, .seed = options.seed};
  config.detector = {.num_categories = 50, .top1_accuracy = 0.95};
  config.extraction = {.mean_micros = 0};  // latency benches override
  config.query_extraction_micros = options.query_extraction_micros;
  config.kmeans.num_clusters = 64;
  config.training_sample = 4096;
  config.ivf.nprobe = 8;
  config.realtime_enabled = options.realtime;
  config.trace_sample_every = options.trace_sample_every;
  config.seed = options.seed;
  return config;
}

// Builds the testbed: generates the catalog (features prewarmed — the
// production steady state), builds and installs full indexes, starts
// real-time consumers.
inline std::unique_ptr<VisualSearchCluster> BuildTestbed(
    const TestbedOptions& options) {
  auto cluster = std::make_unique<VisualSearchCluster>(
      MakeTestbedConfig(options));
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.min_images_per_product = 3;
  cg.max_images_per_product = 7;
  cg.initial_off_market_fraction = options.initial_off_market_fraction;
  cg.seed = options.seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

inline void PrintHeader(const char* id, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

// Per-stage latency breakdown from the cluster's metrics registry: every
// stage histogram the pipeline records (jdvs_stage_micros{stage=...}),
// blender to searcher to real-time apply. Stages with no samples (e.g.
// rt_apply in a W/O-realtime run) are skipped.
inline void PrintStageBreakdown(const obs::Registry& registry) {
  static constexpr const char* kStages[] = {
      "query_total", "extract", "broker_fanout", "searcher_filter",
      "searcher_io", "searcher_scan", "rank", "rt_apply"};
  std::printf("\nper-stage latency breakdown (us):\n");
  std::printf("  %-14s %10s %10s %10s %10s\n", "stage", "count", "mean",
              "p90", "p99");
  for (const char* stage : kStages) {
    const Histogram* h = registry.FindHistogram(
        obs::Labeled("jdvs_stage_micros", "stage", stage));
    if (h == nullptr || h->Count() == 0) continue;
    std::printf("  %-14s %10llu %10.0f %10lld %10lld\n", stage,
                (unsigned long long)h->Count(), h->Mean(),
                (long long)h->P90(), (long long)h->P99());
  }
}

// Queue-wait table: the jdvs_pool_queue_wait_micros{tier=...} histograms —
// how long submitted work sat in each tier's pool queue before a worker
// picked it up. Unlike the depth gauges (point samples), this integrates
// the whole run, so it shows saturation the gauges can miss between
// samples. Tiers with no samples are skipped.
inline void PrintQueueWait(const obs::Registry& registry) {
  static constexpr const char* kTiers[] = {"blender", "broker", "searcher"};
  std::printf("\npool queue wait (us):\n");
  std::printf("  %-10s %10s %10s %10s %10s\n", "tier", "count", "mean",
              "p90", "p99");
  for (const char* tier : kTiers) {
    const Histogram* h = registry.FindHistogram(
        obs::Labeled("jdvs_pool_queue_wait_micros", "tier", tier));
    if (h == nullptr || h->Count() == 0) continue;
    std::printf("  %-10s %10llu %10.0f %10lld %10lld\n", tier,
                (unsigned long long)h->Count(), h->Mean(),
                (long long)h->P90(), (long long)h->P99());
  }
}

// Pool-saturation table: busy workers and queue depth (current + peak) per
// tier, from the jdvs_pool_* gauges. With the continuation-passing pipeline
// peak busy stays near the work actually executing; a blocking pipeline
// instead pins busy == threads while requests wait on lower tiers.
inline void PrintPoolSaturation(VisualSearchCluster& cluster) {
  cluster.SamplePoolGauges();
  const obs::Registry& registry = cluster.registry();
  std::printf("\npool saturation (threads busy / queued tasks):\n");
  std::printf("  %-16s %8s %10s %10s %12s\n", "node", "busy", "busy_peak",
              "queued", "queued_peak");
  auto row = [&](const std::string& node) {
    auto value = [&](const char* family) {
      const obs::Gauge* g =
          registry.FindGauge(obs::Labeled(family, "node", node));
      return g == nullptr ? 0ll : (long long)g->Value();
    };
    std::printf("  %-16s %8lld %10lld %10lld %12lld\n", node.c_str(),
                value("jdvs_pool_busy_threads"),
                value("jdvs_pool_busy_threads_peak"),
                value("jdvs_pool_queue_depth"),
                value("jdvs_pool_queue_depth_peak"));
  };
  for (std::size_t i = 0; i < cluster.num_blenders(); ++i) {
    row(cluster.blender(i).name());
  }
  for (std::size_t i = 0; i < cluster.num_brokers(); ++i) {
    row(cluster.broker(i).name());
  }
  // One representative searcher row per partition would be noise at 20
  // partitions; aggregate the tier instead.
  long long busy = 0, busy_peak = 0, queued = 0, queued_peak = 0;
  for (std::size_t i = 0; i < cluster.num_searchers(); ++i) {
    const ThreadPool& pool = cluster.searcher_flat(i).node().pool();
    busy += (long long)pool.busy_threads();
    busy_peak += (long long)pool.peak_busy_threads();
    queued += (long long)pool.queue_depth();
    queued_peak += (long long)pool.peak_queue_depth();
  }
  std::printf("  %-16s %8lld %10lld %10lld %12lld\n", "searchers(sum)", busy,
              busy_peak, queued, queued_peak);
}

}  // namespace jdvs::bench

// Ablation — blender result cache vs the paper's freshness requirement.
//
// The paper's defining constraint is data freshness ("the search results
// should reflect the most recent updates"), which is why its system has no
// result cache in the query path. This harness quantifies what that choice
// costs and what it buys: under Zipf-skewed repeat traffic, a short-TTL
// cache lifts throughput in proportion to its hit rate, but every cache hit
// is allowed to be up to TTL stale — and with strict version-based
// invalidation under a live update stream, the hit rate collapses, which is
// precisely the paper's argument for building real-time indexing instead.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

struct CacheCell {
  double qps;
  double hit_rate;
};

CacheCell Run(bool cache_on, bool strict, double update_rate_per_sec) {
  TestbedOptions options;
  options.num_products = 5000;
  options.num_partitions = 4;
  options.query_extraction_micros = 2000;
  ClusterConfig config = MakeTestbedConfig(options);
  config.blender_result_cache = cache_on;
  config.blender_cache.ttl_micros = 2'000'000;  // 2s staleness bound
  config.blender_cache.strict_version_check = strict;
  auto cluster = std::make_unique<VisualSearchCluster>(config);
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();

  // Background update stream (what defeats strict invalidation).
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    Rng rng(5);
    const auto interval = std::chrono::microseconds(
        static_cast<long>(1e6 / update_rate_per_sec));
    while (!stop.load(std::memory_order_acquire)) {
      ProductUpdateMessage upd;
      upd.type = UpdateType::kAttributeUpdate;
      upd.product_id = 1 + rng.Below(5000);
      upd.attributes = {.sales = rng.Below(1000), .price_cents = 100,
                        .praise = 1};
      cluster->PublishUpdate(upd);
      std::this_thread::sleep_for(interval);
    }
  });

  // Zipf-skewed repeat traffic with a small seed pool so identical photos
  // recur (hot trending products).
  QueryWorkloadConfig qc;
  qc.num_threads = 8;
  qc.duration_micros = 4'000'000;
  qc.zipf_exponent = 1.1;
  qc.seed = 9;
  QueryClient client(*cluster, qc);
  const QueryWorkloadResult result = client.Run();
  stop.store(true, std::memory_order_release);
  updater.join();

  double hit_rate = 0.0;
  if (cache_on) {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < cluster->num_blenders(); ++i) {
      const QueryCacheStats stats =
          cluster->blender(i).result_cache()->stats();
      lookups += stats.lookups;
      hits += stats.hits;
    }
    hit_rate = lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
  cluster->Stop();
  return CacheCell{result.qps, hit_rate};
}

}  // namespace

int main() {
  PrintHeader("Ablation: blender result cache vs freshness",
              "the paper builds real-time indexing instead of caching; this "
              "quantifies the trade");

  std::printf("Zipf(1.1) repeat traffic, 100 attribute updates/s in the "
              "background, 4s per cell:\n\n");
  std::printf("%-34s %10s %10s\n", "configuration", "QPS", "hit rate");
  const CacheCell off = Run(false, false, 100);
  std::printf("%-34s %10.0f %10s\n", "no cache (the paper's system)", off.qps,
              "-");
  const CacheCell ttl = Run(true, false, 100);
  std::printf("%-34s %10.0f %10.2f\n", "cache, 2s TTL (bounded staleness)",
              ttl.qps, ttl.hit_rate);
  const CacheCell strict = Run(true, true, 100);
  std::printf("%-34s %10.0f %10.2f\n", "cache, strict version invalidation",
              strict.qps, strict.hit_rate);
  std::printf("\n(TTL caching buys ~%.0f%% QPS at up to 2s of staleness; "
              "strict invalidation under a live update stream loses almost "
              "every hit — the freshness requirement and caching are "
              "fundamentally at odds, which is the paper's case for "
              "real-time indexing)\n",
              100.0 * (ttl.qps - off.qps) / off.qps);
  return 0;
}

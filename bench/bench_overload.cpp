// Overload behavior with and without the QoS subsystem (src/qos).
//
// The paper's testbed is always driven closed-loop, which self-throttles: a
// saturated cluster slows its users and offered load never exceeds service
// rate. Production flash-sale traffic doesn't behave that way, so this
// harness drives the cluster *open-loop* — Poisson arrivals at a configured
// rate, dispatched through the blenders' continuation-passing entry point —
// and sweeps the offered rate from half of saturation to 3x past it.
//
// Two cluster configurations per offered rate, each on a fresh cluster:
//
//   baseline   pre-QoS behavior: unbounded admission, no latency budget, no
//              adaptive degradation. Past saturation the blender queues grow
//              without bound, every completion blows through the SLO, and
//              goodput collapses.
//   qos        bounded admission (excess is shed immediately), a per-query
//              latency budget equal to the SLO (work that can no longer make
//              it is cancelled at the next tier boundary instead of scanned),
//              and adaptive degradation (shrunk nprobe, then no reranking)
//              under sustained pressure.
//
// Goodput = completions within the SLO per second of the arrival window.
// The QoS cluster should hold bounded p99 for the queries it admits and
// goodput at or above the baseline at >= 2x saturation, with the
// jdvs_qos_deadline_exceeded_total tier counters showing cancelled work and
// the degradation counters showing effort shed.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

constexpr Micros kSloMicros = 100'000;  // 100 ms response-time SLO

TestbedOptions OverloadOptions() {
  TestbedOptions options;
  options.num_products = 3000;
  options.num_partitions = 8;
  options.num_brokers = 2;
  options.num_blenders = 2;
  options.blender_threads = 3;
  // 2 blenders x 3 threads / 5 ms extraction ~= 1200 QPS service capacity:
  // small enough that a single open-loop dispatcher thread can comfortably
  // pace 3x past it.
  options.query_extraction_micros = 5'000;
  return options;
}

ClusterConfig OverloadConfig(bool qos, Micros budget_micros) {
  ClusterConfig config = MakeTestbedConfig(OverloadOptions());
  if (qos) {
    // Bound the queue: ~32 in flight per blender against ~600 QPS/blender
    // keeps worst-case queue wait near half the SLO.
    config.blender_max_in_flight = 32;
    // Budget == SLO by default: a query that can no longer answer in time is
    // cancelled at the next tier boundary instead of scanned for nobody.
    config.default_query_budget_micros = budget_micros;
    config.load_control.p99_degrade_micros = 70'000;
    config.load_control.queue_degrade_depth = 24;
  }
  return config;
}

std::unique_ptr<VisualSearchCluster> BuildOverloadCluster(
    bool qos, Micros budget_micros = kSloMicros) {
  auto cluster = std::make_unique<VisualSearchCluster>(
      OverloadConfig(qos, budget_micros));
  const TestbedOptions options = OverloadOptions();
  CatalogGenConfig cg;
  cg.num_products = options.num_products;
  cg.num_categories = 50;
  cg.min_images_per_product = 3;
  cg.max_images_per_product = 7;
  cg.seed = options.seed ^ 0x11;
  GenerateCatalog(cg, cluster->catalog(), cluster->image_store(),
                  &cluster->features());
  cluster->BuildAndInstallFullIndexes();
  cluster->Start();
  return cluster;
}

std::uint64_t SumCounter(const obs::Registry& registry, const char* family,
                         const char* key, const char* value) {
  const obs::Counter* c =
      registry.FindCounter(obs::Labeled(family, key, value));
  return c != nullptr ? c->Value() : 0;
}

struct ModeResult {
  OpenLoopResult run;
  std::uint64_t deadline_blender = 0;
  std::uint64_t deadline_broker = 0;
  std::uint64_t deadline_searcher = 0;
  std::uint64_t degraded_l1 = 0;
  std::uint64_t degraded_l2 = 0;
  std::uint64_t degradation_steps_up = 0;
};

ModeResult RunMode(bool qos, double arrival_qps,
                   Micros budget_micros = kSloMicros) {
  auto cluster = BuildOverloadCluster(qos, budget_micros);
  QueryWorkloadConfig qc;
  qc.arrival_qps = arrival_qps;
  qc.duration_micros = 2'000'000;
  qc.slo_micros = kSloMicros;
  qc.drain_timeout_micros = 15'000'000;
  QueryClient client(*cluster, qc);
  ModeResult result;
  result.run = client.RunOpenLoop();
  const obs::Registry& registry = cluster->registry();
  result.deadline_blender = SumCounter(
      registry, "jdvs_qos_deadline_exceeded_total", "tier", "blender");
  result.deadline_broker = SumCounter(
      registry, "jdvs_qos_deadline_exceeded_total", "tier", "broker");
  result.deadline_searcher = SumCounter(
      registry, "jdvs_qos_deadline_exceeded_total", "tier", "searcher");
  result.degraded_l1 = SumCounter(registry, "jdvs_qos_degraded_queries_total",
                                  "level", "1");
  result.degraded_l2 = SumCounter(registry, "jdvs_qos_degraded_queries_total",
                                  "level", "2");
  if (cluster->load_controller() != nullptr) {
    result.degradation_steps_up = cluster->load_controller()->steps_up();
  }
  cluster->Stop();
  return result;
}

Json ModeJson(const ModeResult& result) {
  Json j = Json::Object();
  j.Set("offered", result.run.offered);
  j.Set("completed", result.run.completed);
  j.Set("shed", result.run.overload_errors);
  j.Set("deadline_errors", result.run.deadline_errors);
  j.Set("other_errors", result.run.other_errors);
  j.Set("degraded", result.run.degraded);
  j.Set("timed_out_in_flight", result.run.timed_out_in_flight);
  j.Set("offered_qps", result.run.offered_qps);
  j.Set("completed_qps", result.run.completed_qps);
  j.Set("goodput_qps", result.run.goodput_qps);
  j.Set("latency", LatencyJson(*result.run.latency_micros));
  j.Set("deadline_exceeded_blender", result.deadline_blender);
  j.Set("deadline_exceeded_broker", result.deadline_broker);
  j.Set("deadline_exceeded_searcher", result.deadline_searcher);
  j.Set("degraded_level1", result.degraded_l1);
  j.Set("degraded_level2", result.degraded_l2);
  j.Set("degradation_steps_up", result.degradation_steps_up);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  PrintHeader(
      "Overload: open-loop Poisson arrivals past saturation, QoS on vs off",
      "admission + deadlines + degradation bound p99 and protect goodput");

  // Calibrate the saturation point closed-loop: many users, short window.
  std::printf("calibrating saturation (closed-loop, 32 threads)...\n");
  double saturation_qps;
  {
    auto cluster = BuildOverloadCluster(/*qos=*/false);
    QueryWorkloadConfig qc;
    qc.num_threads = 32;
    qc.duration_micros = 1'500'000;
    QueryClient client(*cluster, qc);
    saturation_qps = client.Run().qps;
    cluster->Stop();
  }
  std::printf("saturation ~= %.0f QPS; SLO %lld ms; 2 s of Poisson arrivals "
              "per row, fresh cluster per cell\n\n",
              saturation_qps, (long long)(kSloMicros / 1000));

  std::printf("%6s %8s | %9s %9s %8s %8s | %9s %9s %8s %8s %9s %9s %9s\n",
              "factor", "offered", "base_out", "base_good", "base_p99",
              "base_late", "qos_out", "qos_good", "qos_p99", "qos_shed",
              "qos_ddl", "qos_degr", "steps_up");
  Json rows = Json::Array();
  bool qos_held_at_2x = true;
  for (const double factor : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const double offered = saturation_qps * factor;
    const ModeResult base = RunMode(/*qos=*/false, offered);
    const ModeResult qos = RunMode(/*qos=*/true, offered);
    const std::uint64_t qos_deadlines = qos.run.deadline_errors;
    std::printf(
        "%6.1f %8.0f | %9.0f %9.0f %8lld %8llu | %9.0f %9.0f %8lld %8llu "
        "%9llu %9llu %9llu\n",
        factor, offered, base.run.completed_qps, base.run.goodput_qps,
        (long long)base.run.latency_micros->P99(),
        (unsigned long long)base.run.timed_out_in_flight,
        qos.run.completed_qps, qos.run.goodput_qps,
        (long long)qos.run.latency_micros->P99(),
        (unsigned long long)qos.run.overload_errors,
        (unsigned long long)qos_deadlines,
        (unsigned long long)(qos.degraded_l1 + qos.degraded_l2),
        (unsigned long long)qos.degradation_steps_up);
    if (factor >= 2.0 && qos.run.goodput_qps + 1.0 < base.run.goodput_qps) {
      qos_held_at_2x = false;
    }
    Json row = Json::Object();
    row.Set("factor", factor);
    row.Set("arrival_qps", offered);
    row.Set("baseline", ModeJson(base));
    row.Set("qos", ModeJson(qos));
    rows.Push(std::move(row));
  }

  std::printf(
      "\n(base_good / qos_good = completions inside the %lld ms SLO per "
      "second. Past saturation the baseline's unbounded queues push every "
      "response over the SLO — completed throughput stays at capacity but "
      "goodput collapses and 'base_late' queries are still in flight when "
      "the drain gives up. The QoS cluster sheds the excess at admission "
      "(qos_shed), cancels queries whose budget died mid-pipeline "
      "(qos_ddl), and steps effort down under pressure (qos_degr at "
      "degraded nprobe / no rerank), keeping p99 for admitted queries "
      "bounded and goodput at capacity.)\n",
      (long long)(kSloMicros / 1000));
  std::printf("qos goodput %s baseline goodput at >=2x saturation\n",
              qos_held_at_2x ? "held at or above" : "FELL BELOW");

  // Deadline-cancellation probe. In the sweep above the admission bound is
  // sized so admitted queries finish inside their budget — the deadline
  // counters stay at zero, which is the *intended* steady state. To show the
  // cancellation machinery doing real work, run one more 2x-overload cell
  // with a deliberately tight budget (30 ms, under the loaded pipeline's
  // service time): expiry then fires mid-pipeline and each tier's
  // jdvs_qos_deadline_exceeded_total counter records the downstream work it
  // refused to do.
  const Micros probe_budget = 30'000;
  std::printf("\ndeadline probe: 2.0x load with a tight %lld ms budget\n",
              (long long)(probe_budget / 1000));
  const ModeResult probe =
      RunMode(/*qos=*/true, saturation_qps * 2.0, probe_budget);
  std::printf(
      "  offered %llu  completed %llu  shed %llu  deadline_errors %llu\n"
      "  jdvs_qos_deadline_exceeded_total: blender %llu, broker %llu, "
      "searcher %llu\n",
      (unsigned long long)probe.run.offered,
      (unsigned long long)probe.run.completed,
      (unsigned long long)probe.run.overload_errors,
      (unsigned long long)probe.run.deadline_errors,
      (unsigned long long)probe.deadline_blender,
      (unsigned long long)probe.deadline_broker,
      (unsigned long long)probe.deadline_searcher);

  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "overload");
    root.Set("saturation_qps", saturation_qps);
    root.Set("slo_us", kSloMicros);
    root.Set("qos_goodput_held_at_2x", qos_held_at_2x);
    root.Set("rows", std::move(rows));
    Json probe_json = ModeJson(probe);
    probe_json.Set("budget_us", probe_budget);
    probe_json.Set("factor", 2.0);
    root.Set("deadline_probe", std::move(probe_json));
    WriteBenchJson("overload", root);
  }
  return 0;
}

// Baselines — multi-probe LSH (the paper's references [21, 22]) and the
// inverted multi-index (reference [18]) vs the paper's k-means/IVF indexing.
//
// The related-work section positions hash-based and multi-index
// high-dimensional indexing as the alternatives the system did not choose.
// This harness puts all three on the same axes over the same data: build
// time, recall@10 against exact search, and per-query latency, sweeping each
// method's probe/candidate budget.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Baselines: multi-probe LSH [21] and inverted multi-index [18] "
              "vs k-means IVF (the paper)",
              "the system uses k-means inverted lists; LSH and the "
              "multi-index are the cited alternatives");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 53});
  constexpr std::size_t kProducts = 10000;
  constexpr std::uint32_t kImagesPerProduct = 3;
  const auto& clock = MonotonicClock::Instance();

  // Data.
  struct Item {
    ImageId id;
    ProductId pid;
    CategoryId cat;
    std::string url;
    FeatureVector feature;
  };
  std::vector<Item> items;
  items.reserve(kProducts * kImagesPerProduct);
  for (ProductId pid = 1; pid <= kProducts; ++pid) {
    const auto cat = static_cast<CategoryId>(pid % 50);
    for (std::uint32_t k = 0; k < kImagesPerProduct; ++k) {
      std::string url = MakeImageUrl(pid, k);
      auto f = embedder.Extract({url, pid, cat});
      items.push_back(
          {Fnv1a64(url), pid, cat, std::move(url), std::move(f)});
    }
  }

  // IVF build (training + assignment).
  Stopwatch ivf_watch(clock);
  std::vector<FeatureVector> training;
  Rng rng(2);
  for (int i = 0; i < 4096; ++i) {
    training.push_back(items[rng.Below(items.size())].feature);
  }
  KMeansConfig kc;
  kc.num_clusters = 64;
  auto quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
  IvfIndexConfig ic;
  ic.nprobe = 8;
  IvfIndex ivf(quantizer, ic);
  const ProductAttributes attrs{.sales = 1, .price_cents = 1, .praise = 1};
  for (const Item& item : items) {
    ivf.AddImage(item.url, item.pid, item.cat, attrs, "", item.feature);
  }
  const double ivf_build_s = ivf_watch.ElapsedSeconds();

  // LSH build.
  Stopwatch lsh_watch(clock);
  LshIndexConfig lc;
  lc.num_tables = 8;
  lc.hashes_per_table = 6;
  lc.bucket_width = 24.0f;  // tuned for the synthetic feature scale
  LshIndex lsh(64, lc);
  for (const Item& item : items) lsh.Add(item.id, item.feature);
  const double lsh_build_s = lsh_watch.ElapsedSeconds();

  // IMI build.
  Stopwatch imi_watch(clock);
  ImiConfig mc;
  mc.centroids_per_half = 64;  // 64x64 = 4096 cells vs IVF's 64 lists
  InvertedMultiIndex imi(64, training, mc);
  for (const Item& item : items) imi.Add(item.id, item.feature);
  const double imi_build_s = imi_watch.ElapsedSeconds();

  // Binary hash codes build (refs [22, 23, 29]).
  BinaryHashIndex binary(64, {.num_bits = 128, .rerank_candidates = 100});
  for (const Item& item : items) binary.Add(item.id, item.feature);

  std::printf("build: IVF %.2fs (train + assign), LSH %.2fs (%zu buckets), "
              "IMI %.2fs (%zu/%zu cells occupied)\n\n",
              ivf_build_s, lsh_build_s, lsh.BucketCount(), imi_build_s,
              imi.OccupiedCells(), imi.num_cells());

  // Ground truth.
  constexpr int kQueries = 200;
  std::vector<FeatureVector> queries;
  std::vector<std::vector<ImageId>> truth(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + rng.Below(kProducts);
    queries.push_back(
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 50), q));
    for (const auto& hit : ivf.SearchExhaustive(queries.back(), 10)) {
      truth[q].push_back(hit.image_id);
    }
  }

  const auto evaluate = [&](auto&& search, const char* label) {
    double recall_sum = 0.0;
    Histogram latency;
    for (int q = 0; q < kQueries; ++q) {
      const Micros start = clock.NowMicros();
      const auto hits = search(queries[q]);
      latency.Record(clock.NowMicros() - start);
      int found = 0;
      for (const ImageId id : truth[q]) {
        for (const auto& hit : hits) {
          ImageId hit_id;
          if constexpr (requires { hit.image_id; }) {
            hit_id = hit.image_id;
          }
          if (hit_id == id) {
            ++found;
            break;
          }
        }
      }
      recall_sum += static_cast<double>(found) / 10.0;
    }
    std::printf("%-28s %12.3f %12.1f\n", label, recall_sum / kQueries,
                latency.Mean());
  };

  std::printf("%-28s %12s %12s\n", "index", "recall@10", "mean us");
  for (const std::size_t nprobe : {1u, 4u, 8u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "IVF nprobe=%zu", nprobe);
    evaluate(
        [&, nprobe](const FeatureVector& q) { return ivf.Search(q, 10, nprobe); },
        label);
  }
  for (const std::size_t probes : {0u, 4u, 16u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "LSH extra_probes=%zu", probes);
    evaluate(
        [&, probes](const FeatureVector& q) { return lsh.Search(q, 10, probes); },
        label);
  }
  for (const std::size_t budget : {64u, 256u, 1024u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "IMI candidates=%zu", budget);
    evaluate(
        [&, budget](const FeatureVector& q) { return imi.Search(q, 10, budget); },
        label);
  }
  evaluate([&](const FeatureVector& q) { return binary.Search(q, 10); },
           "binary hash 128b+rerank");
  std::printf("\n(IVF also supports the real-time append/expansion protocol "
              "of Section 2.3; LSH buckets and the IMI grid do not address "
              "real-time update and data freshness — the paper's point about "
              "[18, 21, 22])\n");
  return 0;
}

// Table 1 — "Number of Image Updates on 8/4/2018".
//
// Paper (production, one day): 977M total messages = 315M attribute updates
// (32.2%), 521M image additions (53.3%), 141M image removals (14.4%);
// 513M of the 521M additions (98.5%) were re-listings whose features were
// previously extracted and reused.
//
// Reproduction: a 1:20,000-scale synthetic day (48,850 messages) with the
// same type mix, driven through the real-time indexing path against a warm
// catalog whose off-market pool is deep enough to sustain the production
// re-listing rate. The harness reports the same four counters as Table 1
// plus the measured reuse ratio.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Table 1: number of image updates by type (scaled 1:20,000)",
              "977M total = 315M update / 521M addition / 141M deletion; "
              "98.5% of additions reuse previously extracted features");

  // Warm catalog: 30k products, 65% currently off the market (the
  // re-listing pool), all features extracted in some earlier life.
  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 7});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 30000;
  cg.num_categories = 50;
  cg.initial_off_market_fraction = 0.65;
  const CatalogGenStats gen = GenerateCatalog(cg, catalog, images, &features);
  std::printf("catalog: %llu products (%llu on market), %llu images, "
              "%llu features prewarmed\n\n",
              (unsigned long long)gen.products,
              (unsigned long long)gen.on_market_products,
              (unsigned long long)gen.images,
              (unsigned long long)gen.features_prewarmed);

  // One searcher owning the full index (Table 1 is a whole-system count; the
  // partition split is orthogonal).
  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 64;
  fc.training_sample = 4096;
  FullIndexBuilder builder(catalog, images, features, fc);
  auto quantizer = builder.TrainQuantizer();
  auto index = builder.Build(quantizer);
  RealTimeIndexer indexer(*index, features);
  features.ResetStats();

  DayTraceConfig tc;
  tc.total_messages = 48850;  // 977M / 20,000
  tc.num_categories = 50;
  DayTraceGenerator generator(tc, catalog);
  const Stopwatch watch(MonotonicClock::Instance());
  const DayTraceStats trace = generator.Generate(
      [&](const TraceEvent& event) { indexer.Apply(event.message); });
  const double elapsed = watch.ElapsedSeconds();

  const auto& c = indexer.counters();
  const auto pct = [&](std::uint64_t n) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(trace.total);
  };
  std::printf("%-18s %12s %12s | %10s %10s\n", "type", "measured", "share",
              "paper", "share");
  std::printf("%-18s %12llu %11.1f%% | %10s %10s\n", "total",
              (unsigned long long)trace.total, 100.0, "977M", "100%");
  std::printf("%-18s %12llu %11.1f%% | %10s %10s\n", "attribute update",
              (unsigned long long)c.attribute_updates,
              pct(c.attribute_updates), "315M", "32.2%");
  std::printf("%-18s %12llu %11.1f%% | %10s %10s\n", "image addition",
              (unsigned long long)c.additions, pct(c.additions), "521M",
              "53.3%");
  std::printf("%-18s %12llu %11.1f%% | %10s %10s\n", "image deletion",
              (unsigned long long)c.deletions, pct(c.deletions), "141M",
              "14.4%");

  const std::uint64_t reused_adds = trace.relist_additions;
  std::printf("\nadditions reusing previously extracted features: "
              "%llu / %llu = %.1f%%  (paper: 513M / 521M = 98.5%%)\n",
              (unsigned long long)reused_adds,
              (unsigned long long)trace.additions,
              100.0 * static_cast<double>(reused_adds) /
                  static_cast<double>(trace.additions));
  std::printf("image-level reuse: %llu revalidated in index + %llu feature-DB "
              "hits, %llu fresh extractions\n",
              (unsigned long long)c.images_revalidated,
              (unsigned long long)c.features_reused,
              (unsigned long long)c.features_extracted);
  std::printf("\nprocessed %llu messages in %.2fs (%.0f msg/s, single "
              "searcher, zero-cost CNN model)\n",
              (unsigned long long)trace.total, elapsed,
              static_cast<double>(trace.total) / elapsed);
  return 0;
}

// Figure 11(b) — "Performance of Real Time Indexing" (update latency).
//
// Paper (production, 8/4/2018): per-hour average / p90 / p99 latency of
// real-time index updates over the day; averages 132ms / 223ms / 816ms.
// The p99 swings hour-to-hour (0.5s-2.3s) because a small fraction of
// additions are genuinely new images whose CNN extraction dominates.
//
// Reproduction: the diurnal trace applied through one searcher's real-time
// indexer with *realistic* substrate costs switched on: a 4ms round trip to
// the distributed feature KV store per image lookup and a ~150ms simulated
// CNN on extraction misses (≈1.5% of added images, Table 1). Attribute
// updates and deletions touch only local memory and stay in microseconds;
// re-listings pay KV lookups; fresh additions pay extraction — reproducing
// the paper's avg << p90 << p99 structure and the hour-to-hour p99 noise.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 11(b): latency of real-time index updates per hour",
              "24h averages: mean 132ms, p90 223ms, p99 816ms");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 7});
  // Realistic costs: remote KV lookup 4ms, CNN extraction ~150ms on a miss.
  // Both stay off during bulk setup and are switched on for the measured
  // trace.
  FeatureDb features(embedder,
                     ExtractionCostModel{.mean_micros = 150'000, .sigma = 0.6},
                     /*num_shards=*/64, /*lookup_micros=*/0);
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 30000;
  cg.num_categories = 50;
  cg.initial_off_market_fraction = 0.65;
  GenerateCatalog(cg, catalog, images, &features);

  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 64;
  fc.training_sample = 1024;
  FullIndexBuilder builder(catalog, images, features, fc);
  auto index = builder.Build(builder.TrainQuantizer());
  features.set_lookup_micros(4'000);  // measured phase: remote KV is remote

  // Fresh indexer per hour bucket would lose cross-hour state; instead one
  // indexer, latencies routed into the hour's histogram.
  RealTimeIndexer indexer(*index, features);
  HourlyUpdateSeries series;
  const auto& clock = MonotonicClock::Instance();

  DayTraceConfig tc;
  tc.total_messages = 2400;  // sized so the realistic sleeps replay in ~40s
  tc.num_categories = 50;
  DayTraceGenerator generator(tc, catalog);
  generator.Generate([&](const TraceEvent& event) {
    const Micros start = clock.NowMicros();
    indexer.Apply(event.message);
    series.AddLatency(event.hour, clock.NowMicros() - start);
  });

  Histogram day;
  std::printf("%5s %8s %10s %10s %10s %10s\n", "hour", "n", "avg", "p90",
              "p99", "max");
  for (int h = 0; h < 24; ++h) {
    const Histogram& hist = series.LatencyAt(h);
    if (hist.Count() == 0) continue;
    day.Merge(hist);
    std::printf("%4d: %8llu %10s %10s %10s %10s\n", h,
                (unsigned long long)hist.Count(),
                FormatMicros(static_cast<Micros>(hist.Mean())).c_str(),
                FormatMicros(hist.P90()).c_str(),
                FormatMicros(hist.P99()).c_str(),
                FormatMicros(hist.Max()).c_str());
  }
  std::printf("\n24h aggregate (paper: mean 132ms, p90 223ms, p99 816ms):\n");
  std::printf("  %s\n", SummarizeLatency(day, "update latency").c_str());
  const auto& c = indexer.counters();
  std::printf("  (%llu attr updates, %llu additions [%llu KV-hit, %llu "
              "extracted], %llu deletions)\n",
              (unsigned long long)c.attribute_updates,
              (unsigned long long)c.additions,
              (unsigned long long)c.features_reused,
              (unsigned long long)c.features_extracted,
              (unsigned long long)c.deletions);
  return 0;
}

// Ablation — the 3-level hierarchy (Sections 2.1 and 2.4).
//
// Paper claim: "The three level architecture offers scalability to large
// numbers of images, indexes and searches" — brokers limit each node's
// fan-out (a blender talks to B brokers, each broker to P/B searchers)
// instead of one node fanning out to every searcher and merging everything
// itself.
//
// Harness: the same 20-partition index served through different broker
// counts (1 broker = flat fan-out from a single merge point; 2/4 brokers =
// progressively deeper tree) under an identical closed-loop query load.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Ablation: broker tier width (flat vs 3-level fan-out)",
              "'The three level architecture offers scalability'");

  std::printf("%10s %10s %12s %12s %12s\n", "brokers", "QPS", "mean s",
              "p99 s", "hit rate");
  for (const std::size_t brokers : {1u, 2u, 4u}) {
    TestbedOptions options;
    options.num_products = 10000;
    options.num_partitions = 20;
    options.num_brokers = brokers;
    options.num_blenders = 2;
    // Make per-broker capacity the scarce resource (each broker node stands
    // in for one server): cheap query extraction so fan-out/merge dominate,
    // and a single worker per broker so one flat broker saturates first.
    options.query_extraction_micros = 1000;
    options.broker_threads = 1;
    options.blender_threads = 6;
    auto cluster = BuildTestbed(options);

    QueryWorkloadConfig qc;
    qc.num_threads = 24;
    qc.duration_micros = 4'000'000;
    QueryClient client(*cluster, qc);
    const QueryWorkloadResult result = client.Run();
    std::printf("%10zu %10.0f %12.4f %12.4f %12.2f\n", brokers, result.qps,
                result.latency_micros->Mean() * 1e-6,
                static_cast<double>(result.latency_micros->P99()) * 1e-6,
                result.subject_hit_rate);
    cluster->Stop();
  }
  std::printf("\n(a wider broker tier spreads the merge work and the "
              "searcher fan-out across nodes; with one broker every query "
              "serializes through a single merge point)\n");
  return 0;
}

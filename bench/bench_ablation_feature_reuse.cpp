// Ablation — feature reuse (Section 2.1).
//
// Paper claim: "By reusing the product's information and image features, the
// indexing's performance is significantly improved" — 513M of 521M daily
// image additions reuse previously extracted features instead of re-running
// the CNN.
//
// Harness: apply the same stream of re-listing addition messages twice —
// once against a warm feature DB (production state) and once against a cold
// one — with a realistic extraction cost, and report the indexing throughput
// of each. The speedup is the value of the extract-once policy.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace jdvs;

double RunAdditions(bool warm, std::size_t num_products,
                    std::int64_t extract_micros) {
  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 20,
                                    .seed = 3});
  FeatureDb features(
      embedder, ExtractionCostModel{.mean_micros = extract_micros},
      /*num_shards=*/64, /*lookup_micros=*/500);
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = num_products;
  cg.num_categories = 20;
  cg.initial_off_market_fraction = 1.0;  // everything starts off-market
  GenerateCatalog(cg, catalog, images, warm ? &features : nullptr);

  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 32;
  fc.training_sample = 512;
  // Quantizer training must not be charged to either mode: use a zero-cost
  // feature DB over a small on-market copy of the catalog.
  FeatureDb train_db(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog train_catalog;
  std::size_t taken = 0;
  catalog.ForEach([&](const ProductRecord& r) {
    if (taken >= 200) return;
    ProductRecord copy = r;
    copy.on_market = true;
    train_catalog.Upsert(std::move(copy));
    ++taken;
  });
  FullIndexBuilder quant_builder(train_catalog, images, train_db, fc);
  auto quantizer = quant_builder.TrainQuantizer();
  // The measured index starts empty (everything off-market); the addition
  // stream below is what gets timed.
  FullIndexBuilder builder(catalog, images, features, fc);
  auto index = builder.Build(quantizer);

  RealTimeIndexer indexer(*index, features);
  const Stopwatch watch(MonotonicClock::Instance());
  std::uint64_t messages = 0;
  catalog.ForEach([&](const ProductRecord& record) {
    ProductUpdateMessage add;
    add.type = UpdateType::kAddProduct;
    add.product_id = record.id;
    add.category_id = record.category;
    add.image_urls = record.image_urls;
    add.attributes = record.attributes;
    indexer.Apply(add);
    ++messages;
  });
  const double elapsed = watch.ElapsedSeconds();
  std::printf("  %-4s: %5llu re-listing additions in %6.2fs = %7.0f msg/s "
              "(%llu features reused, %llu extracted)\n",
              warm ? "warm" : "cold", (unsigned long long)messages, elapsed,
              static_cast<double>(messages) / elapsed,
              (unsigned long long)indexer.counters().features_reused,
              (unsigned long long)indexer.counters().features_extracted);
  return static_cast<double>(messages) / elapsed;
}

}  // namespace

int main() {
  using namespace jdvs::bench;
  PrintHeader("Ablation: feature reuse on re-listing additions",
              "reuse 'significantly improves' indexing performance "
              "(98.5% of production additions reuse features)");

  constexpr std::size_t kProducts = 200;
  constexpr std::int64_t kExtractMicros = 10'000;  // modest CNN cost
  std::printf("%zu products (~5 images each), extraction cost %.0fms, KV "
              "lookup 0.5ms:\n",
              kProducts, kExtractMicros / 1000.0);
  const double warm = RunAdditions(true, kProducts, kExtractMicros);
  const double cold = RunAdditions(false, kProducts, kExtractMicros);
  std::printf("\nfeature reuse speedup on the addition path: %.1fx\n",
              warm / cold);
  return 0;
}

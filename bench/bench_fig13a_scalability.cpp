// Figure 13(a) — "Query Performance Scalability" (throughput).
//
// Paper (testbed: 100k images, 20 searchers): QPS vs number of concurrent
// client threads from 1 to 35; throughput rises with offered load and
// saturates around ~1800 QPS (~155M searches/day).
//
// Reproduction: the simulated testbed sized so that its aggregate query-side
// service capacity (3 blenders x 6 threads / 10ms extraction) also saturates
// near 1800 QPS, then a closed-loop client sweep over 1..35 threads.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 13(a): QPS vs concurrent client threads (1..35)",
              "throughput saturates around ~1800 QPS");

  TestbedOptions options;
  std::printf("building testbed (100k images, 20 searchers)...\n\n");
  auto cluster = BuildTestbed(options);

  std::printf("%10s %10s  %s\n", "threads", "QPS", "(bar)");
  double max_qps = 0.0;
  for (std::size_t threads = 1; threads <= 35; threads += 2) {
    QueryWorkloadConfig qc;
    qc.num_threads = threads;
    qc.duration_micros = 1'500'000;
    QueryClient client(*cluster, qc);
    const QueryWorkloadResult result = client.Run();
    max_qps = std::max(max_qps, result.qps);
    char bar[51] = {0};
    const int len =
        static_cast<int>(std::min(50.0, result.qps / 40.0));
    for (int i = 0; i < len; ++i) bar[i] = '#';
    std::printf("%10zu %10.0f  %s\n", threads, result.qps, bar);
  }
  std::printf("\npeak throughput: %.0f QPS = %.0fM searches/day "
              "(paper: ~1800 QPS = 155M/day)\n",
              max_qps, max_qps * 86400.0 / 1e6);
  PrintPoolSaturation(*cluster);
  cluster->Stop();
  return 0;
}

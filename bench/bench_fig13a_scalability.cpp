// Figure 13(a) — "Query Performance Scalability" (throughput).
//
// Paper (testbed: 100k images, 20 searchers): QPS vs number of concurrent
// client threads from 1 to 35; throughput rises with offered load and
// saturates around ~1800 QPS (~155M searches/day).
//
// Reproduction: the simulated testbed sized so that its aggregate query-side
// service capacity (3 blenders x 6 threads / 10ms extraction) also saturates
// near 1800 QPS, then a closed-loop client sweep over 1..35 threads.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 13(a): QPS vs concurrent client threads (1..35)",
              "throughput saturates around ~1800 QPS");

  TestbedOptions options;
  std::printf("building testbed (100k images, 20 searchers)...\n\n");
  auto cluster = BuildTestbed(options);

  Json rows = Json::Array();
  std::printf("%10s %10s  %s\n", "threads", "QPS", "(bar)");
  double max_qps = 0.0;
  for (std::size_t threads = 1; threads <= 35; threads += 2) {
    QueryWorkloadConfig qc;
    qc.num_threads = threads;
    qc.duration_micros = 1'500'000;
    QueryClient client(*cluster, qc);
    const QueryWorkloadResult result = client.Run();
    max_qps = std::max(max_qps, result.qps);
    char bar[51] = {0};
    const int len =
        static_cast<int>(std::min(50.0, result.qps / 40.0));
    for (int i = 0; i < len; ++i) bar[i] = '#';
    std::printf("%10zu %10.0f  %s\n", threads, result.qps, bar);
    Json row = Json::Object();
    row.Set("threads", threads);
    row.Set("qps", result.qps);
    row.Set("latency", LatencyJson(*result.latency_micros));
    rows.Push(std::move(row));
  }
  std::printf("\npeak throughput: %.0f QPS = %.0fM searches/day "
              "(paper: ~1800 QPS = 155M/day)\n",
              max_qps, max_qps * 86400.0 / 1e6);
  PrintPoolSaturation(*cluster);
  PrintQueueWait(cluster->registry());

  // Flight-recorder overhead: the diagnosis layer is always on, so its
  // fault-free cost must be noise. Same fixed load with the recorder off,
  // then on; the QPS delta is the recorder's price (<2% target — one
  // striped spinlock + a ~100-byte struct copy per query).
  double qps_off = 0.0, qps_on = 0.0;
  if (cluster->flight_recorder() != nullptr) {
    auto measure = [&](bool enabled) {
      cluster->flight_recorder()->set_enabled(enabled);
      QueryWorkloadConfig qc;
      qc.num_threads = 16;
      qc.duration_micros = 2'000'000;
      QueryClient client(*cluster, qc);
      return client.Run().qps;
    };
    measure(true);  // warmup so run order doesn't skew the comparison
    qps_off = measure(false);
    qps_on = measure(true);
    const double overhead =
        qps_off <= 0.0 ? 0.0 : 100.0 * (qps_off - qps_on) / qps_off;
    std::printf("\nflight recorder overhead @16 threads: "
                "%.0f QPS off vs %.0f QPS on (%+.1f%%, target < 2%%)\n",
                qps_off, qps_on, overhead);
  }
  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "fig13a_scalability");
    root.Set("peak_qps", max_qps);
    root.Set("recorder_off_qps", qps_off);
    root.Set("recorder_on_qps", qps_on);
    root.Set("rows", std::move(rows));
    WriteBenchJson("fig13a_scalability", root);
  }
  cluster->Stop();
  return 0;
}

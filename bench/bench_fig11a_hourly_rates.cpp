// Figure 11(a) — "Hourly Rate of Real Time Indexing".
//
// Paper (production, 8/4/2018): stacked per-hour counts of real-time index
// updates by type, quiet overnight, ramping through the morning to a peak of
// ~80M updates/hour at 11:00, afternoon plateau, evening tail.
//
// Reproduction: the scaled diurnal day trace applied through the real-time
// indexer, bucketed per hour and per type. Scale 1:20,000, so the paper's
// 80M/h peak corresponds to ~4,000 messages in the 11:00 bucket.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 11(a): hourly rate of real-time index updates",
              "diurnal curve peaking at ~80M updates/hour at 11:00");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 7});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 30000;
  cg.num_categories = 50;
  cg.initial_off_market_fraction = 0.65;
  GenerateCatalog(cg, catalog, images, &features);

  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 64;
  fc.training_sample = 4096;
  FullIndexBuilder builder(catalog, images, features, fc);
  auto index = builder.Build(builder.TrainQuantizer());
  RealTimeIndexer indexer(*index, features);

  DayTraceConfig tc;
  tc.total_messages = 48850;
  tc.num_categories = 50;
  DayTraceGenerator generator(tc, catalog);
  HourlyUpdateSeries series;
  generator.Generate([&](const TraceEvent& event) {
    indexer.Apply(event.message);
    series.AddCount(event.hour, event.message.type);
  });

  std::printf("%5s %10s %10s %10s %10s  %s\n", "hour", "update", "deletion",
              "addition", "total", "(bar = total)");
  std::uint64_t max_total = 1;
  for (int h = 0; h < 24; ++h) {
    max_total = std::max(max_total, series.TotalAt(h));
  }
  std::uint64_t peak_total = 0;
  int peak_hour = 0;
  for (int h = 0; h < 24; ++h) {
    const std::uint64_t total = series.TotalAt(h);
    if (total > peak_total) {
      peak_total = total;
      peak_hour = h;
    }
    char bar[41] = {0};
    const int len = static_cast<int>(40.0 * static_cast<double>(total) /
                                     static_cast<double>(max_total));
    for (int i = 0; i < len; ++i) bar[i] = '#';
    std::printf("%4d: %10llu %10llu %10llu %10llu  %s\n", h,
                (unsigned long long)series.CountAt(
                    h, UpdateType::kAttributeUpdate),
                (unsigned long long)series.CountAt(
                    h, UpdateType::kRemoveProduct),
                (unsigned long long)series.CountAt(h, UpdateType::kAddProduct),
                (unsigned long long)total, bar);
  }
  std::printf("\npeak hour: %02d:00 with %llu updates (scaled x20,000 = "
              "%.0fM/hour; paper: ~80M/hour at 11:00)\n",
              peak_hour, (unsigned long long)peak_total,
              static_cast<double>(peak_total) * 20000.0 / 1e6);
  return 0;
}

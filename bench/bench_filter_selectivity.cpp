// Hybrid filtered search: selectivity sweep.
//
// Structured predicates ("price <= X and sales >= Y") conjoined with the
// visual query change the scan's economics with the filter's selectivity.
// This harness sweeps three regimes — ~50% (broad), ~5% (narrow), ~0.1%
// (needle) — over the flat IVF and the IVF-PQ index, and compares bitmap
// predicate pushdown (materialize once, skip wholly-dead 64-entry
// sub-blocks, widen nprobe when the filter is starving the probe set)
// against the naive baseline every index gets for free: search unfiltered,
// post-filter the hits, and re-scan with 4x the fetch depth until k
// survivors accumulate (ImageIndex::Search's generic fallback).
//
// Attributes are drawn from the workload generator's Zipf-like sampler, so
// the thresholds are picked from the sampled distribution's quantiles the
// way a merchandiser's filter would land on real traffic.
//
// Flags: --quick (smaller corpus + fewer queries, CI smoke), --seed=N,
// --json (also write BENCH_filter_selectivity.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace jdvs;
using namespace jdvs::bench;

struct Corpus {
  std::shared_ptr<const CoarseQuantizer> quantizer;
  std::shared_ptr<const ProductQuantizer> pq;
  std::unique_ptr<IvfIndex> flat;
  std::unique_ptr<IvfPqIndex> ivfpq;
  std::vector<std::uint64_t> sales_sorted;  // for quantile thresholds
  std::vector<FeatureVector> queries;
};

Corpus BuildCorpus(std::size_t images, std::size_t num_queries,
                   std::uint64_t seed) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kClusters = 64;
  Corpus corpus;
  Rng rng(seed);

  std::vector<FeatureVector> training;
  training.reserve(2048);
  for (std::size_t i = 0; i < 2048; ++i) {
    FeatureVector v(kDim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    training.push_back(std::move(v));
  }
  KMeansConfig kc;
  kc.num_clusters = kClusters;
  corpus.quantizer =
      std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 64;
  corpus.pq = std::make_shared<ProductQuantizer>(
      ProductQuantizer::Train(training, pc));

  IvfIndexConfig fc;
  fc.nprobe = 8;
  corpus.flat = std::make_unique<IvfIndex>(corpus.quantizer, fc);
  IvfPqIndexConfig qc;
  qc.nprobe = 8;
  corpus.ivfpq = std::make_unique<IvfPqIndex>(corpus.quantizer, corpus.pq, qc);

  for (std::size_t i = 0; i < images; ++i) {
    const auto product = static_cast<ProductId>(i + 1);
    const ProductAttributes attrs = SampleProductAttributes(rng);
    FeatureVector v(kDim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    const std::string url = MakeImageUrl(product, 0);
    const auto category = static_cast<CategoryId>(i % 50);
    corpus.flat->AddImage(url, product, category, attrs, "", v);
    corpus.ivfpq->AddImage(url, product, category, attrs, "", v);
    corpus.sales_sorted.push_back(attrs.sales);
  }
  std::sort(corpus.sales_sorted.begin(), corpus.sales_sorted.end());

  corpus.queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    FeatureVector v(kDim);
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    corpus.queries.push_back(std::move(v));
  }
  return corpus;
}

struct SweepRow {
  const char* regime;
  double target_selectivity;
  const char* engine;  // "flat" | "ivfpq"
  const char* mode;    // "pushdown" | "naive"
  double qps = 0.0;
  double mean_us = 0.0;
  std::int64_t p99_us = 0;
  double hits_mean = 0.0;
  double actual_selectivity = 0.0;
  std::string strategy;  // pushdown only
  double blocks_skipped_mean = 0.0;
  std::uint64_t widened = 0;
  std::uint64_t estimated = 0;  // queries planned via the selectivity probe
};

template <typename SearchFn>
SweepRow Measure(const char* regime, double target, const char* engine,
                 const char* mode, const std::vector<FeatureVector>& queries,
                 std::size_t k, SearchFn&& search) {
  SweepRow row{regime, target, engine, mode};
  const auto& clock = MonotonicClock::Instance();
  Histogram latency;
  std::size_t hits_total = 0;
  const Stopwatch wall(clock);
  for (const FeatureVector& q : queries) {
    const Micros start = clock.NowMicros();
    hits_total += search(q, k);
    latency.Record(clock.NowMicros() - start);
  }
  const double seconds = wall.ElapsedSeconds();
  row.qps = seconds > 0 ? static_cast<double>(queries.size()) / seconds : 0.0;
  row.mean_us = latency.Mean();
  row.p99_us = latency.P99();
  row.hits_mean =
      static_cast<double>(hits_total) / static_cast<double>(queries.size());
  return row;
}

void PrintRow(const SweepRow& row) {
  std::printf("%8s %6s %9s %9.0f %9.1f %8lld %7.1f %10s %8.1f\n", row.regime,
              row.engine, row.mode, row.qps, row.mean_us,
              static_cast<long long>(row.p99_us), row.hits_mean,
              row.strategy.empty() ? "-" : row.strategy.c_str(),
              row.blocks_skipped_mean);
}

Json RowJson(const SweepRow& row) {
  Json j = Json::Object();
  j.Set("regime", row.regime);
  j.Set("target_selectivity", row.target_selectivity);
  j.Set("actual_selectivity", row.actual_selectivity);
  j.Set("engine", row.engine);
  j.Set("mode", row.mode);
  j.Set("qps", row.qps);
  j.Set("mean_us", row.mean_us);
  j.Set("p99_us", row.p99_us);
  j.Set("hits_mean", row.hits_mean);
  if (!row.strategy.empty()) {
    j.Set("strategy", row.strategy);
    j.Set("blocks_skipped_mean", row.blocks_skipped_mean);
    j.Set("widened_nprobe_queries", row.widened);
    j.Set("estimated_plan_queries", row.estimated);
  }
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jdvs;
  using namespace jdvs::bench;

  bool quick = false;
  std::uint64_t seed = 2018;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.data() + 7, nullptr, 10);
    }
  }

  PrintHeader("Hybrid filtered search: selectivity sweep",
              "structured attribute predicates conjoined with the visual "
              "query (category + sales/price/praise ranges)");

  const std::size_t images = quick ? 20'000 : 100'000;
  const std::size_t num_queries = quick ? 200 : 1'000;
  constexpr std::size_t kTopK = 10;
  std::printf("corpus: %zu images, dim 64, 64 lists, nprobe 8; %zu queries "
              "per cell, k=%zu\n\n",
              images, num_queries, kTopK);
  Corpus corpus = BuildCorpus(images, num_queries, seed);

  // Thresholds from the sampled sales distribution's quantiles: a predicate
  // "sales >= q(1-s)" matches a ~s fraction of the corpus.
  struct Regime {
    const char* name;
    double selectivity;
  };
  const Regime regimes[] = {{"50%", 0.5}, {"5%", 0.05}, {"0.1%", 0.001}};

  std::printf("%8s %6s %9s %9s %9s %8s %7s %10s %8s\n", "regime", "engine",
              "mode", "QPS", "mean us", "p99 us", "hits", "strategy",
              "blk skip");
  Json rows = Json::Array();
  std::vector<SweepRow> all_rows;
  for (const Regime& regime : regimes) {
    const std::size_t rank = std::min(
        corpus.sales_sorted.size() - 1,
        static_cast<std::size_t>((1.0 - regime.selectivity) *
                                 static_cast<double>(images)));
    FilterExpression filter;
    filter.WithMin(FilterField::kSales, corpus.sales_sorted[rank]);
    const double actual =
        static_cast<double>(corpus.sales_sorted.end() -
                            std::lower_bound(corpus.sales_sorted.begin(),
                                             corpus.sales_sorted.end(),
                                             corpus.sales_sorted[rank])) /
        static_cast<double>(images);

    // Per-cell stats accumulators for the pushdown rows.
    std::uint64_t blocks_skipped = 0;
    std::uint64_t widened = 0;
    std::uint64_t estimated = 0;
    FilterScanStats::Strategy last_strategy = FilterScanStats::Strategy::kNone;
    const auto pushdown_stats = [&](const FilterScanStats& stats) {
      blocks_skipped += stats.blocks_skipped;
      widened += stats.widened_nprobe ? 1 : 0;
      estimated += stats.estimated ? 1 : 0;
      last_strategy = stats.strategy;
    };
    const auto finish_pushdown = [&](SweepRow& row) {
      row.actual_selectivity = actual;
      row.strategy = FilterStrategyName(last_strategy);
      row.blocks_skipped_mean = static_cast<double>(blocks_skipped) /
                                static_cast<double>(num_queries);
      row.widened = widened;
      row.estimated = estimated;
      blocks_skipped = 0;
      widened = 0;
      estimated = 0;
    };

    SweepRow row = Measure(
        regime.name, regime.selectivity, "flat", "pushdown", corpus.queries,
        kTopK, [&](const FeatureVector& q, std::size_t k) {
          FilterScanStats stats;
          const auto hits =
              corpus.flat->Search(q, k, 0, kNoCategoryFilter, filter, &stats);
          pushdown_stats(stats);
          return hits.size();
        });
    finish_pushdown(row);
    PrintRow(row);
    rows.Push(RowJson(row));
    all_rows.push_back(row);

    row = Measure(regime.name, regime.selectivity, "flat", "naive",
                  corpus.queries, kTopK,
                  [&](const FeatureVector& q, std::size_t k) {
                    return corpus.flat
                        ->ImageIndex::Search(q, k, 0, kNoCategoryFilter,
                                             filter)
                        .size();
                  });
    row.actual_selectivity = actual;
    PrintRow(row);
    rows.Push(RowJson(row));
    all_rows.push_back(row);

    row = Measure(
        regime.name, regime.selectivity, "ivfpq", "pushdown", corpus.queries,
        kTopK, [&](const FeatureVector& q, std::size_t k) {
          FilterScanStats stats;
          const auto hits =
              corpus.ivfpq->Search(q, k, 0, kNoCategoryFilter, filter, &stats);
          pushdown_stats(stats);
          return hits.size();
        });
    finish_pushdown(row);
    PrintRow(row);
    rows.Push(RowJson(row));
    all_rows.push_back(row);

    row = Measure(regime.name, regime.selectivity, "ivfpq", "naive",
                  corpus.queries, kTopK,
                  [&](const FeatureVector& q, std::size_t k) {
                    return corpus.ivfpq
                        ->ImageIndex::Search(q, k, 0, kNoCategoryFilter,
                                             filter)
                        .size();
                  });
    row.actual_selectivity = actual;
    PrintRow(row);
    rows.Push(RowJson(row));
    all_rows.push_back(row);
  }

  // Headline comparisons. At needle selectivity the naive baseline re-scans
  // with escalating fetch depth (most hits fail the predicate) and
  // under-fills k, while pushdown skips dead sub-blocks and widens nprobe.
  // At broad selectivity the planner's sampled estimate picks the direct
  // post-filter mode (no bitmap materialization) and must still beat naive
  // over-fetch — the pay-off of the selectivity probe.
  const auto summarize = [&all_rows](const char* regime_name) {
    Json per_engine = Json::Object();
    for (const char* engine : {"flat", "ivfpq"}) {
      double push_qps = 0.0;
      double naive_qps = 0.0;
      double push_hits = 0.0;
      double naive_hits = 0.0;
      for (const SweepRow& row : all_rows) {
        if (std::strcmp(row.regime, regime_name) != 0 ||
            std::strcmp(row.engine, engine) != 0) {
          continue;
        }
        (std::strcmp(row.mode, "pushdown") == 0 ? push_qps : naive_qps) =
            row.qps;
        (std::strcmp(row.mode, "pushdown") == 0 ? push_hits : naive_hits) =
            row.hits_mean;
      }
      Json j = Json::Object();
      j.Set("pushdown_qps", push_qps);
      j.Set("naive_qps", naive_qps);
      j.Set("qps_ratio", naive_qps > 0 ? push_qps / naive_qps : 0.0);
      j.Set("pushdown_hits_mean", push_hits);
      j.Set("naive_hits_mean", naive_hits);
      per_engine.Set(engine, std::move(j));
      std::printf("\n%s @%s: pushdown %.0f QPS vs naive %.0f QPS (%.1fx), "
                  "hits %.1f vs %.1f",
                  engine, regime_name, push_qps, naive_qps,
                  naive_qps > 0 ? push_qps / naive_qps : 0.0, push_hits,
                  naive_hits);
    }
    return per_engine;
  };
  Json speedups = summarize("0.1%");
  Json broad = summarize("50%");
  std::printf("\n");

  if (WantJson(argc, argv)) {
    Json root = Json::Object();
    root.Set("bench", "filter_selectivity");
    root.Set("images", images);
    root.Set("queries_per_cell", num_queries);
    root.Set("k", kTopK);
    root.Set("seed", seed);
    root.Set("quick", quick);
    root.Set("rows", std::move(rows));
    root.Set("needle_regime_summary", std::move(speedups));
    root.Set("broad_regime_summary", std::move(broad));
    WriteBenchJson("filter_selectivity", root);
  }
  return 0;
}

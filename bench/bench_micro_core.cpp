// Microbenchmarks (google-benchmark) for the substrate hot paths: distance
// kernels, top-k selection, bitmap, forward index, inverted list, histogram,
// coarse quantizer.
//
// `--roofline` switches to the kernel roofline harness instead: per-kernel
// GB/s and distances/s for every dispatch tier this CPU supports, plus the
// end-to-end IVF scan (seed-style per-entry layout vs the contiguous padded
// scan, solo vs batched), written to BENCH_kernel_roofline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <memory>
#include <string_view>

#include "bench_common.h"
#include "jdvs/jdvs.h"
#include "vecmath/aligned.h"
#include "vecmath/kernels.h"

namespace jdvs {
namespace {

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_L2SquaredDistance(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const FeatureVector a = RandomVector(rng, dim);
  const FeatureVector b = RandomVector(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SquaredDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SquaredDistance)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_L2SquaredBatch(benchmark::State& state) {
  constexpr std::size_t kDim = 64;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> base(kDim * count);
  for (float& x : base) x = static_cast<float>(rng.NextGaussian());
  const FeatureVector q = RandomVector(rng, kDim);
  std::vector<float> out(count);
  for (auto _ : state) {
    L2SquaredBatch(q, base.data(), kDim, count, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_L2SquaredBatch)->Arg(64)->Arg(1024);

void BM_TopKOffer(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> distances(100000);
  for (float& d : distances) d = static_cast<float>(rng.NextDouble());
  for (auto _ : state) {
    TopK topk(k);
    for (std::size_t i = 0; i < distances.size(); ++i) {
      topk.Offer(i, distances[i]);
    }
    benchmark::DoNotOptimize(topk.size());
  }
  state.SetItemsProcessed(state.iterations() * distances.size());
}
BENCHMARK(BM_TopKOffer)->Arg(10)->Arg(100);

void BM_BitmapSetGet(benchmark::State& state) {
  ValidityBitmap bitmap(1 << 20);
  Rng rng(4);
  std::size_t i = 0;
  for (auto _ : state) {
    bitmap.Set(i % (1 << 20), (i & 1) != 0);
    benchmark::DoNotOptimize(bitmap.Get((i * 7919) % (1 << 20)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapSetGet);

void BM_ForwardIndexAppend(benchmark::State& state) {
  const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 2};
  std::size_t i = 0;
  std::unique_ptr<ForwardIndex> index;
  for (auto _ : state) {
    if (i % 1000000 == 0) index = std::make_unique<ForwardIndex>();
    benchmark::DoNotOptimize(
        index->Append(i, i, 0, attrs, "jd://img/0/0", "jd://item/0"));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardIndexAppend);

void BM_ForwardIndexUpdateNumeric(benchmark::State& state) {
  ForwardIndex index;
  const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 2};
  for (int i = 0; i < 1024; ++i) {
    index.Append(i, i, 0, attrs, "u", "d");
  }
  std::size_t i = 0;
  for (auto _ : state) {
    index.UpdateNumeric(static_cast<LocalId>(i++ % 1024), attrs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardIndexUpdateNumeric);

void BM_InvertedListAppend(benchmark::State& state) {
  std::unique_ptr<InvertedList> list;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i % 1000000 == 0) list = std::make_unique<InvertedList>(1024);
    list->Append(static_cast<LocalId>(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedListAppend);

void BM_InvertedListScan(benchmark::State& state) {
  InvertedList list(1 << 16);
  for (LocalId i = 0; i < (1 << 16); ++i) list.Append(i);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    list.Scan([&sum](LocalId id) { sum += id; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_InvertedListScan);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.Record(static_cast<std::int64_t>(i++ * 37 % 1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_QuantizerNearestCentroid(benchmark::State& state) {
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kDim = 64;
  Rng rng(6);
  std::vector<float> centroids(clusters * kDim);
  for (float& x : centroids) x = static_cast<float>(rng.NextGaussian());
  const CoarseQuantizer quantizer(std::move(centroids), kDim);
  const FeatureVector q = RandomVector(rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantizer.NearestCentroid(q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantizerNearestCentroid)->Arg(64)->Arg(256);

void BM_SyntheticEmbedderExtract(benchmark::State& state) {
  const SyntheticEmbedder embedder(
      {.dim = 64, .num_categories = 50, .seed = 1});
  const ImageContent content{"jd://img/1/0", 1, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Extract(content));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticEmbedderExtract);

void BM_PqEncode(benchmark::State& state) {
  Rng rng(11);
  std::vector<FeatureVector> training;
  for (int i = 0; i < 1024; ++i) training.push_back(RandomVector(rng, 64));
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 256;
  const ProductQuantizer pq = ProductQuantizer::Train(training, pc);
  const FeatureVector v = RandomVector(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pq.Encode(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PqEncode);

void BM_PqAdcScan(benchmark::State& state) {
  // ADC distance over a block of codes: the IVF-PQ inner loop.
  Rng rng(12);
  std::vector<FeatureVector> training;
  for (int i = 0; i < 1024; ++i) training.push_back(RandomVector(rng, 64));
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 256;
  const ProductQuantizer pq = ProductQuantizer::Train(training, pc);
  CodeSet codes(pq.code_bytes());
  constexpr int kCodes = 4096;
  for (int i = 0; i < kCodes; ++i) {
    codes.Append(pq.Encode(RandomVector(rng, 64)));
  }
  const FeatureVector q = RandomVector(rng, 64);
  const auto table = pq.BuildDistanceTable(q);
  for (auto _ : state) {
    float sum = 0.f;
    for (int i = 0; i < kCodes; ++i) {
      sum += pq.DistanceWithTable(table, codes.At(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
}
BENCHMARK(BM_PqAdcScan);

void BM_BinaryHashHamming(benchmark::State& state) {
  Rng rng(13);
  constexpr std::size_t kWords = 2;  // 128 bits
  constexpr int kSignatures = 8192;
  std::vector<std::uint64_t> signatures(kSignatures * kWords);
  for (auto& w : signatures) w = rng.Next64();
  const std::uint64_t query[kWords] = {rng.Next64(), rng.Next64()};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int i = 0; i < kSignatures; ++i) {
      sum += BinaryHashIndex::HammingDistance(query,
                                              &signatures[i * kWords], kWords);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kSignatures);
}
BENCHMARK(BM_BinaryHashHamming);

void BM_QueryCacheLookupHit(benchmark::State& state) {
  QueryCache cache(64);
  Rng rng(14);
  const FeatureVector q = RandomVector(rng, 64);
  const auto key = cache.KeyFor(q, 10, 0);
  QueryResponse response;
  response.results.resize(10);
  cache.Insert(key, 0, response);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(key, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCacheLookupHit);

void BM_IvfSearch(benchmark::State& state) {
  const std::size_t nprobe = static_cast<std::size_t>(state.range(0));
  const SyntheticEmbedder embedder(
      {.dim = 64, .num_categories = 20, .seed = 9});
  Rng rng(9);
  std::vector<FeatureVector> sample;
  for (int i = 0; i < 1024; ++i) {
    sample.push_back(
        embedder.Extract({MakeImageUrl(i % 512, 0), static_cast<ProductId>(i % 512),
                          static_cast<CategoryId>(i % 20)}));
  }
  KMeansConfig kc;
  kc.num_clusters = 64;
  auto quantizer =
      std::make_shared<CoarseQuantizer>(TrainKMeans(sample, kc));
  IvfIndexConfig ic;
  ic.nprobe = nprobe;
  IvfIndex index(quantizer, ic);
  const ProductAttributes attrs{.sales = 1, .price_cents = 1, .praise = 1};
  for (int i = 0; i < 50000; ++i) {
    const ProductId pid = 1 + static_cast<ProductId>(i % 10000);
    const CategoryId cat = static_cast<CategoryId>(pid % 20);
    index.AddImage(MakeImageUrl(pid, static_cast<std::uint32_t>(i / 10000)),
                   pid, cat, attrs, "",
                   embedder.Extract({MakeImageUrl(pid, 9), pid, cat}));
  }
  std::size_t q = 0;
  for (auto _ : state) {
    const ProductId pid = 1 + static_cast<ProductId>(q % 10000);
    const auto query =
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 20), q);
    benchmark::DoNotOptimize(index.Search(query, 10));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(8);

}  // namespace

// ---- Kernel roofline harness (--roofline) ----
namespace roofline {
namespace {

double Seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Seconds per call of `fn`: the median of 5 timed windows of at least
// `min_secs` each (one untimed warmup call first). The median discards
// windows inflated by scheduler noise on a shared core, which single-window
// timing cannot — ratios between rows would otherwise swing by 10%+ between
// runs.
template <typename Fn>
double TimePerCall(Fn&& fn, double min_secs = 0.15) {
  fn();
  std::array<double, 5> windows;
  for (double& window : windows) {
    std::size_t calls = 0;
    const double start = Seconds();
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = Seconds() - start;
    } while (elapsed < min_secs);
    window = elapsed / static_cast<double>(calls);
  }
  std::sort(windows.begin(), windows.end());
  return windows[2];
}

// One timed window (no medianing): the building block for paired A/B
// measurement, where the caller alternates two workloads and medians the
// per-round ratios instead of the raw times.
template <typename Fn>
double SingleWindow(Fn&& fn, double min_secs = 0.15) {
  std::size_t calls = 0;
  const double start = Seconds();
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = Seconds() - start;
  } while (elapsed < min_secs);
  return elapsed / static_cast<double>(calls);
}

struct Row {
  std::string kernel;
  std::string tier;
  double gb_per_s = 0.0;
  double distances_per_s = 0.0;
  double speedup_vs_scalar = 0.0;  // same kernel, scalar tier
};

void PrintRows(const std::vector<Row>& rows) {
  std::printf("\n%-24s %-8s %12s %16s %10s\n", "kernel", "tier", "GB/s",
              "distances/s", "vs scalar");
  for (const Row& row : rows) {
    std::printf("%-24s %-8s %12.2f %16.3e %9.2fx\n", row.kernel.c_str(),
                row.tier.c_str(), row.gb_per_s, row.distances_per_s,
                row.speedup_vs_scalar);
  }
}

// Fills speedup_vs_scalar against the scalar row of the same kernel.
void AnnotateSpeedups(std::vector<Row>& rows) {
  for (Row& row : rows) {
    for (const Row& base : rows) {
      if (base.kernel == row.kernel && base.tier == "scalar") {
        row.speedup_vs_scalar = row.distances_per_s / base.distances_per_s;
      }
    }
  }
}

// Per-kernel rates for one query against a row array of the given footprint
// (cache-resident and spilled variants are both reported — the scan is
// compute-bound in the first regime and bandwidth-bound in the second), per
// dispatch tier this CPU can run.
std::vector<Row> KernelRows(std::size_t dim, std::size_t rows_count,
                            const char* regime) {
  const std::size_t padded = PaddedDim(dim);
  Rng rng(17);
  AlignedArray<float> base = AllocateAligned<float>(rows_count * padded);
  for (std::size_t r = 0; r < rows_count; ++r) {
    for (std::size_t d = 0; d < dim; ++d) {
      base.get()[r * padded + d] = static_cast<float>(rng.NextGaussian());
    }
  }
  AlignedArray<float> query = AllocateAligned<float>(padded);
  for (std::size_t d = 0; d < dim; ++d) {
    query.get()[d] = static_cast<float>(rng.NextGaussian());
  }

  // ADC corpus: m=8 subspaces, 256 centroids — the paper's PQ shape.
  constexpr std::size_t kM = 8, kKs = 256;
  std::vector<float> table(kM * kKs);
  for (float& x : table) x = static_cast<float>(rng.NextDouble());
  std::vector<std::uint8_t> codes(rows_count * kM);
  for (std::uint8_t& c : codes) c = static_cast<std::uint8_t>(rng.Below(kKs));

  std::vector<float> out(rows_count);
  std::vector<Row> result;
  const std::string dim_tag = "/d" + std::to_string(dim) + "/" + regime;
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    const DistanceKernels* kernels = KernelsForTier(tier);
    if (kernels == nullptr) continue;  // CPU can't run this tier
    const double row_bytes = static_cast<double>(padded) * sizeof(float);

    const double l2_secs = TimePerCall([&] {
      for (std::size_t r = 0; r < rows_count; ++r) {
        out[r] = kernels->l2sq(query.get(), base.get() + r * padded, padded);
      }
      benchmark::DoNotOptimize(out.data());
    });
    result.push_back({"l2sq" + dim_tag, KernelTierName(tier),
                      rows_count * row_bytes / l2_secs / 1e9,
                      rows_count / l2_secs});

    const double b4_secs = TimePerCall([&] {
      for (std::size_t r = 0; r + 4 <= rows_count; r += 4) {
        kernels->l2sq_batch4(query.get(), base.get() + r * padded, padded,
                             padded, out.data() + r);
      }
      benchmark::DoNotOptimize(out.data());
    });
    result.push_back({"l2sq_batch4" + dim_tag, KernelTierName(tier),
                      rows_count * row_bytes / b4_secs / 1e9,
                      rows_count / b4_secs});

    const double adc_secs = TimePerCall([&] {
      kernels->pq_adc_scan(table.data(), kKs, codes.data(), kM, rows_count,
                           out.data());
      benchmark::DoNotOptimize(out.data());
    });
    result.push_back({"pq_adc_scan/m8/" + std::string(regime),
                      KernelTierName(tier),
                      rows_count * static_cast<double>(kM) / adc_secs / 1e9,
                      rows_count / adc_secs});
  }
  return result;
}

// End-to-end single-searcher IVF scan. The "seed" rows reproduce the
// pre-refactor layout faithfully: per-entry id indirection into an unpadded
// row array, one scalar distance call per entry, validity checked per entry.
// The "ivf_scan" rows run the real IvfIndex under each forced tier; the
// batch row groups queries through SearchBatch.
//
// The seed's TopK::Offer lived in topk.cc, so every candidate paid an
// out-of-line call; today's header-inline TopK would silently erase that
// cost from the mirror and flatter the refactored path's speedup baseline
// in the wrong direction — the mirror would run ~15% faster than the seed
// binary actually does. SeedTopK restores the call boundary. Validated
// against the seed commit built directly: seed binary scan stage measured
// 19.8us/query; the mirror with this wrapper lands within noise of that.
struct SeedTopK {
  explicit SeedTopK(std::size_t k) : topk(k) {}
  __attribute__((noinline)) void Offer(LocalId id, float distance) {
    topk.Offer(id, distance);
  }
  TopK topk;
};
struct IvfRows {
  std::vector<Row> rows;
  double seed_scalar_qps = 0.0;
  double avx2_qps = 0.0;
  // Headline speedup from paired alternating windows (median of per-round
  // ratios) — robust against machine-load phases that span whole rows.
  double avx2_vs_seed_paired = 0.0;
};

IvfRows IvfScanRows() {
  // One searcher of the paper's testbed: 100k images over 20 partitions =
  // 5k images/searcher at dim 64, 64 coarse clusters, nprobe 8.
  constexpr std::size_t kDim = 64, kClusters = 64, kImages = 5000;
  constexpr std::size_t kNprobe = 8, kK = 10, kQueries = 256;
  const SyntheticEmbedder embedder({.dim = kDim, .num_categories = 20,
                                    .seed = 9});
  Rng rng(9);
  std::vector<FeatureVector> sample;
  for (int i = 0; i < 1024; ++i) {
    sample.push_back(embedder.Extract(
        {MakeImageUrl(i % 512, 0), static_cast<ProductId>(i % 512),
         static_cast<CategoryId>(i % 20)}));
  }
  KMeansConfig kc;
  kc.num_clusters = kClusters;
  auto quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(sample, kc));

  IvfIndexConfig ic;
  ic.nprobe = kNprobe;
  IvfIndex index(quantizer, ic);
  // Seed-style mirror built from the repo's own primitives, reproducing the
  // pre-refactor scan path cost for cost: InvertedList::Scan's per-entry
  // std::function callback, VectorSet::At's chunk indirection, and one
  // dispatched L2SquaredDistance wrapper call per candidate.
  std::vector<std::unique_ptr<InvertedList>> seed_lists;
  seed_lists.reserve(kClusters);
  for (std::size_t c = 0; c < kClusters; ++c) {
    seed_lists.push_back(std::make_unique<InvertedList>());
  }
  VectorSet seed_features(kDim);
  const ProductAttributes attrs{.sales = 1, .price_cents = 1, .praise = 1};
  for (std::size_t i = 0; i < kImages; ++i) {
    const ProductId pid = 1 + static_cast<ProductId>(i % 10000);
    const CategoryId cat = static_cast<CategoryId>(pid % 20);
    const std::string url =
        MakeImageUrl(pid, static_cast<std::uint32_t>(i / 10000));
    const FeatureVector feature = embedder.Extract({url, pid, cat});
    index.AddImage(url, pid, cat, attrs, "", feature);
    seed_lists[quantizer->NearestCentroid(feature)]->Append(
        static_cast<LocalId>(i));
    seed_features.Append(feature);
  }
  ValidityBitmap valid(kImages);
  for (std::size_t i = 0; i < kImages; ++i) valid.Set(i, true);

  std::vector<FeatureVector> queries;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + static_cast<ProductId>(q % 10000);
    queries.push_back(
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 20), q));
  }

  // Probes precomputed once: the scan-stage rows compare scan against scan
  // with identical probe sets on both layouts.
  std::vector<std::vector<std::uint32_t>> probe_sets;
  probe_sets.reserve(queries.size());
  for (const FeatureVector& q : queries) {
    probe_sets.push_back(quantizer->NearestCentroids(
        FeatureView(q.data(), q.size()), kNprobe));
  }

  IvfRows result;
  const KernelTier restore = ActiveKernelTier();
  ForceKernelTier(KernelTier::kScalar);  // the seed's distance was scalar

  // Seed scan stage — the verbatim pre-refactor ScanList body (per-entry
  // callback -> validity -> At() -> wrapper distance -> Offer).
  const auto seed_stage_pass = [&] {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const FeatureView qview(queries[qi].data(), queries[qi].size());
      SeedTopK topk(kK);
      for (const std::uint32_t list : probe_sets[qi]) {
        seed_lists[list]->Scan([&](LocalId local) {
          if (!valid.Get(local)) return;
          topk.Offer(local,
                     L2SquaredDistance(qview, seed_features.At(local)));
        });
      }
      benchmark::DoNotOptimize(topk.topk.size());
    }
  };
  const auto contiguous_stage_pass = [&] {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      benchmark::DoNotOptimize(
          index.ScanProbes(queries[qi], kK, probe_sets[qi]));
    }
  };
  const double seed_stage_secs = TimePerCall(seed_stage_pass);
  result.seed_scalar_qps = kQueries / seed_stage_secs;
  result.rows.push_back({"scan_stage/seed_layout", "scalar", 0.0,
                         kQueries / seed_stage_secs, 0.0});

  // Seed full query: probe + scan (no materialize: the mirror carries no
  // forward index, which flatters the baseline — conservative for us).
  const double seed_full_secs = TimePerCall([&] {
    for (const FeatureVector& q : queries) {
      const FeatureView qview(q.data(), q.size());
      SeedTopK topk(kK);
      for (const std::uint32_t list : quantizer->NearestCentroids(q, kNprobe)) {
        seed_lists[list]->Scan([&](LocalId local) {
          if (!valid.Get(local)) return;
          topk.Offer(local,
                     L2SquaredDistance(qview, seed_features.At(local)));
        });
      }
      benchmark::DoNotOptimize(topk.topk.size());
    }
  });
  result.rows.push_back({"full_query/seed_layout", "scalar", 0.0,
                         kQueries / seed_full_secs, 0.0});

  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (!ForceKernelTier(tier)) continue;

    // Scan stage on the contiguous layout, same precomputed probes.
    const double stage_secs = TimePerCall(contiguous_stage_pass);
    result.rows.push_back({"scan_stage/contiguous", KernelTierName(tier), 0.0,
                           kQueries / stage_secs, 0.0});
    if (tier == KernelTier::kAvx2) result.avx2_qps = kQueries / stage_secs;

    // Full query through the public API (probe + scan + materialize).
    const double secs = TimePerCall([&] {
      for (const FeatureVector& q : queries) {
        benchmark::DoNotOptimize(index.Search(q, kK));
      }
    });
    result.rows.push_back({"full_query/contiguous", KernelTierName(tier), 0.0,
                           kQueries / secs, 0.0});

    // Batched: same queries in groups of 4 through SearchBatch (one
    // centroid sweep per group, shared lists scanned back to back).
    const double batch_secs = TimePerCall([&] {
      for (std::size_t q = 0; q + 4 <= queries.size(); q += 4) {
        std::vector<IvfBatchQuery> group(4);
        for (std::size_t j = 0; j < 4; ++j) {
          group[j].query =
              FeatureView(queries[q + j].data(), queries[q + j].size());
          group[j].k = kK;
        }
        benchmark::DoNotOptimize(index.SearchBatch(group));
      }
    });
    result.rows.push_back({"full_query/batch4", KernelTierName(tier), 0.0,
                           kQueries / batch_secs, 0.0});
  }
  // Headline ratio from paired windows: seed and AVX2 alternate within each
  // round, so a machine-load phase hits both arms of a ratio equally; the
  // median per-round ratio survives noise that row-at-a-time medians cannot
  // (a whole row's windows can land inside one slow phase).
  if (KernelsForTier(KernelTier::kAvx2) != nullptr) {
    std::array<double, 7> ratios;
    for (double& ratio : ratios) {
      ForceKernelTier(KernelTier::kScalar);
      const double seed_secs = SingleWindow(seed_stage_pass);
      ForceKernelTier(KernelTier::kAvx2);
      const double avx2_secs = SingleWindow(contiguous_stage_pass);
      ratio = seed_secs / avx2_secs;
    }
    std::sort(ratios.begin(), ratios.end());
    result.avx2_vs_seed_paired = ratios[ratios.size() / 2];
  }
  ForceKernelTier(restore);

  // Speedups: scan_stage rows against the seed scan stage (the number the
  // layout+kernel rebuild is accountable for); full_query rows against the
  // seed full query.
  const double seed_full_qps = kQueries / seed_full_secs;
  for (Row& row : result.rows) {
    const bool stage = row.kernel.rfind("scan_stage/", 0) == 0;
    row.speedup_vs_scalar = row.distances_per_s /
                            (stage ? result.seed_scalar_qps : seed_full_qps);
  }
  return result;
}

int Run() {
  bench::PrintHeader(
      "bench_micro_core --roofline: kernel dispatch tiers",
      "Section 3.2 single-searcher scan cost; SIMD rebuild of the compute "
      "path");
  std::printf("resolved dispatch tier: %s\n",
              KernelTierName(ActiveKernelTier()));

  std::vector<Row> kernel_rows;
  // (dim, rows, regime): testbed dim 64 both cache-resident (1 MB, the
  // per-searcher partition size of the paper's 20-way testbed) and spilled
  // (8 MB); paper dim 960 spilled (30 MB).
  struct Shape { std::size_t dim, rows; const char* regime; };
  for (const Shape shape : {Shape{64, 4096, "hot"}, Shape{64, 32768, "cold"},
                            Shape{960, 8192, "cold"}}) {
    for (Row& row : KernelRows(shape.dim, shape.rows, shape.regime)) {
      kernel_rows.push_back(std::move(row));
    }
  }
  AnnotateSpeedups(kernel_rows);
  PrintRows(kernel_rows);

  IvfRows ivf = IvfScanRows();
  std::printf("\nend-to-end single-searcher IVF scan (5k x 64d testbed "
              "partition, nprobe 8); distances/s column = QPS; scan_stage "
              "rows exclude probe+materialize on both layouts:\n");
  PrintRows(ivf.rows);
  if (ivf.avx2_vs_seed_paired > 0.0) {
    std::printf("\nAVX2 contiguous scan stage vs seed scalar scan stage "
                "(paired windows): %.2fx\n",
                ivf.avx2_vs_seed_paired);
  }

  bench::Json root = bench::Json::Object();
  root.Set("bench", "kernel_roofline");
  root.Set("resolved_tier", KernelTierName(ActiveKernelTier()));
  bench::Json rows_json = bench::Json::Array();
  for (const std::vector<Row>* group : {&kernel_rows, &ivf.rows}) {
    for (const Row& row : *group) {
      bench::Json j = bench::Json::Object();
      j.Set("kernel", row.kernel);
      j.Set("tier", row.tier);
      if (row.gb_per_s > 0.0) j.Set("gb_per_s", row.gb_per_s);
      j.Set("distances_per_s", row.distances_per_s);
      j.Set("speedup_vs_scalar", row.speedup_vs_scalar);
      rows_json.Push(std::move(j));
    }
  }
  root.Set("rows", std::move(rows_json));
  root.Set("ivf_avx2_vs_seed_scalar", ivf.avx2_vs_seed_paired);
  bench::WriteBenchJson("kernel_roofline", root);
  return 0;
}

}  // namespace
}  // namespace roofline
}  // namespace jdvs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--roofline") {
      return jdvs::roofline::Run();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

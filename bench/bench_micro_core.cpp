// Microbenchmarks (google-benchmark) for the substrate hot paths: distance
// kernels, top-k selection, bitmap, forward index, inverted list, histogram,
// coarse quantizer.
#include <benchmark/benchmark.h>

#include <memory>

#include "jdvs/jdvs.h"

namespace jdvs {
namespace {

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_L2SquaredDistance(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const FeatureVector a = RandomVector(rng, dim);
  const FeatureVector b = RandomVector(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SquaredDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SquaredDistance)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_L2SquaredBatch(benchmark::State& state) {
  constexpr std::size_t kDim = 64;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> base(kDim * count);
  for (float& x : base) x = static_cast<float>(rng.NextGaussian());
  const FeatureVector q = RandomVector(rng, kDim);
  std::vector<float> out(count);
  for (auto _ : state) {
    L2SquaredBatch(q, base.data(), kDim, count, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_L2SquaredBatch)->Arg(64)->Arg(1024);

void BM_TopKOffer(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> distances(100000);
  for (float& d : distances) d = static_cast<float>(rng.NextDouble());
  for (auto _ : state) {
    TopK topk(k);
    for (std::size_t i = 0; i < distances.size(); ++i) {
      topk.Offer(i, distances[i]);
    }
    benchmark::DoNotOptimize(topk.size());
  }
  state.SetItemsProcessed(state.iterations() * distances.size());
}
BENCHMARK(BM_TopKOffer)->Arg(10)->Arg(100);

void BM_BitmapSetGet(benchmark::State& state) {
  ValidityBitmap bitmap(1 << 20);
  Rng rng(4);
  std::size_t i = 0;
  for (auto _ : state) {
    bitmap.Set(i % (1 << 20), (i & 1) != 0);
    benchmark::DoNotOptimize(bitmap.Get((i * 7919) % (1 << 20)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapSetGet);

void BM_ForwardIndexAppend(benchmark::State& state) {
  const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 2};
  std::size_t i = 0;
  std::unique_ptr<ForwardIndex> index;
  for (auto _ : state) {
    if (i % 1000000 == 0) index = std::make_unique<ForwardIndex>();
    benchmark::DoNotOptimize(
        index->Append(i, i, 0, attrs, "jd://img/0/0", "jd://item/0"));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardIndexAppend);

void BM_ForwardIndexUpdateNumeric(benchmark::State& state) {
  ForwardIndex index;
  const ProductAttributes attrs{.sales = 5, .price_cents = 100, .praise = 2};
  for (int i = 0; i < 1024; ++i) {
    index.Append(i, i, 0, attrs, "u", "d");
  }
  std::size_t i = 0;
  for (auto _ : state) {
    index.UpdateNumeric(static_cast<LocalId>(i++ % 1024), attrs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardIndexUpdateNumeric);

void BM_InvertedListAppend(benchmark::State& state) {
  std::unique_ptr<InvertedList> list;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i % 1000000 == 0) list = std::make_unique<InvertedList>(1024);
    list->Append(static_cast<LocalId>(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedListAppend);

void BM_InvertedListScan(benchmark::State& state) {
  InvertedList list(1 << 16);
  for (LocalId i = 0; i < (1 << 16); ++i) list.Append(i);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    list.Scan([&sum](LocalId id) { sum += id; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_InvertedListScan);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.Record(static_cast<std::int64_t>(i++ * 37 % 1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_QuantizerNearestCentroid(benchmark::State& state) {
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kDim = 64;
  Rng rng(6);
  std::vector<float> centroids(clusters * kDim);
  for (float& x : centroids) x = static_cast<float>(rng.NextGaussian());
  const CoarseQuantizer quantizer(std::move(centroids), kDim);
  const FeatureVector q = RandomVector(rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantizer.NearestCentroid(q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantizerNearestCentroid)->Arg(64)->Arg(256);

void BM_SyntheticEmbedderExtract(benchmark::State& state) {
  const SyntheticEmbedder embedder(
      {.dim = 64, .num_categories = 50, .seed = 1});
  const ImageContent content{"jd://img/1/0", 1, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Extract(content));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticEmbedderExtract);

void BM_PqEncode(benchmark::State& state) {
  Rng rng(11);
  std::vector<FeatureVector> training;
  for (int i = 0; i < 1024; ++i) training.push_back(RandomVector(rng, 64));
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 256;
  const ProductQuantizer pq = ProductQuantizer::Train(training, pc);
  const FeatureVector v = RandomVector(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pq.Encode(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PqEncode);

void BM_PqAdcScan(benchmark::State& state) {
  // ADC distance over a block of codes: the IVF-PQ inner loop.
  Rng rng(12);
  std::vector<FeatureVector> training;
  for (int i = 0; i < 1024; ++i) training.push_back(RandomVector(rng, 64));
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 256;
  const ProductQuantizer pq = ProductQuantizer::Train(training, pc);
  CodeSet codes(pq.code_bytes());
  constexpr int kCodes = 4096;
  for (int i = 0; i < kCodes; ++i) {
    codes.Append(pq.Encode(RandomVector(rng, 64)));
  }
  const FeatureVector q = RandomVector(rng, 64);
  const auto table = pq.BuildDistanceTable(q);
  for (auto _ : state) {
    float sum = 0.f;
    for (int i = 0; i < kCodes; ++i) {
      sum += pq.DistanceWithTable(table, codes.At(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCodes);
}
BENCHMARK(BM_PqAdcScan);

void BM_BinaryHashHamming(benchmark::State& state) {
  Rng rng(13);
  constexpr std::size_t kWords = 2;  // 128 bits
  constexpr int kSignatures = 8192;
  std::vector<std::uint64_t> signatures(kSignatures * kWords);
  for (auto& w : signatures) w = rng.Next64();
  const std::uint64_t query[kWords] = {rng.Next64(), rng.Next64()};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int i = 0; i < kSignatures; ++i) {
      sum += BinaryHashIndex::HammingDistance(query,
                                              &signatures[i * kWords], kWords);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kSignatures);
}
BENCHMARK(BM_BinaryHashHamming);

void BM_QueryCacheLookupHit(benchmark::State& state) {
  QueryCache cache(64);
  Rng rng(14);
  const FeatureVector q = RandomVector(rng, 64);
  const auto key = cache.KeyFor(q, 10, 0);
  QueryResponse response;
  response.results.resize(10);
  cache.Insert(key, 0, response);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(key, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCacheLookupHit);

void BM_IvfSearch(benchmark::State& state) {
  const std::size_t nprobe = static_cast<std::size_t>(state.range(0));
  const SyntheticEmbedder embedder(
      {.dim = 64, .num_categories = 20, .seed = 9});
  Rng rng(9);
  std::vector<FeatureVector> sample;
  for (int i = 0; i < 1024; ++i) {
    sample.push_back(
        embedder.Extract({MakeImageUrl(i % 512, 0), static_cast<ProductId>(i % 512),
                          static_cast<CategoryId>(i % 20)}));
  }
  KMeansConfig kc;
  kc.num_clusters = 64;
  auto quantizer =
      std::make_shared<CoarseQuantizer>(TrainKMeans(sample, kc));
  IvfIndexConfig ic;
  ic.nprobe = nprobe;
  IvfIndex index(quantizer, ic);
  const ProductAttributes attrs{.sales = 1, .price_cents = 1, .praise = 1};
  for (int i = 0; i < 50000; ++i) {
    const ProductId pid = 1 + static_cast<ProductId>(i % 10000);
    const CategoryId cat = static_cast<CategoryId>(pid % 20);
    index.AddImage(MakeImageUrl(pid, static_cast<std::uint32_t>(i / 10000)),
                   pid, cat, attrs, "",
                   embedder.Extract({MakeImageUrl(pid, 9), pid, cat}));
  }
  std::size_t q = 0;
  for (auto _ : state) {
    const ProductId pid = 1 + static_cast<ProductId>(q % 10000);
    const auto query =
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 20), q);
    benchmark::DoNotOptimize(index.Search(query, 10));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(8);

}  // namespace
}  // namespace jdvs

// Figure 14 — "Real Search Examples on a Mobile Application".
//
// Paper: qualitative — three example query photos, each answered with the
// top-6 visually similar products in the app UI.
//
// Reproduction: three query photos of products from different categories run
// through the full blender -> broker -> searcher path on the testbed; the
// harness prints each result grid with ranking attributes, and verifies the
// qualitative property the figure demonstrates: the subject product ranks
// first and the results share its category.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Figure 14: real search examples (top-6 similar products)",
              "three example queries, each returning 6 visually similar "
              "products");

  TestbedOptions options;
  options.num_products = 5000;  // qualitative figure: a smaller testbed is fine
  options.num_partitions = 8;
  std::printf("building testbed...\n\n");
  auto cluster = BuildTestbed(options);

  int subject_top1 = 0;
  int category_pure = 0;
  const ProductId subjects[3] = {111, 2222, 4444};
  for (int i = 0; i < 3; ++i) {
    const auto record = cluster->catalog().Get(subjects[i]);
    if (!record) continue;
    QueryOptions qo;
    qo.k = 6;
    const QueryResponse response = cluster->Query(
        QueryImage{subjects[i], record->category,
                   static_cast<std::uint64_t>(31 + i)},
        qo);
    std::printf("search %d: photo of product %llu (category %u), %s\n", i + 1,
                (unsigned long long)subjects[i], record->category,
                FormatMicros(response.total_micros).c_str());
    std::printf("  %-4s %-9s %-9s %-9s %-9s %-10s\n", "rank", "product",
                "category", "distance", "sales", "price");
    int rank = 1;
    bool all_same_category = true;
    for (const RankedResult& r : response.results) {
      std::printf("  %-4d %-9llu %-9u %-9.3f %-9llu %-10.2f\n", rank++,
                  (unsigned long long)r.hit.product_id, r.hit.category,
                  r.hit.distance, (unsigned long long)r.hit.attributes.sales,
                  static_cast<double>(r.hit.attributes.price_cents) / 100.0);
      all_same_category &= (r.hit.category == record->category);
    }
    if (!response.results.empty() &&
        response.results[0].hit.product_id == subjects[i]) {
      ++subject_top1;
    }
    if (all_same_category) ++category_pure;
    std::printf("\n");
  }
  std::printf("qualitative check: subject ranked #1 in %d/3 searches; "
              "all-top-6-same-category in %d/3 (paper shows visually "
              "homogeneous result grids)\n",
              subject_top1, category_pure);
  cluster->Stop();
  return 0;
}

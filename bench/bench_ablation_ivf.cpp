// Ablation — IVF parameters (Sections 2.2 and 2.4).
//
// The paper's searchers scan the inverted list(s) most similar to the query;
// the number of lists N (k-means classes) and the number probed (nprobe)
// trade recall against scan cost. This harness sweeps both and reports
// recall@10 versus an exhaustive scan plus the per-query latency, exposing
// the operating point the production description ("identifies the cluster
// that is most similar ... scans the cluster's inverted list") sits at.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace jdvs;

struct Sweep {
  std::size_t num_lists;
  std::size_t nprobe;
  double recall;
  double mean_us;
};

}  // namespace

int main() {
  using namespace jdvs::bench;
  PrintHeader("Ablation: IVF recall/latency vs N (lists) and nprobe",
              "single-probe cluster scan is the paper's fast path; recall "
              "grows with nprobe at linear scan cost");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 29});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = 10000;
  cg.num_categories = 50;
  GenerateCatalog(cg, catalog, images, &features);

  const auto& clock = MonotonicClock::Instance();
  std::printf("%8s %8s %10s %12s\n", "N", "nprobe", "recall@10", "mean us");

  for (const std::size_t num_lists : {16u, 64u, 256u}) {
    FullIndexBuilderConfig fc;
    fc.kmeans.num_clusters = num_lists;
    fc.training_sample = 4096;
    fc.index_config.nprobe = 1;
    FullIndexBuilder builder(catalog, images, features, fc);
    auto quantizer = builder.TrainQuantizer();
    auto index = builder.Build(quantizer);

    // Ground truth per query from the exhaustive scan.
    constexpr int kQueries = 200;
    std::vector<std::vector<ImageId>> truth(kQueries);
    std::vector<FeatureVector> queries;
    Rng rng(4);
    for (int q = 0; q < kQueries; ++q) {
      const ProductId pid = 1 + rng.Below(10000);
      const auto record = catalog.Get(pid);
      queries.push_back(embedder.ExtractQuery(pid, record->category, q));
      for (const auto& hit : index->SearchExhaustive(queries.back(), 10)) {
        truth[q].push_back(hit.image_id);
      }
    }

    for (const std::size_t nprobe : {1u, 2u, 4u, 8u, 16u}) {
      if (nprobe > num_lists) continue;
      double recall_sum = 0.0;
      Histogram latency;
      for (int q = 0; q < kQueries; ++q) {
        const Micros start = clock.NowMicros();
        const auto hits = index->Search(queries[q], 10, nprobe);
        latency.Record(clock.NowMicros() - start);
        int found = 0;
        for (const ImageId id : truth[q]) {
          for (const auto& hit : hits) {
            if (hit.image_id == id) {
              ++found;
              break;
            }
          }
        }
        recall_sum += truth[q].empty()
                          ? 1.0
                          : static_cast<double>(found) /
                                static_cast<double>(truth[q].size());
      }
      std::printf("%8zu %8zu %10.3f %12.1f\n", num_lists, nprobe,
                  recall_sum / kQueries, latency.Mean());
    }
    std::printf("\n");
  }
  return 0;
}

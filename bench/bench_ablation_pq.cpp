// Ablation — product quantization (reference [19] of the paper).
//
// At the paper's 100-billion-image scale, raw float features are
// prohibitively large; PQ compression is what makes per-searcher in-memory
// indexes feasible. This harness compares the flat IVF index (raw floats)
// against IVF-PQ variants on the same data: bytes per vector, recall@10
// against exact search, and per-query latency — the memory/recall/latency
// triangle a deployment picks its operating point in.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jdvs;
  using namespace jdvs::bench;

  PrintHeader("Ablation: IVF (raw floats) vs IVF-PQ compression",
              "PQ makes the '100 billion images' scale feasible: 16-32x "
              "smaller vectors for a modest recall cost");

  const SyntheticEmbedder embedder({.dim = 64, .num_categories = 50,
                                    .seed = 41});
  constexpr std::size_t kProducts = 10000;
  constexpr std::size_t kImagesPerProduct = 5;

  // Shared training sample and coarse quantizer.
  std::vector<FeatureVector> training;
  Rng rng(1);
  for (int i = 0; i < 4096; ++i) {
    const ProductId pid = 1 + rng.Below(kProducts);
    training.push_back(embedder.Extract(
        {MakeImageUrl(pid, 0), pid, static_cast<CategoryId>(pid % 50)}));
  }
  KMeansConfig kc;
  kc.num_clusters = 64;
  auto quantizer = std::make_shared<CoarseQuantizer>(TrainKMeans(training, kc));

  // Flat IVF.
  IvfIndexConfig flat_config;
  flat_config.nprobe = 8;
  IvfIndex flat(quantizer, flat_config);

  // IVF-PQ variants: M=8 (8 B/vec) and M=16 (16 B/vec), plus M=16 with
  // exact re-ranking.
  const auto make_pq = [&](std::size_t m) {
    ProductQuantizerConfig pc;
    pc.num_subspaces = m;
    pc.codebook_size = 256;
    return std::make_shared<ProductQuantizer>(
        ProductQuantizer::Train(training, pc));
  };
  auto pq8 = make_pq(8);
  auto pq16 = make_pq(16);
  IvfPqIndexConfig pq_config;
  pq_config.nprobe = 8;
  IvfPqIndex ivfpq8(quantizer, pq8, pq_config);
  IvfPqIndex ivfpq16(quantizer, pq16, pq_config);
  IvfPqIndexConfig rerank_config = pq_config;
  rerank_config.keep_raw_vectors = true;
  rerank_config.rerank_candidates = 100;
  IvfPqIndex ivfpq16r(quantizer, pq16, rerank_config);

  std::printf("indexing %zu images...\n",
              kProducts * kImagesPerProduct);
  const ProductAttributes attrs{.sales = 3, .price_cents = 500, .praise = 1};
  for (ProductId pid = 1; pid <= kProducts; ++pid) {
    const auto cat = static_cast<CategoryId>(pid % 50);
    for (std::uint32_t k = 0; k < kImagesPerProduct; ++k) {
      const std::string url = MakeImageUrl(pid, k);
      const auto feature = embedder.Extract({url, pid, cat});
      flat.AddImage(url, pid, cat, attrs, "", feature);
      ivfpq8.AddImage(url, pid, cat, attrs, "", feature);
      ivfpq16.AddImage(url, pid, cat, attrs, "", feature);
      ivfpq16r.AddImage(url, pid, cat, attrs, "", feature);
    }
  }

  // Ground truth from the flat index's exhaustive scan.
  constexpr int kQueries = 200;
  std::vector<FeatureVector> queries;
  std::vector<std::vector<ImageId>> truth(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    const ProductId pid = 1 + rng.Below(kProducts);
    queries.push_back(
        embedder.ExtractQuery(pid, static_cast<CategoryId>(pid % 50), q));
    for (const auto& hit : flat.SearchExhaustive(queries.back(), 10)) {
      truth[q].push_back(hit.image_id);
    }
  }

  const auto& clock = MonotonicClock::Instance();
  const auto evaluate = [&](auto&& search, const char* label,
                            double bytes_per_vec) {
    double recall_sum = 0.0;
    Histogram latency;
    for (int q = 0; q < kQueries; ++q) {
      const Micros start = clock.NowMicros();
      const auto hits = search(queries[q]);
      latency.Record(clock.NowMicros() - start);
      int found = 0;
      for (const ImageId id : truth[q]) {
        for (const auto& hit : hits) {
          if (hit.image_id == id) {
            ++found;
            break;
          }
        }
      }
      recall_sum += static_cast<double>(found) / 10.0;
    }
    std::printf("%-24s %12.1f %12.3f %12.1f\n", label, bytes_per_vec,
                recall_sum / kQueries, latency.Mean());
  };

  std::printf("\n%-24s %12s %12s %12s\n", "index", "bytes/vec", "recall@10",
              "mean us");
  evaluate([&](const FeatureVector& q) { return flat.Search(q, 10); },
           "IVF flat (float32)", 64 * sizeof(float));
  evaluate([&](const FeatureVector& q) { return ivfpq8.Search(q, 10); },
           "IVF-PQ M=8", 8);
  evaluate([&](const FeatureVector& q) { return ivfpq16.Search(q, 10); },
           "IVF-PQ M=16", 16);
  evaluate([&](const FeatureVector& q) { return ivfpq16r.Search(q, 10); },
           "IVF-PQ M=16 + rerank", 16 + 64 * sizeof(float));

  const auto stats = ivfpq16.Stats();
  std::printf("\nIVF-PQ M=16 code store: %.1f MB for %zu vectors "
              "(flat floats would need %.1f MB)\n",
              static_cast<double>(stats.code_memory_bytes) / 1e6,
              stats.total_images,
              static_cast<double>(stats.total_images * 64 * sizeof(float)) /
                  1e6);
  return 0;
}

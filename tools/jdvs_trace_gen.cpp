// jdvs_trace_gen — generate a reproducible day-trace file.
//
//   jdvs_trace_gen --out=day.trace [--messages=50000] [--products=30000]
//                  [--off_market=0.65] [--categories=50] [--seed=31]
//
// The file replays with jdvs_trace_stats or ReplayTraceFile(), so ablation
// experiments can feed byte-identical update streams to different system
// configurations.
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: jdvs_trace_gen --out=FILE [--messages=N] "
                 "[--products=N] [--off_market=F] [--categories=N] "
                 "[--seed=N]\n");
    return 2;
  }

  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = static_cast<std::size_t>(flags.GetInt("products", 30000));
  cg.num_categories =
      static_cast<std::uint32_t>(flags.GetInt("categories", 50));
  cg.initial_off_market_fraction = flags.GetDouble("off_market", 0.65);
  cg.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 31)) ^ 0x11;
  GenerateCatalog(cg, catalog, images);

  DayTraceConfig tc;
  tc.total_messages =
      static_cast<std::uint64_t>(flags.GetInt("messages", 50000));
  tc.num_categories = cg.num_categories;
  tc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 31));

  try {
    TraceWriter writer(out);
    DayTraceGenerator generator(tc, catalog);
    const DayTraceStats stats =
        generator.Generate([&](const TraceEvent& e) { writer.Write(e); });
    writer.Close();
    std::printf("wrote %llu events to %s\n",
                (unsigned long long)stats.total, out.c_str());
    std::printf("  attribute updates: %llu\n",
                (unsigned long long)stats.attribute_updates);
    std::printf("  additions:         %llu (%llu relist, %llu new)\n",
                (unsigned long long)stats.additions,
                (unsigned long long)stats.relist_additions,
                (unsigned long long)stats.new_product_additions);
    std::printf("  deletions:         %llu\n",
                (unsigned long long)stats.deletions);
  } catch (const TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  for (const auto& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }
  return 0;
}

// jdvs_trace_stats — summarize a trace file (Table 1 / Figure 11(a) view).
//
//   jdvs_trace_stats day.trace
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: jdvs_trace_stats FILE\n");
    return 2;
  }

  HourlyUpdateSeries series;
  std::uint64_t total = 0;
  std::uint64_t by_type[3] = {0, 0, 0};
  std::uint64_t images = 0;
  try {
    ReplayTraceFile(flags.positional()[0], [&](const TraceEvent& event) {
      series.AddCount(event.hour, event.message.type);
      ++by_type[static_cast<int>(event.message.type)];
      images += event.message.image_urls.size();
      ++total;
    });
  } catch (const TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %llu events, %llu image references\n",
              flags.positional()[0].c_str(), (unsigned long long)total,
              (unsigned long long)images);
  for (int t = 0; t < 3; ++t) {
    std::printf("  %-18s %10llu (%.1f%%)\n",
                UpdateTypeName(static_cast<UpdateType>(t)),
                (unsigned long long)by_type[t],
                total == 0 ? 0.0 : 100.0 * by_type[t] / total);
  }
  std::printf("\n%5s %10s  %s\n", "hour", "events", "(bar)");
  std::uint64_t max_total = 1;
  for (int h = 0; h < 24; ++h) {
    max_total = std::max(max_total, series.TotalAt(h));
  }
  for (int h = 0; h < 24; ++h) {
    char bar[41] = {0};
    const int len = static_cast<int>(40.0 * series.TotalAt(h) /
                                     static_cast<double>(max_total));
    for (int i = 0; i < len; ++i) bar[i] = '#';
    std::printf("%4d: %10llu  %s\n", h,
                (unsigned long long)series.TotalAt(h), bar);
  }
  return 0;
}

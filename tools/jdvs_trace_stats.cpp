// jdvs_trace_stats — summarize a trace file (Table 1 / Figure 11(a) view),
// or, with --critical-path, attribute query latency to pipeline stages on a
// small live cluster: every query is traced, each span tree's critical path
// is folded into jdvs_critical_path_micros{stage=...}, and the per-stage
// table answers "where does the wall time actually go".
//
//   jdvs_trace_stats FILE
//   jdvs_trace_stats --critical-path [--queries=N] [--partitions=N]
//                    [--brokers=N] [--seed=N]
#include <cstdio>

#include "jdvs/jdvs.h"

namespace {

int RunCriticalPath(const jdvs::Flags& flags) {
  using namespace jdvs;
  const std::size_t num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 50));

  ClusterConfig config;
  config.num_partitions =
      static_cast<std::size_t>(flags.GetInt("partitions", 4));
  config.num_brokers = static_cast<std::size_t>(flags.GetInt("brokers", 2));
  config.num_blenders = 1;
  config.hop_latency = {.base_micros = 150, .jitter_median_micros = 100,
                        .sigma = 0.6};
  config.embedder = {.dim = 32, .num_categories = 8,
                     .seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7))};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.ivf.nprobe = 4;
  config.trace_sample_every = 1;  // every query contributes a span tree

  std::printf("building %zu-partition / %zu-broker cluster...\n",
              config.num_partitions, config.num_brokers);
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 400;
  cg.num_categories = 8;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  std::printf("running %zu queries (all traced)...\n\n", num_queries);
  std::uint64_t last_trace = 0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const ProductId product = 1 + static_cast<ProductId>(i * 37) % 400;
    const auto record = cluster.catalog().Get(product);
    const QueryResponse response =
        cluster.Query(QueryImage{product, record->category, i + 1},
                      QueryOptions{.k = 5});
    if (response.trace_id != 0) last_trace = response.trace_id;
  }

  std::printf("---- per-stage critical path over %zu queries ----\n%s\n",
              num_queries,
              obs::RenderCriticalPathTable(cluster.registry()).c_str());

  if (last_trace != 0) {
    const obs::CriticalPathReport report =
        obs::ComputeCriticalPath(cluster.trace_sink().SpansFor(last_trace));
    std::printf("last query (trace %016llx): %s\n",
                (unsigned long long)last_trace, report.Summary(3).c_str());
  }
  cluster.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  if (flags.GetBool("critical-path", false)) {
    const int rc = RunCriticalPath(flags);
    for (const std::string& key : flags.UnusedKeys()) {
      std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
    }
    return rc;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: jdvs_trace_stats FILE\n"
                 "       jdvs_trace_stats --critical-path [--queries=N]\n");
    return 2;
  }

  HourlyUpdateSeries series;
  std::uint64_t total = 0;
  std::uint64_t by_type[3] = {0, 0, 0};
  std::uint64_t images = 0;
  try {
    ReplayTraceFile(flags.positional()[0], [&](const TraceEvent& event) {
      series.AddCount(event.hour, event.message.type);
      ++by_type[static_cast<int>(event.message.type)];
      images += event.message.image_urls.size();
      ++total;
    });
  } catch (const TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %llu events, %llu image references\n",
              flags.positional()[0].c_str(), (unsigned long long)total,
              (unsigned long long)images);
  for (int t = 0; t < 3; ++t) {
    std::printf("  %-18s %10llu (%.1f%%)\n",
                UpdateTypeName(static_cast<UpdateType>(t)),
                (unsigned long long)by_type[t],
                total == 0 ? 0.0 : 100.0 * by_type[t] / total);
  }
  std::printf("\n%5s %10s  %s\n", "hour", "events", "(bar)");
  std::uint64_t max_total = 1;
  for (int h = 0; h < 24; ++h) {
    max_total = std::max(max_total, series.TotalAt(h));
  }
  for (int h = 0; h < 24; ++h) {
    char bar[41] = {0};
    const int len = static_cast<int>(40.0 * series.TotalAt(h) /
                                     static_cast<double>(max_total));
    for (int i = 0; i < len; ++i) bar[i] = '#';
    std::printf("%4d: %10llu  %s\n", h,
                (unsigned long long)series.TotalAt(h), bar);
  }
  return 0;
}

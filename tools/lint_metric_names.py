#!/usr/bin/env python3
"""Lint jdvs_* metric families for kind conflicts.

The registry keys instruments by (family, labels), but the *kind* (counter /
gauge / histogram) is fixed per family in the Prometheus exposition: one
`# TYPE fam kind` line covers every series of `fam`. Registering the same
family name through two different Get/Find kinds therefore silently splits a
family across types and corrupts the exposition. This lint scans the sources
for `GetCounter("jdvs_...")` / `GetGauge(...)` / `GetHistogram(...)` (and
the Find* variants) call sites, maps each jdvs_* family to the set of kinds
it is used with, and fails when any family is claimed by more than one kind.

Usage: python3 tools/lint_metric_names.py [repo_root]
Exit status: 0 clean, 1 on conflict.
"""

import os
import re
import sys
from collections import defaultdict

# A call site is "<Get|Find><Kind>(" followed, within the same statement, by
# a "jdvs_..." string literal — the lazy [^;]{0,200}? hop skips wrappers like
# obs::Labeled("jdvs_...", ...) without crossing into the next statement.
CALL_RE = re.compile(
    r'\b(?:Get|Find)(Counter|Gauge|Histogram)\s*\('
    r'[^;]{0,200}?"(jdvs_[a-zA-Z0-9_]*)"'
)

SCAN_DIRS = ("src", "tools", "bench", "tests")
EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")


def scan(root):
    families = defaultdict(lambda: defaultdict(list))  # family -> kind -> sites
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for filename in filenames:
                if not filename.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8", errors="replace") as f:
                    text = f.read()
                for match in CALL_RE.finditer(text):
                    kind, family = match.group(1), match.group(2)
                    line = text.count("\n", 0, match.start()) + 1
                    rel = os.path.relpath(path, root)
                    families[family][kind.lower()].append(f"{rel}:{line}")
    return families


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    families = scan(root)
    if not families:
        print("lint_metric_names: no jdvs_* call sites found", file=sys.stderr)
        return 1
    conflicts = {f: kinds for f, kinds in families.items() if len(kinds) > 1}
    for family in sorted(conflicts):
        kinds = conflicts[family]
        print(f"CONFLICT: {family} registered as "
              f"{' and '.join(sorted(kinds))}:")
        for kind in sorted(kinds):
            for site in kinds[kind]:
                print(f"  {kind:<9} {site}")
    total = len(families)
    if conflicts:
        print(f"\n{len(conflicts)} conflicting famil"
              f"{'y' if len(conflicts) == 1 else 'ies'} out of {total}")
        return 1
    print(f"lint_metric_names: {total} jdvs_* families, no kind conflicts")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// jdvs_trace_dump — end-to-end observability demo on a small live cluster.
//
// Builds a miniature testbed with tracing on (every query and update
// sampled), runs a handful of queries and product updates through it, then
// dumps each query's rendered span tree (blender -> broker -> searcher),
// the slow-query log, and the full Prometheus exposition of the cluster's
// metrics registry.
//
//   jdvs_trace_dump [--queries=N] [--updates=N] [--partitions=N]
//                   [--brokers=N] [--k=N] [--no-metrics] [--seed=N]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  const std::size_t num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 5));
  const std::size_t num_updates =
      static_cast<std::size_t>(flags.GetInt("updates", 3));
  const bool print_metrics = !flags.GetBool("no-metrics", false);

  ClusterConfig config;
  config.num_partitions = static_cast<std::size_t>(flags.GetInt("partitions", 4));
  config.num_brokers = static_cast<std::size_t>(flags.GetInt("brokers", 2));
  config.num_blenders = 1;
  config.hop_latency = {.base_micros = 150, .jitter_median_micros = 100,
                        .sigma = 0.6};
  config.embedder = {.dim = 32, .num_categories = 8,
                     .seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7))};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.ivf.nprobe = 4;
  config.trace_sample_every = 1;        // trace everything
  config.slow_query_threshold_micros = 0;  // every trace lands in the slow log

  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }

  std::printf("building %zu-partition / %zu-broker cluster...\n",
              config.num_partitions, config.num_brokers);
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 400;
  cg.num_categories = 8;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  std::printf("running %zu queries and %zu updates (all traced)...\n\n",
              num_queries, num_updates);
  const std::size_t k = static_cast<std::size_t>(flags.GetInt("k", 5));
  std::vector<std::uint64_t> trace_ids;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const ProductId product = 1 + static_cast<ProductId>(i * 37) % 400;
    const auto record = cluster.catalog().Get(product);
    const QueryResponse response =
        cluster.Query(QueryImage{product, record->category, i + 1},
                      QueryOptions{.k = k});
    std::printf("query %zu: product %llu, %zu results, %lld us, trace %016llx\n",
                i, (unsigned long long)product, response.results.size(),
                (long long)response.total_micros,
                (unsigned long long)response.trace_id);
    trace_ids.push_back(response.trace_id);
  }
  for (std::size_t i = 0; i < num_updates; ++i) {
    ProductUpdateMessage update;
    update.type = UpdateType::kAddProduct;
    update.product_id = 10'000 + i;
    update.category_id = static_cast<CategoryId>(i % 8);
    update.attributes = {.sales = 5, .price_cents = 1999, .praise = 3};
    update.image_urls.push_back(MakeImageUrl(update.product_id, 0));
    cluster.PublishUpdate(std::move(update));
  }
  cluster.WaitForUpdatesDrained();

  std::printf("\n---- query span trees ----\n");
  for (const std::uint64_t trace_id : trace_ids) {
    std::printf("\n%s", cluster.trace_sink().Render(trace_id).c_str());
  }

  std::printf("\n---- slow-query log (worst %zu over %lld us) ----\n",
              cluster.slow_log().size(),
              (long long)cluster.slow_log().threshold_micros());
  std::printf("%s", cluster.slow_log().Render().c_str());

  if (print_metrics) {
    std::printf("\n---- metrics exposition ----\n%s",
                cluster.registry().ExpositionText().c_str());
  }
  cluster.Stop();
  return 0;
}

// jdvs_statusz — render the introspection triad over a small live cluster.
//
// Builds a miniature testbed with the full diagnosis layer on (tracing,
// flight recorder, critical-path aggregation), drives some traffic, then
// prints the statusz / tracez / metricz pages. With --limp, one searcher
// replica gets injected latency above the SLO so the pages show the layer
// catching a real anomaly: the flight recorder dumps, the critical path
// points at the slow scan, and the latency histogram carries an exemplar
// into the offending trace.
//
//   jdvs_statusz [--queries=N] [--partitions=N] [--brokers=N] [--limp]
//                [--limp-micros=N] [--slo-micros=N] [--no-metrics]
//                [--seed=N]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  const std::size_t num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 20));
  const bool limp = flags.GetBool("limp", false);
  const Micros limp_micros = flags.GetInt("limp-micros", 40'000);
  const bool print_metrics = !flags.GetBool("no-metrics", false);

  FaultInjector injector;
  ClusterConfig config;
  config.num_partitions =
      static_cast<std::size_t>(flags.GetInt("partitions", 4));
  config.num_brokers = static_cast<std::size_t>(flags.GetInt("brokers", 2));
  config.num_blenders = 1;
  config.hop_latency = {.base_micros = 150, .jitter_median_micros = 100,
                        .sigma = 0.6};
  config.embedder = {.dim = 32, .num_categories = 8,
                     .seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7))};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.extraction = {.mean_micros = 0};
  config.kmeans.num_clusters = 8;
  config.ivf.nprobe = 4;
  config.trace_sample_every = 1;  // trace everything, so tracez has trees
  config.slow_query_threshold_micros = 25'000;
  config.flight_slo_micros = flags.GetInt("slo-micros", 20'000);
  config.fault_injector = &injector;

  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }

  std::printf("building %zu-partition / %zu-broker cluster...\n",
              config.num_partitions, config.num_brokers);
  VisualSearchCluster cluster(config);
  CatalogGenConfig cg;
  cg.num_products = 400;
  cg.num_categories = 8;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  if (limp) {
    // Gray failure: partition 0's replica answers, just slowly — and slower
    // than the flight SLO, so the recorder should freeze a dump.
    injector.SetNode("searcher-p0-r0",
                     LinkFaults{.added_latency_micros = limp_micros});
    std::printf("injected +%lldus latency into searcher-p0-r0\n",
                (long long)limp_micros);
  }

  std::printf("running %zu queries...\n\n", num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    const ProductId product = 1 + static_cast<ProductId>(i * 37) % 400;
    const auto record = cluster.catalog().Get(product);
    cluster.Query(QueryImage{product, record->category, i + 1},
                  QueryOptions{.k = 5});
  }
  cluster.SamplePoolGauges();

  obs::Introspection& pages = cluster.introspection();
  std::printf("%s\n", pages.StatusZ().c_str());
  std::printf("%s\n", pages.TraceZ().c_str());
  if (cluster.critical_paths() != nullptr) {
    std::printf("---- critical path (aggregated) ----\n%s\n",
                obs::RenderCriticalPathTable(cluster.registry()).c_str());
  }
  if (print_metrics) std::printf("%s", pages.MetricZ().c_str());
  cluster.Stop();
  return 0;
}

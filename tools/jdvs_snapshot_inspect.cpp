// jdvs_snapshot_inspect — load an index snapshot and print its contents
// summary plus a content digest (replica verification).
//
//   jdvs_snapshot_inspect index.snap [--pq]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: jdvs_snapshot_inspect FILE [--pq]\n");
    return 2;
  }
  const std::string& path = flags.positional()[0];

  try {
    if (flags.GetBool("pq", false)) {
      const auto index = LoadIvfPqSnapshot(path);
      const IvfPqStats stats = index->Stats();
      std::printf("%s: IVF-PQ snapshot\n", path.c_str());
      std::printf("  dim:            %zu\n", index->dim());
      std::printf("  entries:        %zu (%zu valid)\n", stats.total_images,
                  stats.valid_images);
      std::printf("  inverted lists: %zu\n", stats.num_lists);
      std::printf("  code bytes/vec: %zu (%.1f MB codes, %.1f MB raw)\n",
                  stats.code_bytes_per_vector,
                  static_cast<double>(stats.code_memory_bytes) / 1e6,
                  static_cast<double>(stats.raw_memory_bytes) / 1e6);
      std::printf("  PQ: M=%zu, Ks=%zu\n", index->pq().num_subspaces(),
                  index->pq().codebook_size());
    } else {
      std::uint64_t update_hwm = 0;
      const auto index =
          LoadIndexSnapshot(path, InlineCopyExecutor(), &update_hwm);
      const IvfIndexStats stats = index->Stats();
      const IndexDigest digest = ComputeIndexDigest(*index);
      std::printf("%s: flat IVF snapshot\n", path.c_str());
      std::printf("  update hwm:     %llu%s\n",
                  (unsigned long long)update_hwm,
                  update_hwm == 0 ? " (none / v1 snapshot)" : "");
      std::printf("  dim:            %zu\n", index->dim());
      std::printf("  entries:        %zu (%zu valid)\n", stats.total_images,
                  stats.valid_images);
      std::printf("  inverted lists: %zu (largest %zu)\n", stats.num_lists,
                  stats.largest_list);
      std::printf("  nprobe:         %zu\n", index->config().nprobe);
      std::printf("  var buffer:     %.1f MB\n",
                  static_cast<double>(stats.buffer_bytes) / 1e6);
      std::printf("  content digest: %016llx over %llu entries\n",
                  (unsigned long long)digest.content_hash,
                  (unsigned long long)digest.entries);
    }
  } catch (const SnapshotError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

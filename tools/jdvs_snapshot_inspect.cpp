// jdvs_snapshot_inspect — load an index snapshot and print its contents
// summary plus a content digest (replica verification).
//
//   jdvs_snapshot_inspect index.snap [--pq] [--verify]
//
// --verify (tiered v4/v5 files) recomputes every payload segment's CRC32C
// against the directory and reports per-list status; exits nonzero on any
// mismatch, so a deploy pipeline can gate on it.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "jdvs/jdvs.h"

namespace {

// Reads the common snapshot prefix; returns false when the file is too short
// or not a JDVS snapshot (the normal loaders then produce the real error).
bool PeekSnapshotVersion(const std::string& path, std::uint32_t* version) {
  std::ifstream is(path, std::ios::binary);
  std::uint64_t magic = 0;
  std::uint32_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&magic), sizeof(magic))) return false;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) return false;
  if (magic != 0x4A44565349445831ULL) return false;
  *version = v;
  return true;
}

// v4 tiered snapshots get a layout-aware report: per-list payload directory,
// segment alignment check, and the resident(head)-vs-disk(payload) byte
// split. v1/v2/v3 keep the classic report byte for byte.
// Offline integrity walk (no mapping, no load): recompute each segment's
// CRC32C through buffered reads and compare against the directory.
int VerifyTiered(const std::string& path) {
  using namespace jdvs;
  const TieredDirectoryInfo dir = ReadTieredDirectory(path);
  std::printf("%s: tiered snapshot v%u, %zu payload segments\n", path.c_str(),
              dir.version, dir.segments.size());
  if (!dir.has_checksums) {
    std::printf("  no checksums in directory (v4 file) — nothing to verify\n");
    return 0;
  }
  const TieredVerifyResult result = VerifyTieredSnapshot(path);
  std::size_t empty = 0;
  for (const TieredSegmentInfo& seg : dir.segments) {
    if (seg.bytes == 0) ++empty;
  }
  for (const std::uint32_t list : result.corrupt_lists) {
    const TieredSegmentInfo& seg = dir.segments[list];
    std::printf("  list %u: CORRUPT (%llu bytes at offset %llu, expected "
                "crc32c %08x)\n",
                list, (unsigned long long)seg.bytes,
                (unsigned long long)seg.offset, seg.crc32c);
  }
  std::printf("  verified %zu segments (%zu empty): %zu corrupt\n",
              result.checked, empty, result.corrupt_lists.size());
  if (!result.corrupt_lists.empty()) {
    std::printf("  INTEGRITY FAILURE — do not deploy this file\n");
    return 1;
  }
  std::printf("  integrity ok\n");
  return 0;
}

int InspectTiered(const std::string& path, std::uint32_t version) {
  using namespace jdvs;
  std::uint64_t update_hwm = 0;
  TieredStoreConfig tier_config;
  tier_config.drop_pages_on_load = false;  // inspection, not serving
  const auto index =
      LoadTieredSnapshot(path, tier_config, InlineCopyExecutor(), &update_hwm);
  const auto& store = *index->tiered_store();
  const IvfIndexStats stats = index->Stats();
  const IndexDigest digest = ComputeIndexDigest(*index);

  std::uint64_t payload_bytes = 0;
  std::uint64_t largest_bytes = 0;
  std::uint64_t payload_base = store.file().size();
  std::size_t nonempty = 0;
  bool aligned = true;
  for (std::size_t i = 0; i < store.num_lists(); ++i) {
    const auto extent = store.extent(i);
    if (extent.bytes == 0) continue;
    ++nonempty;
    payload_bytes += extent.bytes;
    largest_bytes = std::max(largest_bytes, extent.bytes);
    payload_base = std::min(payload_base, extent.offset);
    if (extent.offset % 64 != 0) aligned = false;
  }
  // head = everything before the first payload segment; the id/norm arrays
  // are re-materialized in RAM next to it at 8 bytes per entry.
  const std::uint64_t head_bytes = payload_base;
  const std::uint64_t ram_arrays = stats.total_images * 8ULL;

  std::printf("%s: flat IVF snapshot (v%u tiered%s)\n", path.c_str(), version,
              store.has_checksums() ? ", checksummed" : "");
  std::printf("  update hwm:     %llu\n", (unsigned long long)update_hwm);
  std::printf("  dim:            %zu\n", index->dim());
  std::printf("  entries:        %zu (%zu valid)\n", stats.total_images,
              stats.valid_images);
  std::printf("  inverted lists: %zu (largest %zu)\n", stats.num_lists,
              stats.largest_list);
  std::printf("  nprobe:         %zu\n", index->config().nprobe);
  std::printf("  payload dir:    %zu segments (%zu empty), largest %.1f KB\n",
              nonempty, store.num_lists() - nonempty,
              static_cast<double>(largest_bytes) / 1e3);
  std::printf("  alignment:      64-byte segment alignment %s\n",
              aligned ? "ok" : "VIOLATED");
  std::printf("  resident head:  %.1f MB on-disk head + %.1f MB id/norm arrays\n",
              static_cast<double>(head_bytes) / 1e6,
              static_cast<double>(ram_arrays) / 1e6);
  std::printf("  disk payload:   %.1f MB demand-paged (file %.1f MB)\n",
              static_cast<double>(payload_bytes) / 1e6,
              static_cast<double>(store.file().size()) / 1e6);
  std::printf("  content digest: %016llx over %llu entries\n",
              (unsigned long long)digest.content_hash,
              (unsigned long long)digest.entries);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: jdvs_snapshot_inspect FILE [--pq]\n");
    return 2;
  }
  const std::string& path = flags.positional()[0];

  try {
    if (flags.GetBool("pq", false)) {
      const auto index = LoadIvfPqSnapshot(path);
      const IvfPqStats stats = index->Stats();
      std::printf("%s: IVF-PQ snapshot\n", path.c_str());
      std::printf("  dim:            %zu\n", index->dim());
      std::printf("  entries:        %zu (%zu valid)\n", stats.total_images,
                  stats.valid_images);
      std::printf("  inverted lists: %zu\n", stats.num_lists);
      std::printf("  code bytes/vec: %zu (%.1f MB codes, %.1f MB raw)\n",
                  stats.code_bytes_per_vector,
                  static_cast<double>(stats.code_memory_bytes) / 1e6,
                  static_cast<double>(stats.raw_memory_bytes) / 1e6);
      std::printf("  PQ: M=%zu, Ks=%zu\n", index->pq().num_subspaces(),
                  index->pq().codebook_size());
    } else if (std::uint32_t version = 0;
               PeekSnapshotVersion(path, &version) &&
               (version == 4 || version == 5)) {
      if (flags.GetBool("verify", false)) return VerifyTiered(path);
      return InspectTiered(path, version);
    } else if (flags.GetBool("verify", false)) {
      std::fprintf(stderr, "error: --verify requires a tiered (v4/v5) file\n");
      return 2;
    } else {
      std::uint64_t update_hwm = 0;
      const auto index =
          LoadIndexSnapshot(path, InlineCopyExecutor(), &update_hwm);
      const IvfIndexStats stats = index->Stats();
      const IndexDigest digest = ComputeIndexDigest(*index);
      std::printf("%s: flat IVF snapshot\n", path.c_str());
      std::printf("  update hwm:     %llu%s\n",
                  (unsigned long long)update_hwm,
                  update_hwm == 0 ? " (none / v1 snapshot)" : "");
      std::printf("  dim:            %zu\n", index->dim());
      std::printf("  entries:        %zu (%zu valid)\n", stats.total_images,
                  stats.valid_images);
      std::printf("  inverted lists: %zu (largest %zu)\n", stats.num_lists,
                  stats.largest_list);
      std::printf("  nprobe:         %zu\n", index->config().nprobe);
      std::printf("  var buffer:     %.1f MB\n",
                  static_cast<double>(stats.buffer_bytes) / 1e6);
      std::printf("  content digest: %016llx over %llu entries\n",
                  (unsigned long long)digest.content_hash,
                  (unsigned long long)digest.entries);
    }
  } catch (const SnapshotError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// Figure 14 analogue: three example visual searches, each printing the top-6
// similar products with their ranking attributes — what the JD mobile app
// renders as a result grid.
//
//   ./search_examples
#include <cstdio>

#include "jdvs/jdvs.h"

int main() {
  using namespace jdvs;

  ClusterConfig config;
  config.num_partitions = 4;
  config.embedder = {.dim = 32, .num_categories = 6, .seed = 21};
  config.detector = {.num_categories = 6, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 12;
  config.ivf.nprobe = 4;
  config.default_k = 6;  // the app shows the top 6 similar products
  VisualSearchCluster cluster(config);

  CatalogGenConfig cg;
  cg.num_products = 2000;
  cg.num_categories = 6;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  const char* kCategoryNames[6] = {"dresses",   "sneakers", "handsets",
                                   "backpacks", "watches",  "headphones"};
  // Three user photos: a dress, a sneaker, a handset.
  const ProductId subjects[3] = {101, 202, 303};

  for (int i = 0; i < 3; ++i) {
    const auto record = cluster.catalog().Get(subjects[i]);
    if (!record) continue;
    const QueryImage photo{subjects[i], record->category,
                           static_cast<std::uint64_t>(1000 + i)};
    const QueryResponse response = cluster.Query(photo);

    std::printf("=== search %d: photo of product %llu (%s) — %s, detected %s\n",
                i + 1, (unsigned long long)subjects[i],
                kCategoryNames[record->category % 6],
                FormatMicros(response.total_micros).c_str(),
                kCategoryNames[response.detected_category % 6]);
    std::printf("    %-4s %-8s %-10s %-8s %-8s %-8s %s\n", "rank", "product",
                "category", "dist", "sales", "price", "image");
    int rank = 1;
    for (const RankedResult& r : response.results) {
      std::printf("    %-4d %-8llu %-10s %-8.3f %-8llu %-8.2f %s\n", rank++,
                  (unsigned long long)r.hit.product_id,
                  kCategoryNames[r.hit.category % 6], r.hit.distance,
                  (unsigned long long)r.hit.attributes.sales,
                  static_cast<double>(r.hit.attributes.price_cents) / 100.0,
                  r.hit.image_url.c_str());
    }
    std::printf("\n");
  }

  cluster.Stop();
  return 0;
}

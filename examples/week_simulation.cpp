// A compressed week of operation: seven diurnal days of real-time updates
// with live queries, an end-of-day full indexing cycle after each day
// (Section 2.2: "full indexing is performed periodically"), and a weekly
// summary. Demonstrates that data freshness and retrieval quality hold as
// the catalog churns day after day.
//
//   ./week_simulation [--products=2000] [--messages_per_day=3000]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);

  ClusterConfig config;
  config.num_partitions = 4;
  config.num_brokers = 2;
  config.num_blenders = 2;
  config.embedder = {.dim = 32, .num_categories = 10, .seed = 14};
  config.detector = {.num_categories = 10, .top1_accuracy = 0.95};
  config.kmeans.num_clusters = 20;
  config.ivf.nprobe = 5;
  // Cheap simulated CNN so a full week replays in seconds.
  config.extraction = {.mean_micros = 1000};
  VisualSearchCluster cluster(config);

  CatalogGenConfig cg;
  cg.num_products = static_cast<std::size_t>(flags.GetInt("products", 2000));
  cg.num_categories = 10;
  cg.initial_off_market_fraction = 0.3;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  const auto messages_per_day =
      static_cast<std::uint64_t>(flags.GetInt("messages_per_day", 3000));
  std::printf("week simulation: %zu products, %llu updates/day\n\n",
              cg.num_products, (unsigned long long)messages_per_day);
  std::printf("%4s %9s %9s %9s %9s %10s %9s %10s\n", "day", "updates",
              "imgs+", "relist", "extract", "valid", "hit rate", "rebuild");

  RealTimeIndexerCounters previous;
  for (int day = 1; day <= 7; ++day) {
    DayTraceConfig tc;
    tc.total_messages = messages_per_day;
    tc.num_categories = 10;
    tc.seed = 31 + static_cast<std::uint64_t>(day);  // a different day
    DayTraceGenerator generator(tc, cluster.catalog());
    generator.Generate(
        [&](const TraceEvent& e) { cluster.PublishUpdate(e.message); });
    if (!cluster.WaitForUpdatesDrained(120'000'000)) {
      std::printf("day %d: update stream did not drain!\n", day);
    }

    // Live queries against the freshly updated catalog.
    QueryWorkloadConfig qc;
    qc.num_threads = 4;
    qc.queries_per_thread = 50;
    qc.seed = 100 + static_cast<std::uint64_t>(day);
    QueryClient client(cluster, qc);
    const QueryWorkloadResult queries = client.Run();

    const RealTimeIndexerCounters now = cluster.TotalUpdateCounters();
    RealTimeIndexerCounters delta = now;
    // Day-over-day delta.
    delta.attribute_updates -= previous.attribute_updates;
    delta.additions -= previous.additions;
    delta.deletions -= previous.deletions;
    delta.images_added -= previous.images_added;
    delta.images_revalidated -= previous.images_revalidated;
    delta.features_extracted -= previous.features_extracted;
    previous = now;

    // End-of-day full indexing cycle (weekly in production; daily here to
    // exercise the pipeline).
    const Stopwatch watch(MonotonicClock::Instance());
    cluster.RunFullIndexingCycle();
    const Micros rebuild = watch.ElapsedMicros();

    // Counters aggregate over every searcher (each consumes the full
    // stream); divide back to actual message count.
    std::printf("%4d %9llu %9llu %9llu %9llu %10zu %9.2f %10s\n", day,
                (unsigned long long)(delta.TotalMessages() /
                                     cluster.num_searchers()),
                (unsigned long long)delta.images_added,
                (unsigned long long)delta.images_revalidated,
                (unsigned long long)delta.features_extracted,
                cluster.AggregateIndexStats().valid_images,
                queries.subject_hit_rate, FormatMicros(rebuild).c_str());
  }

  std::printf("\n%s", cluster.StatusReport().c_str());
  cluster.Stop();
  return 0;
}

// A compressed "day at JD": replay a diurnal update trace (Table 1 mix,
// Figure 11(a) shape) against a live cluster while queries run, then perform
// the end-of-day full indexing cycle (Figure 2).
//
//   ./ecommerce_day [--products=4000] [--messages=20000] [--partitions=8]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);

  ClusterConfig config;
  config.num_partitions =
      static_cast<std::size_t>(flags.GetInt("partitions", 8));
  config.num_brokers = 2;
  config.num_blenders = 2;
  config.embedder = {.dim = 32, .num_categories = 12, .seed = 9};
  config.detector = {.num_categories = 12, .top1_accuracy = 0.95};
  config.kmeans.num_clusters = 24;
  config.ivf.nprobe = 6;
  // Keep the simulated CNN cheap so the compressed day replays in seconds;
  // the latency-focused benches use realistic extraction costs instead.
  config.extraction = {.mean_micros = 1000};
  VisualSearchCluster cluster(config);

  // Catalog with a 30% off-market re-listing pool (prewarmed features).
  CatalogGenConfig cg;
  cg.num_products = static_cast<std::size_t>(flags.GetInt("products", 4000));
  cg.num_categories = 12;
  cg.initial_off_market_fraction = 0.3;
  const CatalogGenStats gen = GenerateCatalog(
      cg, cluster.catalog(), cluster.image_store(), &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();
  std::printf("start of day: %llu products (%llu on market), %zu images indexed\n",
              (unsigned long long)gen.products,
              (unsigned long long)gen.on_market_products,
              cluster.AggregateIndexStats().valid_images);

  // Replay a 20k-message day (Table 1 mix) through the message queue.
  DayTraceConfig trace_config;
  trace_config.total_messages =
      static_cast<std::uint64_t>(flags.GetInt("messages", 20000));
  trace_config.num_categories = 12;
  DayTraceGenerator generator(trace_config, cluster.catalog());
  HourlyUpdateSeries series;
  const DayTraceStats trace = generator.Generate([&](const TraceEvent& event) {
    series.AddCount(event.hour, event.message.type);
    cluster.PublishUpdate(event.message);
  });
  if (!cluster.WaitForUpdatesDrained(120'000'000)) {
    std::printf("warning: update stream not fully drained\n");
  }

  std::printf("\nday trace (Table 1 mix): total=%llu updates=%llu "
              "additions=%llu (relist %llu, new %llu) deletions=%llu\n",
              (unsigned long long)trace.total,
              (unsigned long long)trace.attribute_updates,
              (unsigned long long)trace.additions,
              (unsigned long long)trace.relist_additions,
              (unsigned long long)trace.new_product_additions,
              (unsigned long long)trace.deletions);

  std::printf("\nhourly update counts (Figure 11(a) shape):\n");
  std::printf("%5s %10s %10s %10s %10s\n", "hour", "update", "deletion",
              "addition", "total");
  for (int h = 0; h < 24; ++h) {
    std::printf("%5d %10llu %10llu %10llu %10llu\n", h,
                (unsigned long long)series.CountAt(h, UpdateType::kAttributeUpdate),
                (unsigned long long)series.CountAt(h, UpdateType::kRemoveProduct),
                (unsigned long long)series.CountAt(h, UpdateType::kAddProduct),
                (unsigned long long)series.TotalAt(h));
  }

  const auto counters = cluster.TotalUpdateCounters();
  std::printf("\nreal-time indexing: %llu images added, %llu revalidated "
              "(reuse), %llu features extracted, %llu invalidated\n",
              (unsigned long long)counters.images_added,
              (unsigned long long)counters.images_revalidated,
              (unsigned long long)counters.features_extracted,
              (unsigned long long)counters.images_invalidated);

  Histogram update_latency;
  cluster.MergeUpdateLatencyInto(update_latency);
  std::printf("%s\n",
              SummarizeLatency(update_latency, "update latency").c_str());

  // Queries against the freshly updated catalog.
  QueryWorkloadConfig qc;
  qc.num_threads = 8;
  qc.queries_per_thread = 50;
  QueryClient client(cluster, qc);
  const QueryWorkloadResult queries = client.Run();
  std::printf("\nqueries: %llu ok, %.0f QPS, subject-hit rate %.2f\n",
              (unsigned long long)queries.queries, queries.qps,
              queries.subject_hit_rate);
  std::printf("%s\n",
              SummarizeLatency(*queries.latency_micros, "query latency").c_str());

  // End-of-day full indexing cycle (Figure 2): replay log, retrain, rebuild.
  const Stopwatch watch(MonotonicClock::Instance());
  cluster.RunFullIndexingCycle();
  std::printf("\nend-of-day full indexing cycle: rebuilt %zu images in %s\n",
              cluster.AggregateIndexStats().valid_images,
              FormatMicros(watch.ElapsedMicros()).c_str());

  std::printf("\n--- cluster status ---\n%s", cluster.StatusReport().c_str());

  cluster.Stop();
  return 0;
}

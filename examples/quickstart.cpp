// Quickstart: stand up a small visual-search cluster, index a synthetic
// catalog, and run a query through the full blender -> broker -> searcher
// path.
//
//   ./quickstart [--products=1000] [--partitions=4] [--dim=32] [--k=10]
#include <cstdio>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);

  // 1. Configure a small cluster (4 partitions, 2 brokers, 2 blenders).
  ClusterConfig config;
  config.num_partitions =
      static_cast<std::size_t>(flags.GetInt("partitions", 4));
  config.num_brokers = 2;
  config.num_blenders = 2;
  config.embedder = {.dim = static_cast<std::size_t>(flags.GetInt("dim", 32)),
                     .num_categories = 10,
                     .seed = 7};
  config.detector = {.num_categories = 10, .top1_accuracy = 0.95};
  config.kmeans.num_clusters = 16;
  config.ivf.nprobe = 4;
  config.default_k = static_cast<std::size_t>(flags.GetInt("k", 10));
  VisualSearchCluster cluster(config);

  // 2. Populate the product catalog (1000 products, ~5 images each) and
  //    pre-warm the feature DB (production state: everything ever listed has
  //    been extracted once).
  CatalogGenConfig catalog_config;
  catalog_config.num_products =
      static_cast<std::size_t>(flags.GetInt("products", 1000));
  catalog_config.num_categories = 10;
  const CatalogGenStats gen = GenerateCatalog(
      catalog_config, cluster.catalog(), cluster.image_store(),
      &cluster.features());
  std::printf("catalog: %llu products, %llu images\n",
              (unsigned long long)gen.products, (unsigned long long)gen.images);

  // 3. Build and install the full indexes, then start real-time indexing.
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();
  const IvfIndexStats stats = cluster.AggregateIndexStats();
  std::printf("indexed: %zu images across %zu searchers\n", stats.total_images,
              cluster.num_searchers());

  // 4. A user photographs product #123 and searches.
  const auto record = cluster.catalog().Get(123);
  const QueryImage photo{123, record->category, /*query_seed=*/42};
  const QueryResponse response = cluster.Query(photo);

  std::printf("\nquery for product 123 (category %u) took %s, top %zu:\n",
              record->category, FormatMicros(response.total_micros).c_str(),
              response.results.size());
  for (const RankedResult& r : response.results) {
    std::printf("  product=%-6llu distance=%.3f score=%.3f sales=%llu %s\n",
                (unsigned long long)r.hit.product_id, r.hit.distance, r.score,
                (unsigned long long)r.hit.attributes.sales,
                r.hit.image_url.c_str());
  }

  // 5. Real-time: list a brand-new product and find it immediately.
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = 99999;
  add.category_id = 3;
  add.attributes = {.sales = 1, .price_cents = 4999, .praise = 0};
  for (std::uint32_t k = 0; k < 4; ++k) {
    add.image_urls.push_back(MakeImageUrl(99999, k));
  }
  cluster.PublishUpdate(add);
  cluster.WaitForUpdatesDrained();
  const QueryResponse fresh = cluster.Query(QueryImage{99999, 3, 1});
  std::printf("\nnew product 99999 searchable immediately: top hit product=%llu\n",
              fresh.results.empty()
                  ? 0ULL
                  : (unsigned long long)fresh.results[0].hit.product_id);

  cluster.Stop();
  return 0;
}

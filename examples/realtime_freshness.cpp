// Real-time freshness demo: the paper's core claim is that product updates
// (addition, deletion, re-listing, attribute change) become visible to
// search in real time instead of waiting for the next batch index build.
// This example walks one product through its full lifecycle and measures
// publish-to-visible latency at each step.
//
//   ./realtime_freshness
#include <chrono>
#include <cstdio>
#include <thread>

#include "jdvs/jdvs.h"

namespace {

using namespace jdvs;

// Polls until `pred` is true; returns the elapsed time.
Micros MeasureUntil(const std::function<bool()>& pred) {
  const auto& clock = MonotonicClock::Instance();
  const Stopwatch watch(clock);
  while (!pred()) {
    if (watch.ElapsedMicros() > 10'000'000) break;  // 10s safety valve
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return watch.ElapsedMicros();
}

bool ProductInResults(VisualSearchCluster& cluster, ProductId id,
                      CategoryId category) {
  const QueryResponse response = cluster.Query(QueryImage{id, category, 5});
  for (const RankedResult& r : response.results) {
    if (r.hit.product_id == id) return true;
  }
  return false;
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_partitions = 4;
  config.embedder = {.dim = 32, .num_categories = 8, .seed = 3};
  config.detector = {.num_categories = 8, .top1_accuracy = 1.0};
  config.kmeans.num_clusters = 16;
  config.ivf.nprobe = 4;
  VisualSearchCluster cluster(config);

  CatalogGenConfig cg;
  cg.num_products = 500;
  cg.num_categories = 8;
  GenerateCatalog(cg, cluster.catalog(), cluster.image_store(),
                  &cluster.features());
  cluster.BuildAndInstallFullIndexes();
  cluster.Start();

  constexpr ProductId kProduct = 77777;
  constexpr CategoryId kCategory = 4;

  // --- Insertion (Figure 8) ---
  ProductUpdateMessage add;
  add.type = UpdateType::kAddProduct;
  add.product_id = kProduct;
  add.category_id = kCategory;
  add.attributes = {.sales = 10, .price_cents = 2599, .praise = 2};
  for (std::uint32_t k = 0; k < 5; ++k) {
    add.image_urls.push_back(MakeImageUrl(kProduct, k));
  }
  cluster.PublishUpdate(add);
  Micros t = MeasureUntil(
      [&] { return ProductInResults(cluster, kProduct, kCategory); });
  std::printf("insertion  -> searchable after %s\n", FormatMicros(t).c_str());

  // --- Attribute update (Figure 7) ---
  ProductUpdateMessage upd;
  upd.type = UpdateType::kAttributeUpdate;
  upd.product_id = kProduct;
  upd.attributes = {.sales = 123456, .price_cents = 1999, .praise = 888};
  cluster.PublishUpdate(upd);
  t = MeasureUntil([&] {
    const auto response =
        cluster.Query(QueryImage{kProduct, kCategory, 6});
    for (const auto& r : response.results) {
      if (r.hit.product_id == kProduct &&
          r.hit.attributes.sales == 123456) {
        return true;
      }
    }
    return false;
  });
  std::printf("attr update-> visible after    %s\n", FormatMicros(t).c_str());

  // --- Deletion (bitmap flip, Figure 6) ---
  ProductUpdateMessage del;
  del.type = UpdateType::kRemoveProduct;
  del.product_id = kProduct;
  cluster.PublishUpdate(del);
  t = MeasureUntil(
      [&] { return !ProductInResults(cluster, kProduct, kCategory); });
  std::printf("deletion   -> invisible after  %s\n", FormatMicros(t).c_str());

  // --- Re-listing (reuse path: no re-extraction) ---
  const auto before = cluster.TotalUpdateCounters();
  cluster.PublishUpdate(add);
  t = MeasureUntil(
      [&] { return ProductInResults(cluster, kProduct, kCategory); });
  const auto after = cluster.TotalUpdateCounters();
  std::printf("re-listing -> searchable after %s (%llu images revalidated, "
              "%llu features re-extracted)\n",
              FormatMicros(t).c_str(),
              (unsigned long long)(after.images_revalidated -
                                   before.images_revalidated),
              (unsigned long long)(after.features_extracted -
                                   before.features_extracted));

  cluster.Stop();
  return 0;
}

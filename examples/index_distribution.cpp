// Full-index distribution via snapshots.
//
// The weekly full indexing (Section 2.2) runs on builder machines; searcher
// nodes receive the result as an artifact rather than rebuilding locally.
// This example builds a partition index, saves it to disk, "ships" it to a
// fresh searcher via InstallFromSnapshot, and verifies both serve identical
// results — including for the compressed IVF-PQ form.
//
//   ./index_distribution [--products=2000]
#include <cstdio>
#include <filesystem>

#include "jdvs/jdvs.h"

int main(int argc, char** argv) {
  using namespace jdvs;
  const Flags flags(argc, argv);
  const auto products =
      static_cast<std::size_t>(flags.GetInt("products", 2000));

  const SyntheticEmbedder embedder({.dim = 48, .num_categories = 16,
                                    .seed = 77});
  FeatureDb features(embedder, ExtractionCostModel{.mean_micros = 0});
  ProductCatalog catalog;
  ImageStore images;
  CatalogGenConfig cg;
  cg.num_products = products;
  cg.num_categories = 16;
  const CatalogGenStats gen = GenerateCatalog(cg, catalog, images, &features);
  std::printf("catalog: %llu products, %llu images\n",
              (unsigned long long)gen.products,
              (unsigned long long)gen.images);

  // Builder machine: weekly full build.
  FullIndexBuilderConfig fc;
  fc.kmeans.num_clusters = 32;
  fc.index_config.nprobe = 8;
  FullIndexBuilder builder(catalog, images, features, fc);
  auto quantizer = builder.TrainQuantizer();
  const auto& clock = MonotonicClock::Instance();
  Stopwatch watch(clock);
  auto built = builder.Build(quantizer);
  std::printf("full build: %zu images in %s\n", built->size(),
              FormatMicros(watch.ElapsedMicros()).c_str());

  // Ship as a snapshot.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string flat_path = (dir / "jdvs_example_flat.snap").string();
  watch.Restart();
  SaveIndexSnapshot(*built, flat_path);
  const auto flat_bytes = std::filesystem::file_size(flat_path);
  std::printf("snapshot save: %s, %.1f MB (%.0f bytes/image)\n",
              FormatMicros(watch.ElapsedMicros()).c_str(),
              static_cast<double>(flat_bytes) / 1e6,
              static_cast<double>(flat_bytes) / built->size());

  // A fresh searcher installs it.
  Searcher searcher("searcher-new", Searcher::Config{}, features,
                    AcceptAllPartitionFilter());
  watch.Restart();
  searcher.InstallFromSnapshot(flat_path);
  std::printf("searcher install: %s, now serving %zu images\n",
              FormatMicros(watch.ElapsedMicros()).c_str(),
              searcher.index_stats().total_images);

  // Verify: identical answers and content digest.
  const auto digest_built = ComputeIndexDigest(*built);
  int agreements = 0;
  for (ProductId pid = 1; pid <= 25; ++pid) {
    const auto record = catalog.Get(pid);
    const auto query = embedder.ExtractQuery(pid, record->category, pid);
    const auto a = built->Search(query, 5);
    const auto b = searcher.SearchLocal(query, 5);
    if (a.size() == b.size() &&
        std::equal(a.begin(), a.end(), b.begin(),
                   [](const SearchHit& x, const SearchHit& y) {
                     return x.image_id == y.image_id;
                   })) {
      ++agreements;
    }
  }
  std::printf("result agreement on 25 probe queries: %d/25 (content digest "
              "%016llx, %llu entries)\n",
              agreements, (unsigned long long)digest_built.content_hash,
              (unsigned long long)digest_built.entries);

  // The compressed form: build an IVF-PQ index, snapshot, reload.
  ProductQuantizerConfig pc;
  pc.num_subspaces = 8;
  pc.codebook_size = 128;
  std::vector<FeatureVector> training;
  catalog.ForEach([&](const ProductRecord& r) {
    if (training.size() >= 2048) return;
    training.push_back(
        embedder.Extract({r.image_urls[0], r.id, r.category}));
  });
  auto pq = std::make_shared<ProductQuantizer>(
      ProductQuantizer::Train(training, pc));
  IvfPqIndexConfig pq_config;
  pq_config.nprobe = 8;
  IvfPqIndex compressed(quantizer, pq, pq_config);
  catalog.ForEach([&](const ProductRecord& r) {
    for (const auto& url : r.image_urls) {
      compressed.AddImage(url, r.id, r.category, r.attributes, r.detail_url,
                          embedder.Extract({url, r.id, r.category}));
    }
  });
  const std::string pq_path = (dir / "jdvs_example_pq.snap").string();
  SaveIvfPqSnapshot(compressed, pq_path);
  const auto pq_bytes = std::filesystem::file_size(pq_path);
  auto reloaded = LoadIvfPqSnapshot(pq_path);
  std::printf("\nIVF-PQ snapshot: %.1f MB vs %.1f MB flat (%.1fx smaller), "
              "reloaded %zu images\n",
              static_cast<double>(pq_bytes) / 1e6,
              static_cast<double>(flat_bytes) / 1e6,
              static_cast<double>(flat_bytes) /
                  static_cast<double>(pq_bytes),
              reloaded->size());

  std::filesystem::remove(flat_path);
  std::filesystem::remove(pq_path);
  return 0;
}
